"""Figure 17: free apps with ads can beat paid apps.

Paper: an average free SlideMe app needs $0.21 of ad income per download
to match an average paid app's income; for popular free apps (top 20%)
the figure drops to $0.033, while unpopular apps need $1.56 -- still
below the $3.9 average paid price.  The break-even value drifts down
over time because free downloads grow faster.

Shape targets: break-even well below the average paid price; popular
tier needs far less than the unpopular tier; non-increasing drift over
the crawl.
"""

from conftest import emit

from repro.analysis.income import income_report
from repro.analysis.strategies import break_even_report
from repro.reporting.figures import render_series
from repro.reporting.tables import render_table

STORE = "slideme"


def render_breakeven(report, average_paid_revenue) -> str:
    tier_rows = [
        [tier, round(value, 4)] for tier, value in report.by_tier.items()
    ]
    parts = [
        (
            f"Figure 17 ({STORE}): average free app needs "
            f"${report.overall:.3f}/download from ads to match the average "
            f"paid app (average paid revenue ${average_paid_revenue:.2f})"
        ),
        render_table(
            ["free-app tier", "break-even ad income ($/download)"],
            tier_rows,
            title="break-even by popularity tier",
        ),
    ]
    if report.over_time:
        parts.append(
            render_series(
                [day for day, _ in report.over_time],
                [value for _, value in report.over_time],
                x_label="crawl day",
                y_label="break-even ($)",
                title="break-even ad income over time",
                float_format=".4f",
            )
        )
    return "\n\n".join(parts)


def test_fig17_breakeven_over_time(benchmark, database, results_dir):
    report = break_even_report(database, STORE)
    income = income_report(database, STORE)
    text = benchmark.pedantic(
        render_breakeven,
        args=(report, income.average_paid_revenue),
        rounds=3,
        iterations=1,
    )
    emit(results_dir, "fig17_breakeven_time", text)

    # The free-with-ads strategy is reachable: break-even is well below
    # the average paid revenue per download.
    assert report.overall < income.average_paid_revenue
    # Popular free apps need an order less than unpopular ones.
    assert report.by_tier["most popular"] * 3 < report.by_tier["unpopular"]
    # Downward (or at least non-exploding) drift over the crawl.
    if len(report.over_time) >= 2:
        first = report.over_time[0][1]
        last = report.over_time[-1][1]
        assert last <= first * 1.25
