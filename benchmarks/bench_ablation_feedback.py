"""Ablation: clustering effect vs. recommender feedback as tail mechanisms.

Section 3.2 of the paper weighs two explanations for the truncated tail
of the rank-downloads curve: information filtering by recommendation
systems (the explanation prior work proposed for user-generated content)
and the clustering effect (the paper's thesis).  With both mechanisms
implemented, this ablation compares their fingerprints on otherwise
identical populations and checks which one the marketplace data
resembles.

Expected shapes:

- the feedback model produces a sharp cliff at the recommendation-list
  boundary (top-N absorbs demand, rank N+1 starves abruptly), and its
  head concentration collapses most of the mass into the list;
- the clustering model bends the tail smoothly and spreads downloads
  across far more distinct apps (per-category favorites survive at every
  global rank);
- the crawled marketplace curve matches the clustering fingerprint: no
  boundary cliff, smooth droop, wide app coverage.
"""

import numpy as np
from conftest import emit

from repro.core.feedback import RecommenderFeedbackModel, RecommenderFeedbackParams
from repro.core.models import AppClusteringModel, AppClusteringParams
from repro.reporting.tables import render_table

N_APPS = 1500
N_USERS = 1500
DOWNLOADS = 25_000
LIST_SIZE = 50


def cliff_ratio(counts: np.ndarray, boundary: int, window: int = 15) -> float:
    """Mean downloads just inside the boundary over just outside it."""
    ranked = np.sort(counts)[::-1].astype(float)
    inside = ranked[boundary - window : boundary].mean()
    outside = max(ranked[boundary : boundary + window].mean(), 0.5)
    return inside / outside


def run_hypothesis_comparison(database):
    clustering = AppClusteringModel(
        AppClusteringParams(
            n_apps=N_APPS,
            n_users=N_USERS,
            total_downloads=DOWNLOADS,
            zr=1.5,
            zc=1.4,
            p=0.9,
            n_clusters=30,
        )
    ).simulate(seed=17)
    feedback = RecommenderFeedbackModel(
        RecommenderFeedbackParams(
            n_apps=N_APPS,
            n_users=N_USERS,
            total_downloads=DOWNLOADS,
            zr=1.5,
            q=0.9,
            list_size=LIST_SIZE,
        )
    ).simulate(seed=17)

    measured = database.download_vector("anzhi", database.days("anzhi")[-1])
    measured = measured[measured > 0].astype(float)

    rows = []
    for label, counts in (
        ("APP-CLUSTERING", clustering.astype(float)),
        ("RECOMMENDER-FEEDBACK", feedback.astype(float)),
        ("measured (anzhi)", measured),
    ):
        ranked = np.sort(counts)[::-1]
        total = ranked.sum()
        rows.append(
            (
                label,
                cliff_ratio(counts, LIST_SIZE),
                float(ranked[:LIST_SIZE].sum() / total),
                float(np.mean(counts > 0)) if label != "measured (anzhi)" else 1.0,
            )
        )
    return rows


def render_comparison(rows) -> str:
    table = render_table(
        [
            "mechanism",
            f"cliff at rank {LIST_SIZE} (inside/outside)",
            f"top-{LIST_SIZE} download share",
            "apps with >=1 download",
        ],
        [
            [label, round(cliff, 2), round(top_share, 3), round(touched, 3)]
            for label, cliff, top_share, touched in rows
        ],
        title="Tail-truncation hypotheses: clustering vs recommender feedback",
    )
    return table


def test_ablation_feedback_vs_clustering(benchmark, database, results_dir):
    rows = benchmark.pedantic(
        run_hypothesis_comparison, args=(database,), rounds=1, iterations=1
    )
    emit(results_dir, "ablation_feedback", render_comparison(rows))

    by_label = {label: values for label, *values in rows}
    clustering = by_label["APP-CLUSTERING"]
    feedback = by_label["RECOMMENDER-FEEDBACK"]
    measured = by_label["measured (anzhi)"]

    # The feedback fingerprint: a sharp boundary cliff and most demand
    # collapsed into the list.
    assert feedback[0] > 2 * clustering[0]
    assert feedback[1] > clustering[1]
    # Clustering spreads downloads across more distinct apps.
    assert clustering[2] > feedback[2]
    # The marketplace data resembles clustering, not feedback: no cliff.
    assert measured[0] < feedback[0] / 2
    assert abs(measured[0] - clustering[0]) < abs(measured[0] - feedback[0])