"""Figure 10: downloads of the top app are a good user-count estimate.

Paper: sweeping the simulated user count from 0.1x to 50x the downloads
of the most popular app, the APP-CLUSTERING distance from measured data
is minimized when the user count is close to the top app's downloads.

Shape target: the distance curve is U-shaped with its minimum at a
moderate fraction (not at either extreme of the sweep).
"""

import numpy as np
from conftest import emit

from repro.analysis.model_validation import user_sweep_for_store
from repro.reporting.figures import render_series
from repro.reporting.tables import render_table

STORES = ("appchina", "anzhi")
FRACTIONS = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 20.0, 50.0)


def compute_sweeps(database):
    return {
        store: user_sweep_for_store(database, store, user_fractions=FRACTIONS)
        for store in STORES
    }


def render_sweeps(sweeps) -> str:
    parts = []
    rows = []
    for store, sweep in sweeps.items():
        distances = [distance for _, distance in sweep]
        best_fraction = sweep[int(np.argmin(distances))][0]
        rows.append([store, best_fraction, round(min(distances), 3)])
        parts.append(
            render_series(
                [fraction for fraction, _ in sweep],
                distances,
                x_label="users / top-app downloads",
                y_label="distance",
                title=f"-- {store}",
                float_format=".3f",
            )
        )
    table = render_table(
        ["store", "best user fraction", "min distance"],
        rows,
        title="Figure 10: model distance vs assumed user count",
    )
    return "\n\n".join([table] + parts)


def test_fig10_user_sweep(benchmark, database, results_dir):
    sweeps = compute_sweeps(database)
    text = benchmark.pedantic(render_sweeps, args=(sweeps,), rounds=3, iterations=1)
    emit(results_dir, "fig10_user_sweep", text)

    for store, sweep in sweeps.items():
        fractions = [fraction for fraction, _ in sweep]
        distances = [distance for _, distance in sweep]
        best_fraction = fractions[int(np.argmin(distances))]
        # The minimum lies at a moderate fraction, near 1x as in the paper.
        assert 0.25 <= best_fraction <= 5.0, store
        # Both extremes fit worse than the best point.
        assert distances[0] > min(distances), store
        assert distances[-1] > min(distances), store
