"""Robustness: the headline results across independent random seeds.

Every other bench runs on fixed seeds for diffability; this one re-runs
the three headline comparisons on several independent seeds at reduced
scale and reports mean and spread, checking that the qualitative
findings are not artifacts of one random draw:

1. APP-CLUSTERING fits planted clustering data better than both
   baselines (Figure 9's ordering);
2. the Figure 19 cache ordering (ZIPF > ZIPF-AMO > APP-CLUSTERING);
3. the temporal-affinity lift over the random walk.
"""

import numpy as np
from conftest import emit

from repro.cache.policies import LruCache
from repro.cache.simulator import simulate_cache
from repro.core.affinity import random_walk_affinity, temporal_affinity
from repro.core.fitting import fit_all_models
from repro.core.models import (
    AppClusteringModel,
    AppClusteringParams,
    ModelKind,
)
from repro.reporting.tables import render_table
from repro.workload.generators import figure19_spec

SEEDS = (11, 23, 37, 51, 79)


def _fit_improvement(seed: int) -> float:
    """APP-CLUSTERING's improvement factor over ZIPF on planted data."""
    params = AppClusteringParams(
        n_apps=800,
        n_users=700,
        total_downloads=12_000,
        zr=1.5,
        zc=1.4,
        p=0.9,
        n_clusters=20,
    )
    observed = np.sort(AppClusteringModel(params).simulate(seed=seed))[::-1]
    fits = fit_all_models(
        observed.astype(float),
        n_users=params.n_users,
        n_clusters=20,
        zr_grid=(1.3, 1.5, 1.7),
        zc_grid=(1.2, 1.4),
        p_grid=(0.8, 0.9),
    )
    return (
        fits[ModelKind.ZIPF].distance
        / fits[ModelKind.APP_CLUSTERING].distance
    )


def _cache_gap(seed: int) -> float:
    """Hit-ratio gap between ZIPF and APP-CLUSTERING at a 5% cache."""
    ratios = {}
    for kind in (ModelKind.ZIPF, ModelKind.APP_CLUSTERING):
        spec = figure19_spec(kind=kind, scale=0.01, seed=seed)
        counts = spec.download_counts()
        capacity = max(1, int(0.05 * spec.n_apps))
        warm = list(np.argsort(counts)[::-1][:capacity])
        result = simulate_cache(spec.events(), LruCache(capacity), warm_keys=warm)
        ratios[kind] = result.hit_ratio
    return ratios[ModelKind.ZIPF] - ratios[ModelKind.APP_CLUSTERING]


def _affinity_lift(seed: int) -> float:
    """Depth-1 affinity lift over random walk on model-generated streams."""
    params = AppClusteringParams(
        n_apps=600,
        n_users=300,
        total_downloads=3600,
        zr=1.3,
        zc=1.3,
        p=0.9,
        n_clusters=15,
    )
    model = AppClusteringModel(params)
    streams = {}
    for event in model.iter_events(seed=seed):
        streams.setdefault(event.user_id, []).append(
            model.cluster_of(event.app_index)
        )
    affinities = [
        value
        for stream in streams.values()
        if (value := temporal_affinity(stream)) is not None
    ]
    clusters = params.cluster_assignment()
    sizes = np.bincount(clusters)
    baseline = random_walk_affinity(sizes[sizes > 0])
    return float(np.mean(affinities)) / baseline


def run_robustness():
    metrics = {
        "fit improvement over ZIPF (x)": [_fit_improvement(s) for s in SEEDS],
        "cache gap ZIPF - CLUSTERING at 5%": [_cache_gap(s) for s in SEEDS],
        "affinity lift over random walk (x)": [_affinity_lift(s) for s in SEEDS],
    }
    return metrics


def render_robustness(metrics) -> str:
    rows = [
        [
            name,
            round(float(np.mean(values)), 2),
            round(float(np.min(values)), 2),
            round(float(np.max(values)), 2),
        ]
        for name, values in metrics.items()
    ]
    return render_table(
        ["metric", "mean", "min", "max"],
        rows,
        title=f"Robustness across {len(SEEDS)} seeds",
    )


def test_robustness_across_seeds(benchmark, results_dir):
    metrics = benchmark.pedantic(run_robustness, rounds=1, iterations=1)
    emit(results_dir, "robustness", render_robustness(metrics))

    # Every seed, not just the mean, must preserve the qualitative result.
    assert min(metrics["fit improvement over ZIPF (x)"]) > 1.5
    assert min(metrics["cache gap ZIPF - CLUSTERING at 5%"]) > 0.05
    assert min(metrics["affinity lift over random walk (x)"]) > 2.0