"""Throughput benchmark: batched engine vs legacy per-event models.

Measures events/sec for all three workload models on both paths:

- **legacy** -- the per-event reference implementations
  (``iter_events_legacy``: one ``sample_one`` + set lookup per download);
- **batched** -- the vectorized engine (``iter_batches`` consumed through
  ``simulate``-equivalent count accumulation).

Results are appended to ``BENCH_models.json`` at the repo root so future
PRs have a performance trajectory to compare against.  The ISSUE-2
acceptance target is >=5x on the reference APP-CLUSTERING workload
(60k apps, 100k users, 1M downloads).

Run modes
---------
- ``make bench-smoke`` / ``pytest benchmarks/bench_perf_models.py -m
  bench_smoke`` -- small sizes, asserts the batched path wins, seconds.
- ``PYTHONPATH=src python benchmarks/bench_perf_models.py`` -- the full
  reference workload; writes ``BENCH_models.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np
import pytest

from repro.core.engine import counts_from_batches
from repro.core.models import ModelKind
from repro.obs.manifest import RunManifest, write_metrics_jsonl
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.workload.generators import (
    SegmentWorkload,
    WorkloadSpec,
    make_workload_batches,
)
from repro.workload.sharding import run_sharded_campaign

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_models.json"
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The ISSUE-2 reference workload: paper-scale store, 1M downloads.
REFERENCE = dict(n_apps=60_000, n_users=100_000, total_downloads=1_000_000)
SMOKE = dict(n_apps=2_000, n_users=4_000, total_downloads=40_000)
#: Larger than SMOKE so the segment-overhead ratio measures the per-batch
#: attribution bincount, not sub-millisecond scheduler noise.
SEGMENT_SMOKE = dict(n_apps=2_000, n_users=20_000, total_downloads=400_000)


@dataclass(frozen=True)
class ModelTiming:
    """One model's legacy-vs-batched timing."""

    model: str
    n_apps: int
    n_users: int
    total_downloads: int
    legacy_events: int
    legacy_seconds: float
    batched_events: int
    batched_seconds: float

    @property
    def legacy_events_per_sec(self) -> float:
        return self.legacy_events / self.legacy_seconds if self.legacy_seconds else 0.0

    @property
    def batched_events_per_sec(self) -> float:
        return (
            self.batched_events / self.batched_seconds if self.batched_seconds else 0.0
        )

    @property
    def speedup(self) -> float:
        if self.legacy_events_per_sec == 0:
            return float("inf")
        return self.batched_events_per_sec / self.legacy_events_per_sec

    def describe(self) -> str:
        return (
            f"{self.model}: legacy {self.legacy_events_per_sec:,.0f} ev/s, "
            f"batched {self.batched_events_per_sec:,.0f} ev/s "
            f"({self.speedup:.1f}x)"
        )


@dataclass(frozen=True)
class ShardTiming:
    """One model's sharded-campaign timing and exactness check."""

    model: str
    n_shards: int
    block_size: int
    n_users: int
    total_downloads: int
    n_events: int
    seconds: float
    fingerprint: str
    serial_matches: bool

    @property
    def events_per_sec(self) -> float:
        return self.n_events / self.seconds if self.seconds else 0.0

    def describe(self) -> str:
        check = "==" if self.serial_matches else "!="
        return (
            f"{self.model} sharded x{self.n_shards}: "
            f"{self.events_per_sec:,.0f} ev/s "
            f"({self.n_events:,} events in {self.seconds:.2f}s, "
            f"fingerprint {check} serial)"
        )


def time_sharded(
    kind: ModelKind,
    sizes: Dict[str, int],
    n_shards: int,
    block_size: int,
    seed: int = 0,
) -> ShardTiming:
    """Time a sharded campaign and verify it reproduces the serial run.

    The serial reference runs first (in-process, ``n_shards=1``) so the
    fingerprint comparison is part of every benchmark, not just the test
    suite: a sharded number only counts if it is byte-identical to the
    serial answer.
    """
    spec = _spec(kind, sizes, seed)
    serial = run_sharded_campaign(
        spec, n_shards=1, block_size=block_size, use_processes=False
    )
    start = time.perf_counter()
    sharded = run_sharded_campaign(spec, n_shards=n_shards, block_size=block_size)
    seconds = time.perf_counter() - start
    return ShardTiming(
        model=kind.value,
        n_shards=n_shards,
        block_size=block_size,
        n_users=sizes["n_users"],
        total_downloads=sizes["total_downloads"],
        n_events=sharded.n_events,
        seconds=seconds,
        fingerprint=sharded.fingerprint,
        serial_matches=sharded.fingerprint == serial.fingerprint,
    )


@dataclass(frozen=True)
class SegmentOverheadTiming:
    """Global vs equal-weight segmented campaign timing.

    The segmented spec uses identical per-segment parameters, so the
    sharded planner merges every segment into one run and the only added
    work is the per-batch true-segment attribution (one bincount per
    batch).  ``fingerprint_matches`` asserts the byte-exactness contract
    held while we timed it.
    """

    model: str
    n_segments: int
    n_shards: int
    n_users: int
    total_downloads: int
    global_seconds: float
    segmented_seconds: float
    fingerprint_matches: bool
    events_by_segment: List[int]

    @property
    def overhead(self) -> float:
        """Fractional slowdown of the segmented run over the global one."""
        if self.global_seconds == 0:
            return 0.0
        return self.segmented_seconds / self.global_seconds - 1.0

    def describe(self) -> str:
        check = "==" if self.fingerprint_matches else "!="
        return (
            f"{self.model} x{self.n_segments} segments: "
            f"global {self.global_seconds:.3f}s, "
            f"segmented {self.segmented_seconds:.3f}s "
            f"({self.overhead:+.1%} overhead, fingerprint {check} global)"
        )


def time_segmented(
    kind: ModelKind,
    sizes: Dict[str, int],
    n_segments: int = 4,
    n_shards: int = 2,
    block_size: int = 1_024,
    seed: int = 0,
    repeats: int = 5,
) -> SegmentOverheadTiming:
    """Time a global campaign against its equal-param segmented twin.

    Best-of-``repeats`` timing on both sides keeps scheduler noise out
    of the overhead ratio at smoke sizes.  Both runs stay in-process so
    the comparison measures segment accounting, not pool startup.
    """
    spec = _spec(kind, sizes, seed)
    segments = tuple(
        SegmentWorkload(
            name=f"segment-{index}",
            weight=1.0 / n_segments,
            p=spec.p,
            zr=spec.zr,
            zc=spec.zc,
        )
        for index in range(n_segments)
    )
    segmented_spec = WorkloadSpec(
        kind=spec.kind,
        n_apps=spec.n_apps,
        n_users=spec.n_users,
        total_downloads=spec.total_downloads,
        zr=spec.zr,
        zc=spec.zc,
        p=spec.p,
        n_clusters=spec.n_clusters,
        seed=spec.seed,
        segments=segments,
    )

    def best_of(run_spec: WorkloadSpec):
        best = float("inf")
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_sharded_campaign(
                run_spec,
                n_shards=n_shards,
                block_size=block_size,
                use_processes=False,
            )
            best = min(best, time.perf_counter() - start)
        return best, result

    global_seconds, global_result = best_of(spec)
    segmented_seconds, segmented_result = best_of(segmented_spec)
    by_segment = (
        [int(row.sum()) for row in segmented_result.segment_counts]
        if segmented_result.segment_counts is not None
        else []
    )
    return SegmentOverheadTiming(
        model=kind.value,
        n_segments=n_segments,
        n_shards=n_shards,
        n_users=sizes["n_users"],
        total_downloads=sizes["total_downloads"],
        global_seconds=global_seconds,
        segmented_seconds=segmented_seconds,
        fingerprint_matches=(
            segmented_result.fingerprint == global_result.fingerprint
        ),
        events_by_segment=by_segment,
    )


def write_segments_record(
    timing: SegmentOverheadTiming, path: Path = DEFAULT_OUTPUT
) -> dict:
    """Upsert the ``segments`` record in the JSON trajectory file.

    Unlike :func:`write_results` this replaces any previous ``segments``
    entry: the record tracks the current overhead of segment accounting,
    not a history, so repeated smoke runs must not grow the file.
    """
    record = {
        "label": "segments",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "segments": [
            {
                **asdict(timing),
                "overhead": round(timing.overhead, 4),
            }
        ],
    }
    history = []
    if path.exists():
        history = json.loads(path.read_text(encoding="utf-8"))
    history = [entry for entry in history if entry.get("label") != "segments"]
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return record


def _spec(kind: ModelKind, sizes: Dict[str, int], seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        kind=kind,
        n_apps=sizes["n_apps"],
        n_users=sizes["n_users"],
        total_downloads=sizes["total_downloads"],
        zr=1.7,
        zc=1.4,
        p=0.9,
        n_clusters=30,
        seed=seed,
    )


def _legacy_events(spec: WorkloadSpec):
    model = spec.build_model()
    if spec.kind == ModelKind.APP_CLUSTERING:
        return model.iter_events_legacy(seed=spec.seed)
    return model.iter_events_legacy(spec.n_users, spec.total_downloads, seed=spec.seed)


def time_model(kind: ModelKind, sizes: Dict[str, int], seed: int = 0) -> ModelTiming:
    """Time legacy vs batched event generation for one model."""
    spec = _spec(kind, sizes, seed)

    start = time.perf_counter()
    legacy_events = sum(1 for _ in _legacy_events(spec))
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    counts = counts_from_batches(make_workload_batches(spec), spec.n_apps)
    batched_seconds = time.perf_counter() - start

    return ModelTiming(
        model=kind.value,
        n_apps=sizes["n_apps"],
        n_users=sizes["n_users"],
        total_downloads=sizes["total_downloads"],
        legacy_events=legacy_events,
        legacy_seconds=legacy_seconds,
        batched_events=int(counts.sum()),
        batched_seconds=batched_seconds,
    )


def run_benchmark(
    sizes: Dict[str, int], seed: int = 0, kinds: Optional[List[ModelKind]] = None
) -> List[ModelTiming]:
    """Benchmark every model at the given sizes."""
    return [time_model(kind, sizes, seed=seed) for kind in kinds or list(ModelKind)]


def write_results(
    timings: List[ModelTiming],
    label: str,
    path: Path = DEFAULT_OUTPUT,
    sharded: Optional[List[ShardTiming]] = None,
) -> dict:
    """Append a benchmark record to the JSON trajectory file."""
    record = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "models": [
            {
                **asdict(timing),
                "legacy_events_per_sec": round(timing.legacy_events_per_sec, 1),
                "batched_events_per_sec": round(timing.batched_events_per_sec, 1),
                "speedup": round(timing.speedup, 2),
            }
            for timing in timings
        ],
    }
    if sharded:
        record["sharded"] = [
            {
                **asdict(timing),
                "events_per_sec": round(timing.events_per_sec, 1),
            }
            for timing in sharded
        ]
    history = []
    if path.exists():
        history = json.loads(path.read_text(encoding="utf-8"))
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return record


def _write_metrics_sidecar(
    registry: MetricsRegistry, label: str, sizes: Dict[str, int], seed: int, path: Path
) -> Path:
    """Write the benchmark's engine metrics next to its timing output."""
    path.parent.mkdir(exist_ok=True)
    manifest = RunManifest(
        command=f"bench-perf-models-{label}",
        seed=seed,
        params={key: int(value) for key, value in sizes.items()},
    )
    return write_metrics_jsonl(path, registry, manifest)


@pytest.mark.bench_smoke
def test_bench_perf_models_smoke():
    """Smoke mode: small sizes, catches gross perf regressions fast.

    The batched path must beat the legacy path on every model even at
    smoke sizes; the 5x acceptance bar applies to the full reference run
    (see ``main``), where vectorization has room to amortize.  The run's
    engine counters land in ``results/bench_smoke.metrics.jsonl`` (CI
    uploads it as an artifact).
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        timings = run_benchmark(SMOKE, seed=0)
    sidecar = _write_metrics_sidecar(
        registry, "smoke", SMOKE, 0, RESULTS_DIR / "bench_smoke.metrics.jsonl"
    )
    print(f"(metrics sidecar: {sidecar})")
    for timing in timings:
        print(timing.describe())
        assert timing.batched_events > 0
        # Event budgets must agree between the two paths (same process,
        # independent randomness): allow a small give-up margin.
        assert (
            abs(timing.batched_events - timing.legacy_events)
            <= 0.05 * timing.legacy_events + 50
        )
        assert timing.speedup > 1.5, timing.describe()


@pytest.mark.bench_smoke
def test_bench_sharded_smoke():
    """Smoke mode for the sharded runner: exactness first, speed second.

    Runs a small campaign through a real process pool and asserts the
    acceptance criterion directly: the sharded fingerprint equals the
    serial one.  Throughput is only sanity-checked (> 0) -- smoke sizes
    are far too small for the pool to amortize its startup.
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        timings = [
            time_sharded(kind, SMOKE, n_shards=4, block_size=1_024, seed=0)
            for kind in ModelKind
        ]
    for timing in timings:
        print(timing.describe())
        assert timing.serial_matches, timing.describe()
        assert timing.n_events > 0
        assert timing.events_per_sec > 0


@pytest.mark.bench_smoke
def test_bench_segments_smoke():
    """Smoke mode for segment accounting: exactness first, overhead second.

    An equal-weight, identical-parameter 4-segment partition must (a)
    reproduce the global fingerprint byte-for-byte, (b) attribute every
    event to exactly one segment, and (c) cost no more than ~10% over
    the global run -- the attribution is one bincount per batch.  The
    timing lands in the ``segments`` record of ``BENCH_models.json``.
    """
    timing = time_segmented(
        ModelKind.ZIPF, SEGMENT_SMOKE, n_segments=4, n_shards=2, seed=0
    )
    print(timing.describe())
    assert timing.fingerprint_matches, timing.describe()
    assert len(timing.events_by_segment) == 4
    assert sum(timing.events_by_segment) == SEGMENT_SMOKE["total_downloads"]
    # Equal weights, identical params: every segment carries real traffic.
    assert all(count > 0 for count in timing.events_by_segment)
    # Lenient absolute slack keeps scheduler noise at smoke sizes from
    # flaking the 10% bar; the ratio is what the record tracks.
    assert (
        timing.segmented_seconds <= 1.10 * timing.global_seconds + 0.02
    ), timing.describe()
    record = write_segments_record(timing)
    print(f"wrote {DEFAULT_OUTPUT} ({record['label']})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the small smoke sizes instead"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUTPUT, help="JSON trajectory file"
    )
    parser.add_argument(
        "--label", default=None, help="record label (default: smoke/reference)"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="worker count for the sharded campaign timings (0 disables)",
    )
    args = parser.parse_args()

    sizes = SMOKE if args.smoke else REFERENCE
    label = args.label or ("smoke" if args.smoke else "reference")
    registry = MetricsRegistry()
    with use_registry(registry):
        timings = run_benchmark(sizes, seed=args.seed)
    for timing in timings:
        print(timing.describe())
    sharded = None
    if args.shards:
        sharded = [
            time_sharded(
                kind,
                sizes,
                n_shards=args.shards,
                block_size=1_024 if args.smoke else 65_536,
                seed=args.seed,
            )
            for kind in ModelKind
        ]
        for timing in sharded:
            print(timing.describe())
            assert timing.serial_matches, timing.describe()
    record = write_results(timings, label, path=args.out, sharded=sharded)
    print(f"wrote {args.out} ({label}, {len(record['models'])} models)")
    sidecar = _write_metrics_sidecar(
        registry,
        label,
        sizes,
        args.seed,
        RESULTS_DIR / f"bench_{label}.metrics.jsonl",
    )
    print(f"wrote {sidecar}")


if __name__ == "__main__":
    main()
