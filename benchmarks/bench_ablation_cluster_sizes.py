"""Ablation: equal-size clusters vs. empirically skewed cluster sizes.

The paper's analytical model assumes all clusters have the same size
("For simplicity we assume that all C clusters have the same size").
Real taxonomies are skewed (Figure 5(d)).  This ablation compares the
rank-curve shape and fit quality under both assumptions.

Expected shapes: both produce the doubly truncated curve; the skewed
assignment concentrates slightly harder (bigger head, thinner tail), and
the equal-size analytical fit remains a good approximation for both.
"""

import numpy as np
from conftest import emit

from repro.core.fitting import fit_model
from repro.core.models import AppClusteringModel, AppClusteringParams, ModelKind
from repro.core.pareto import pareto_summary
from repro.marketplace.catalog import default_taxonomy
from repro.reporting.tables import render_table

N_APPS = 2000
N_CLUSTERS = 25
BASE = dict(
    n_apps=N_APPS,
    n_users=2500,
    total_downloads=30_000,
    zr=1.6,
    zc=1.4,
    p=0.9,
)


def skewed_assignment() -> tuple:
    taxonomy = default_taxonomy(N_CLUSTERS, seed=3)
    counts = taxonomy.app_counts(N_APPS)
    assignment = np.repeat(np.arange(N_CLUSTERS), counts)
    rng = np.random.default_rng(4)
    rng.shuffle(assignment)
    return tuple(int(c) for c in assignment)


def run_cluster_size_ablation():
    rows = []
    for label, cluster_of in (
        ("equal (round-robin)", None),
        ("skewed (taxonomy)", skewed_assignment()),
    ):
        params = AppClusteringParams(
            n_clusters=N_CLUSTERS, cluster_of=cluster_of, **BASE
        )
        counts = AppClusteringModel(params).simulate(seed=5).astype(float)
        summary = pareto_summary(counts[counts > 0])
        fit = fit_model(
            ModelKind.APP_CLUSTERING,
            np.sort(counts)[::-1],
            n_users=BASE["n_users"],
            n_clusters=N_CLUSTERS,
            zr_grid=(1.4, 1.6, 1.8),
            zc_grid=(1.2, 1.4),
            p_grid=(0.9,),
        )
        rows.append(
            (
                label,
                summary.share_top_10pct,
                summary.gini,
                float(np.mean(counts > 0)),
                fit.distance,
            )
        )
    return rows


def render_cluster_size_ablation(rows) -> str:
    return render_table(
        [
            "cluster sizes",
            "top 10% share",
            "gini",
            "apps with >=1 download",
            "equal-size analytic fit distance",
        ],
        [
            [label, round(top, 3), round(gini, 3), round(touched, 3), round(distance, 3)]
            for label, top, gini, touched, distance in rows
        ],
        title="Ablation: equal vs skewed cluster sizes",
    )


def test_ablation_cluster_sizes(benchmark, results_dir):
    rows = benchmark.pedantic(run_cluster_size_ablation, rounds=1, iterations=1)
    emit(results_dir, "ablation_cluster_sizes", render_cluster_size_ablation(rows))

    by_label = {label: values for label, *values in rows}
    equal = by_label["equal (round-robin)"]
    skewed = by_label["skewed (taxonomy)"]
    # Both regimes stay strongly concentrated.
    assert equal[0] > 0.5 and skewed[0] > 0.5
    # The equal-size analytical fit remains usable for both (the paper's
    # simplification is benign): distances stay in the same ballpark.
    assert skewed[3] < 3 * max(equal[3], 0.05)
