"""Shared benchmark fixtures: scaled-down crawl campaigns per store.

Every table and figure of the paper is regenerated from these campaigns.
The four store profiles are the paper's Table 1 entries scaled to laptop
size (see ``DESIGN.md``): distribution *shapes* are preserved; absolute
magnitudes are not expected to match the paper's testbed.

Each bench writes its rendered output under ``benchmarks/results/`` so
the regenerated tables and figures can be inspected and diffed after a
run (stdout is captured by pytest).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.crawler.database import SnapshotDatabase
from repro.crawler.proxies import ProxyPool
from repro.crawler.scheduler import CrawlCampaign, run_crawl_campaign
from repro.marketplace.profiles import paper_profile, scaled_profile
from repro.stats.rng import derive_seed

RESULTS_DIR = Path(__file__).parent / "results"

# Per-store scaling, tuned so the whole bench suite builds in about a
# minute: every store keeps its Table 1 *relative* characteristics (Anzhi
# and AppChina busy, 1Mobile large but quiet, SlideMe small with paid
# apps).
_SCALES = {
    "anzhi": dict(
        app_scale=0.035, download_scale=2.2e-4, user_scale=1.3e-3, day_scale=0.25
    ),
    "appchina": dict(
        app_scale=0.05, download_scale=2.2e-4, user_scale=1.1e-3, day_scale=0.25
    ),
    "1mobile": dict(
        app_scale=0.016, download_scale=2.6e-3, user_scale=2.4e-3, day_scale=0.12
    ),
    "slideme": dict(
        app_scale=0.12, download_scale=1.3e-2, user_scale=7e-3, day_scale=0.12
    ),
}

_SEED = 20131023  # the paper's presentation date at IMC'13


def build_benchmark_campaigns() -> dict:
    """Crawl all four scaled stores into one shared database."""
    database = SnapshotDatabase()
    proxy_pool = ProxyPool.planetlab_like(n_proxies=100, seed=_SEED)
    campaigns = {}
    for name, scales in _SCALES.items():
        profile = scaled_profile(paper_profile(name), **scales)
        # derive_seed, not builtin hash(): str hashes are randomized per
        # process, which silently re-seeded every store on every run.
        campaigns[name] = run_crawl_campaign(
            profile,
            seed=derive_seed(_SEED, name),
            database=database,
            proxy_pool=proxy_pool,
            # The affinity study only needs Anzhi's comments (the paper's
            # choice, because Anzhi timestamps comments precisely).
            fetch_comments=(name == "anzhi"),
        )
    return campaigns


_CACHE_PATH = Path(__file__).parent / ".crawl_cache.jsonl"


@pytest.fixture(scope="session")
def database() -> SnapshotDatabase:
    """The shared snapshot database holding all four crawls.

    Building the campaigns takes a couple of minutes, so the crawled
    database is cached on disk; delete ``benchmarks/.crawl_cache.jsonl``
    to force a rebuild (e.g. after changing the generator).
    """
    if _CACHE_PATH.exists():
        return SnapshotDatabase.load(_CACHE_PATH)
    campaigns = build_benchmark_campaigns()
    database = next(iter(campaigns.values())).database
    database.save(_CACHE_PATH)
    return database


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches drop their rendered tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a bench's rendered output and persist it for inspection."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
