"""Ablation: replacement policies under the clustering workload.

Section 7 of the paper concludes that "new replacement policies should
be used, taking into account the clustering-based user behavior."  This
ablation compares LRU (the paper's baseline) against FIFO, LFU, SLRU,
and a category-partitioned LRU on the same Figure-19 workload.

Findings (the assertions below pin them):

- What clustering demand actually punishes is *churn*: users diving into
  per-category tails (one-off, fetch-at-most-once accesses) flush the
  stable popular head out of a plain LRU.  Policies that protect proven
  entries -- SLRU's protected segment, LFU's frequency ranking -- beat
  LRU, decisively at small cache sizes.
- Naive per-category partitioning (category-LRU) *underperforms* plain
  LRU at small sizes: reserving quota for every active category starves
  the globally hot head.  "Clustering-aware" must mean churn-resistant,
  not category-reserved.
- Tuning the protection harder pays: the clustering-tuned SLRU (90% of
  capacity protected, from :mod:`repro.cache.tuning`) beats the default
  SLRU at every size.
- FIFO trails LRU everywhere, as expected.
"""

import numpy as np
from conftest import emit

from repro.cache.policies import (
    CategoryAwareLruCache,
    FifoCache,
    LfuCache,
    LruCache,
    SegmentedLruCache,
)
from repro.cache.tuning import clustering_tuned_cache
from repro.cache.simulator import simulate_cache
from repro.core.models import ModelKind
from repro.reporting.tables import render_table
from repro.workload.generators import figure19_spec

SCALE = 0.02
CACHE_FRACTIONS = (0.01, 0.05, 0.10)


def run_policy_ablation():
    spec = figure19_spec(kind=ModelKind.APP_CLUSTERING, scale=SCALE, seed=9)
    counts = spec.download_counts()
    popularity_order = list(np.argsort(counts)[::-1])
    clusters = spec.cluster_assignment()

    def category_of(app):
        return int(clusters[app])

    policies = {
        "FIFO": lambda capacity: FifoCache(capacity),
        "LRU": lambda capacity: LruCache(capacity),
        "LFU": lambda capacity: LfuCache(capacity),
        "SLRU": lambda capacity: SegmentedLruCache(capacity),
        "tuned-SLRU-0.9": clustering_tuned_cache,
        "category-LRU": lambda capacity: CategoryAwareLruCache(
            capacity, category_of=category_of
        ),
    }
    results = {}
    for name, factory in policies.items():
        per_size = {}
        for fraction in CACHE_FRACTIONS:
            capacity = max(1, int(fraction * spec.n_apps))
            cache = factory(capacity)
            outcome = simulate_cache(
                spec.events(), cache, warm_keys=popularity_order[:capacity]
            )
            per_size[fraction] = outcome.hit_ratio
        results[name] = per_size
    return results


def render_policy_ablation(results) -> str:
    rows = []
    for name, per_size in results.items():
        rows.append(
            [name]
            + [round(per_size[fraction] * 100, 1) for fraction in CACHE_FRACTIONS]
        )
    return render_table(
        ["policy"] + [f"{f * 100:.0f}% cache" for f in CACHE_FRACTIONS],
        rows,
        title="Ablation: replacement policies under APP-CLUSTERING workload",
    )


def test_ablation_cache_policy(benchmark, results_dir):
    results = benchmark.pedantic(run_policy_ablation, rounds=1, iterations=1)
    emit(results_dir, "ablation_cache_policy", render_policy_ablation(results))

    for fraction in CACHE_FRACTIONS:
        # FIFO never beats LRU meaningfully.
        assert results["FIFO"][fraction] <= results["LRU"][fraction] + 0.02
    # Churn protection answers the paper's call: SLRU beats plain LRU at
    # the smallest cache, where clustering churn hurts most (Figure 19).
    assert results["SLRU"][0.01] > results["LRU"][0.01]
    # Tuning the protection harder helps further at small sizes.
    assert results["tuned-SLRU-0.9"][0.01] > results["SLRU"][0.01]
    # Frequency awareness wins once the cache has some headroom.
    assert results["LFU"][0.10] >= results["LRU"][0.10]
    # The negative result: naive per-category quotas starve the hot head
    # at small sizes.
    assert results["category-LRU"][0.01] < results["SLRU"][0.01]
