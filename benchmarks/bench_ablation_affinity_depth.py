"""Ablation: affinity depth scaling (Equations 3 and 4).

The paper evaluates depths 1-3; this ablation extends the sweep to depth
5 on the Anzhi comment streams and checks that both the measured
affinity and the random-walk baseline grow with depth while the measured
value stays above the baseline -- i.e. the clustering signal is not an
artifact of the depth parameter.
"""

from conftest import emit

from repro.analysis.affinity_study import affinity_study
from repro.reporting.tables import render_table

STORE = "anzhi"
DEPTHS = (1, 2, 3, 4, 5)


def run_depth_sweep(database):
    return affinity_study(database, STORE, depths=DEPTHS, min_group_size=10)


def render_depth_sweep(study) -> str:
    rows = [
        [
            depth,
            round(result.overall_mean, 3),
            round(result.median, 3),
            round(result.random_walk, 3),
            round(result.lift_over_random, 2),
        ]
        for depth, result in sorted(study.by_depth.items())
    ]
    return render_table(
        ["depth", "mean affinity", "median", "random walk", "lift (x)"],
        rows,
        title=f"Ablation ({STORE}): affinity depth sweep",
    )


def test_ablation_affinity_depth(benchmark, database, results_dir):
    study = benchmark.pedantic(
        run_depth_sweep, args=(database,), rounds=1, iterations=1
    )
    emit(results_dir, "ablation_affinity_depth", render_depth_sweep(study))

    baselines = [study.by_depth[d].random_walk for d in DEPTHS]
    # The random-walk baseline grows with depth (Equation 4)...
    assert baselines == sorted(baselines)
    # ...and on a fixed population of long strings the measured affinity
    # grows too (mixed-length means are not monotone in depth because
    # depth d excludes strings shorter than d+1).
    import numpy as np

    from repro.analysis.comments import user_category_strings
    from repro.core.affinity import temporal_affinity

    long_strings = [
        string
        for string in user_category_strings(database, STORE).values()
        if len(string) >= max(DEPTHS) + 3
    ]
    assert long_strings
    fixed_means = [
        float(np.mean([temporal_affinity(s, depth=d) for s in long_strings]))
        for d in DEPTHS
    ]
    assert fixed_means[0] < fixed_means[-1]
    # The clustering signal is not a depth artifact: measured affinity
    # stays above the baseline at every depth.
    for depth in DEPTHS:
        result = study.by_depth[depth]
        assert result.overall_mean > result.random_walk, depth
