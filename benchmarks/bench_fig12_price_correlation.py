"""Figure 12: expensive apps are less popular (SlideMe).

Paper: binning paid apps by one-dollar price bins, both the average
downloads per app and the number of apps fall with price; Pearson
coefficients -0.229 (price vs downloads) and -0.240 (price vs #apps).

Shape targets: both correlations negative; mass of apps at low prices.
"""

from conftest import emit

from repro.analysis.pricing_study import price_correlations
from repro.reporting.figures import render_series
from repro.reporting.tables import render_table

STORE = "slideme"


def render_correlations(correlations) -> str:
    rows = [
        [
            "price vs mean downloads",
            round(correlations.price_vs_downloads.coefficient, 3),
            correlations.price_vs_downloads.n,
        ],
        [
            "price vs number of apps",
            round(correlations.price_vs_app_count.coefficient, 3),
            correlations.price_vs_app_count.n,
        ],
    ]
    parts = [
        render_table(
            ["pair", "Pearson r", "price bins"],
            rows,
            title=f"Figure 12 ({STORE}): price correlations",
        ),
        render_series(
            correlations.price_bins,
            correlations.mean_downloads_per_bin,
            x_label="price ($)",
            y_label="mean downloads",
            title="-- downloads per price bin",
        ),
        render_series(
            correlations.price_bins,
            correlations.apps_per_bin,
            x_label="price ($)",
            y_label="apps",
            title="-- apps per price bin",
            float_format=",.0f",
        ),
    ]
    return "\n\n".join(parts)


def test_fig12_price_correlation(benchmark, database, results_dir):
    correlations = price_correlations(database, STORE)
    text = benchmark.pedantic(
        render_correlations, args=(correlations,), rounds=3, iterations=1
    )
    emit(results_dir, "fig12_price_correlation", text)

    # Both correlations negative, as in the paper (-0.229 / -0.240).
    assert correlations.price_vs_downloads.coefficient < 0
    assert correlations.price_vs_app_count.coefficient < 0
    # Most apps sit in the cheap bins.
    assert correlations.apps_per_bin[0] >= correlations.apps_per_bin[-1]
