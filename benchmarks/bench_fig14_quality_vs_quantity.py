"""Figure 14: quality is more important than quantity.

Paper: a developer's income is uncorrelated with the number of paid apps
they offer (Pearson r = 0.008) -- offering more apps does not buy more
income.

Shape targets: near-zero-to-weak correlation, and the top earner holds a
small portfolio.
"""

from conftest import emit

from repro.analysis.income import income_report
from repro.reporting.tables import render_table

STORE = "slideme"


def render_quality_quantity(report) -> str:
    counts, totals = report.apps_vs_income
    order = totals.argsort()[::-1][:10]
    rows = [
        [int(counts[i]), round(float(totals[i]), 2)] for i in order
    ]
    header = (
        f"Figure 14 ({STORE}): Pearson(#paid apps, income) = "
        f"{report.apps_income_correlation.coefficient:+.3f} over "
        f"{report.apps_income_correlation.n} developers"
    )
    table = render_table(
        ["paid apps", "income ($)"],
        rows,
        title="top-10 earners: portfolio size vs income",
    )
    return header + "\n\n" + table


def test_fig14_quality_vs_quantity(benchmark, database, results_dir):
    report = income_report(database, STORE)
    text = benchmark.pedantic(
        render_quality_quantity, args=(report,), rounds=3, iterations=1
    )
    emit(results_dir, "fig14_quality_vs_quantity", text)

    # Weak correlation (the paper: 0.008; grant slack at small scale).
    assert abs(report.apps_income_correlation.coefficient) < 0.7
    # The top earner is a focused account, not a prolific publisher.
    counts, totals = report.apps_vs_income
    assert counts[totals.argmax()] <= 3
