"""Figure 4: apps are not updated often.

Paper: over a two-month window, >80% of apps receive no update, 99%
fewer than four; among the top-10% most popular apps, 60-75% receive no
update and 99% at most six.  This validates fetch-at-most-once -- users
have little reason to re-download.
"""

from conftest import emit

from repro.analysis.updates import update_distribution
from repro.reporting.tables import render_table


def render_updates(database) -> str:
    rows = []
    for store in database.stores():
        full = update_distribution(database, store)
        top = update_distribution(database, store, top_fraction=0.1)
        rows.append(
            [
                store,
                round(full.fraction_never_updated * 100, 1),
                round(full.fraction_with_at_most(3) * 100, 1),
                round(top.fraction_never_updated * 100, 1),
                round(top.fraction_with_at_most(6) * 100, 1),
            ]
        )
    return render_table(
        [
            "store",
            "no updates (%)",
            "<4 updates (%)",
            "top-10%: no updates (%)",
            "top-10%: <=6 updates (%)",
        ],
        rows,
        title="Figure 4: CDF of app updates over the crawl window",
    )


def test_fig04_update_distribution(benchmark, database, results_dir):
    text = benchmark.pedantic(render_updates, args=(database,), rounds=3, iterations=1)
    emit(results_dir, "fig04_updates", text)

    for store in database.stores():
        full = update_distribution(database, store)
        # Shape: a clear majority of apps is never updated, and nearly all
        # apps see just a handful of updates.
        assert full.fraction_never_updated > 0.6, store
        assert full.fraction_with_at_most(6) > 0.95, store
        top = update_distribution(database, store, top_fraction=0.1)
        assert top.fraction_never_updated > 0.4, store
