"""Figure 3: app popularity deviates from Zipf at both ends.

Paper: per store, downloads vs. app rank in log-log space show a linear
Zipf trunk (annotated slopes 1.42 / 1.51 / 0.92 / 0.90) truncated at the
head (fetch-at-most-once) and at the tail (clustering effect).

Shape targets: a clear power-law trunk per store, with tail truncation
everywhere and head truncation at the busy stores.
"""

from conftest import emit

from repro.analysis.popularity import popularity_reports
from repro.reporting.figures import render_series
from repro.reporting.tables import render_table


def render_rank_distributions(database) -> str:
    reports = popularity_reports(database)
    rows = [
        [
            report.store,
            round(report.truncation.trunk.slope, 2),
            round(report.truncation.trunk.r_squared, 3),
            round(report.truncation.head_flatness, 2),
            round(report.truncation.tail_droop, 3),
            report.truncation.has_head_truncation,
            report.truncation.has_tail_truncation,
        ]
        for report in reports
    ]
    parts = [
        render_table(
            [
                "store",
                "trunk slope",
                "R^2",
                "head/trunk ratio",
                "tail/trunk ratio",
                "head truncated",
                "tail truncated",
            ],
            rows,
            title="Figure 3: Zipf trunk and truncations per store",
        )
    ]
    for report in reports:
        ranks, downloads = report.rank_series
        parts.append(
            render_series(
                ranks,
                downloads,
                x_label="app rank",
                y_label="downloads",
                title=f"-- {report.store} (log-log shape)",
                max_rows=12,
                float_format=",.0f",
            )
        )
    return "\n\n".join(parts)


def test_fig03_rank_distribution(benchmark, database, results_dir):
    text = benchmark.pedantic(
        render_rank_distributions, args=(database,), rounds=3, iterations=1
    )
    emit(results_dir, "fig03_rank_distribution", text)

    reports = {r.store: r for r in popularity_reports(database)}
    for store, report in reports.items():
        # A meaningful power-law trunk everywhere.
        assert report.truncation.trunk.slope > 0.3, store
        assert report.truncation.trunk.r_squared > 0.8, store
        # Tail truncation (the clustering-effect fingerprint) everywhere.
        assert report.truncation.has_tail_truncation, store
    # Head truncation at the busiest stores, where per-user saturation
    # bites (the paper: "especially in AppChina and Anzhi").
    assert reports["appchina"].truncation.head_flatness < 0.75
    assert reports["anzhi"].truncation.head_flatness < 0.75
