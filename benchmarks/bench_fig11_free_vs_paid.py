"""Figure 11: paid apps follow a clear Zipf distribution (SlideMe).

Paper: splitting SlideMe into free and paid populations, free apps show
the usual doubly truncated curve (annotated slope 0.85) while paid apps
follow a clean, steeper power law (slope 1.72) -- users are selective
when paying, so casual clustering downloads never reach the paid tail.

Shape targets: paid slope > free slope, paid full-range power-law fit
cleaner (higher R^2), and free apps far more downloaded on average.
"""

from conftest import emit

from repro.analysis.pricing_study import free_paid_split
from repro.reporting.figures import render_series
from repro.reporting.tables import render_table

STORE = "slideme"


def render_split(split) -> str:
    import numpy as np

    rows = [
        [
            "free",
            split.free_downloads.size,
            round(float(split.free_downloads.mean()), 1),
            round(split.free_fit.slope, 2),
            round(split.free_fit.r_squared, 3),
        ],
        [
            "paid",
            split.paid_downloads.size,
            round(float(split.paid_downloads.mean()), 1),
            round(split.paid_fit.slope, 2),
            round(split.paid_fit.r_squared, 3),
        ],
    ]
    parts = [
        render_table(
            ["population", "apps", "mean downloads", "slope", "R^2"],
            rows,
            title=f"Figure 11 ({STORE}): free vs paid rank distributions",
        )
    ]
    for name, downloads in (
        ("free", split.free_downloads),
        ("paid", split.paid_downloads),
    ):
        ranked = np.sort(downloads)[::-1]
        parts.append(
            render_series(
                np.arange(1, ranked.size + 1),
                ranked,
                x_label="rank",
                y_label="downloads",
                title=f"-- {name} apps",
                max_rows=10,
                float_format=",.0f",
            )
        )
    return "\n\n".join(parts)


def test_fig11_free_vs_paid(benchmark, database, results_dir):
    split = free_paid_split(database, STORE)
    text = benchmark.pedantic(render_split, args=(split,), rounds=3, iterations=1)
    emit(results_dir, "fig11_free_vs_paid", text)

    # Paid apps: a cleaner, steeper power law (paper: 1.72 vs 0.85).
    assert split.paid_fit.slope > split.free_fit.slope
    assert split.paid_fit.r_squared > split.free_fit.r_squared
    # Free apps dominate downloads.
    assert split.free_downloads.mean() > 3 * split.paid_downloads.mean()
