"""Ablation: Equation 5 verbatim vs. the corrected mean-field curve.

The paper's closed-form expected downloads (Equation 5) treats every
clustered selection of a user as an independent draw from the target
app's own cluster.  DESIGN.md calls out two corrections our fitting
path adds: the cluster-visit probability (only visitors of a cluster
draw from it) and distinct-draw (fetch-at-most-once) accounting.  This
ablation quantifies what each form costs against Monte Carlo truth.

Expected shapes: Equation 5 verbatim overestimates total downloads and
mid-rank mass; the corrected curve tracks the simulated rank curve
several times closer under the Equation-6 distance.
"""

import numpy as np
from conftest import emit

from repro.core.analytical import (
    expected_download_curve,
    expected_download_curve_corrected,
)
from repro.core.fitting import mean_relative_error
from repro.core.models import AppClusteringModel, AppClusteringParams
from repro.reporting.tables import render_table

PARAMS = AppClusteringParams(
    n_apps=1500,
    n_users=1500,
    total_downloads=25_000,
    zr=1.5,
    zc=1.4,
    p=0.9,
    n_clusters=30,
)
N_RUNS = 5


def run_analytical_ablation():
    simulated = np.zeros(PARAMS.n_apps, dtype=np.float64)
    for seed in range(N_RUNS):
        simulated += AppClusteringModel(PARAMS).simulate(seed=seed)
    simulated /= N_RUNS
    simulated_sorted = np.sort(simulated)[::-1]

    verbatim = np.sort(expected_download_curve(PARAMS))[::-1]
    corrected = np.sort(expected_download_curve_corrected(PARAMS))[::-1]

    rows = []
    for label, curve in (
        ("Equation 5 (verbatim)", verbatim),
        ("corrected mean-field", corrected),
    ):
        rows.append(
            (
                label,
                float(curve.sum()),
                mean_relative_error(simulated_sorted, curve),
                float(curve[:20].sum()) / float(simulated_sorted[:20].sum()),
            )
        )
    return simulated_sorted, rows


def render_ablation(simulated_sorted, rows) -> str:
    table = render_table(
        [
            "curve",
            "total downloads",
            "Eq.6 distance to MC",
            "head mass ratio (top 20)",
        ],
        [
            [label, round(total, 0), round(distance, 3), round(head, 3)]
            for label, total, distance, head in rows
        ],
        title=(
            "Ablation: analytical forms vs Monte Carlo "
            f"(MC total {simulated_sorted.sum():,.0f} over {N_RUNS} runs)"
        ),
    )
    return table


def test_ablation_analytical_forms(benchmark, results_dir):
    simulated_sorted, rows = benchmark.pedantic(
        run_analytical_ablation, rounds=1, iterations=1
    )
    emit(results_dir, "ablation_analytical", render_ablation(simulated_sorted, rows))

    by_label = {label: (total, distance, head) for label, total, distance, head in rows}
    verbatim = by_label["Equation 5 (verbatim)"]
    corrected = by_label["corrected mean-field"]
    mc_total = float(simulated_sorted.sum())
    # Equation 5 verbatim promises more downloads than the process delivers.
    assert verbatim[0] > mc_total
    # The corrected curve lands near the true total...
    assert abs(corrected[0] - mc_total) / mc_total < 0.15
    # ...and is at least 2x closer under the paper's own distance.
    assert corrected[1] * 2 < verbatim[1]