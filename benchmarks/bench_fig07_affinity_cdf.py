"""Figure 7: most users exhibit strong temporal affinity.

Paper: the CDF of per-user affinity shows medians of 0.5 / 0.58 / 0.67
for depths 1-3, all far to the right of the random-walk baselines
(0.14 / 0.28 / 0.42).
"""

import numpy as np
from conftest import emit

from repro.analysis.affinity_study import affinity_study
from repro.reporting.figures import render_cdf
from repro.reporting.tables import render_table

STORE = "anzhi"


def render_affinity_cdfs(database) -> str:
    study = affinity_study(database, STORE, depths=(1, 2, 3), min_group_size=10)
    rows = []
    parts = []
    for depth, result in sorted(study.by_depth.items()):
        values = result.all_affinities
        rows.append(
            [
                depth,
                round(float(np.median(values)), 3),
                round(result.random_walk, 3),
                round(
                    float(np.mean(values > result.random_walk)) * 100, 1
                ),
            ]
        )
        parts.append(render_cdf(values, f"depth {depth} affinity"))
    table = render_table(
        ["depth", "median affinity", "random walk", "users above baseline (%)"],
        rows,
        title=f"Figure 7 ({STORE}): per-user affinity CDFs",
    )
    return "\n\n".join([table] + parts)


def test_fig07_affinity_cdf(benchmark, database, results_dir):
    text = benchmark.pedantic(
        render_affinity_cdfs, args=(database,), rounds=1, iterations=1
    )
    emit(results_dir, "fig07_affinity_cdf", text)

    study = affinity_study(database, STORE, depths=(1, 2, 3), min_group_size=10)
    # At every depth, a majority of users sits above the random baseline
    # (Figure 7: "50% of the users have significantly higher affinity
    # than the base case").
    for depth, result in study.by_depth.items():
        above = float(np.mean(result.all_affinities > result.random_walk))
        assert above > 0.5, depth
    # Medians rise with depth on a fixed population of long strings (the
    # paper's 0.5 / 0.58 / 0.67; mixed-length medians are not monotone
    # because depth d excludes strings shorter than d+1).
    from repro.analysis.comments import user_category_strings
    from repro.core.affinity import temporal_affinity

    long_strings = [
        string
        for string in user_category_strings(database, STORE).values()
        if len(string) >= 6
    ]
    medians = [
        float(np.median([temporal_affinity(s, depth=d) for s in long_strings]))
        for d in (1, 2, 3)
    ]
    assert medians[0] <= medians[2]
