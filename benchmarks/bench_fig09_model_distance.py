"""Figure 9: APP-CLUSTERING has the smallest distance from measured data.

Paper: on the first and last crawled day of AppChina, Anzhi, and
1Mobile, APP-CLUSTERING's Equation-6 distance is up to 7.2x smaller than
ZIPF's and up to 6.4x smaller than ZIPF-at-most-once's.

Shape targets: APP-CLUSTERING wins on every store-day, with a clear
(>1.2x) margin over both baselines.
"""

from conftest import emit

from repro.analysis.model_validation import first_last_day_distances
from repro.core.models import ModelKind
from repro.reporting.tables import render_table

STORES = ("appchina", "anzhi", "1mobile")


def compute_distances(database):
    return first_last_day_distances(database, stores=STORES)


def render_distances(results) -> str:
    rows = []
    for result in results:
        rows.append(
            [
                result.store,
                result.day,
                round(result.fits[ModelKind.ZIPF].distance, 3),
                round(result.fits[ModelKind.ZIPF_AT_MOST_ONCE].distance, 3),
                round(result.fits[ModelKind.APP_CLUSTERING].distance, 3),
                round(result.improvement_over(ModelKind.ZIPF), 1),
                round(result.improvement_over(ModelKind.ZIPF_AT_MOST_ONCE), 1),
            ]
        )
    return render_table(
        [
            "store",
            "day",
            "ZIPF",
            "ZIPF-AMO",
            "APP-CLUSTERING",
            "vs ZIPF (x)",
            "vs ZIPF-AMO (x)",
        ],
        rows,
        title="Figure 9: model distance from measured data (first/last day)",
    )


def test_fig09_model_distance(benchmark, database, results_dir):
    results = compute_distances(database)
    text = benchmark.pedantic(
        render_distances, args=(results,), rounds=3, iterations=1
    )
    emit(results_dir, "fig09_model_distance", text)

    assert len(results) == 2 * len(STORES)
    for result in results:
        assert result.best.kind == ModelKind.APP_CLUSTERING, (
            result.store,
            result.day,
        )
        assert result.improvement_over(ModelKind.ZIPF) > 1.2
        assert result.improvement_over(ModelKind.ZIPF_AT_MOST_ONCE) > 1.1
