"""Figure 2: a few apps account for most of the downloads.

Paper: the CDF of downloads vs. normalized app ranking shows ~10% of
apps carrying 70-90% of downloads across the four stores, and the top 1%
alone carrying 30-70%.

Shape targets: strong concentration everywhere; the Chinese stores
(higher Zipf exponents, more clustered) concentrate harder than SlideMe.
"""

from conftest import emit

from repro.analysis.popularity import popularity_reports
from repro.reporting.figures import render_series
from repro.reporting.tables import render_table


def render_pareto(database) -> str:
    reports = popularity_reports(database)
    rows = [
        [
            report.store,
            round(report.pareto.share_top_1pct * 100, 1),
            round(report.pareto.share_top_10pct * 100, 1),
            round(report.pareto.share_top_20pct * 100, 1),
            round(report.pareto.gini, 3),
        ]
        for report in reports
    ]
    parts = [
        render_table(
            ["store", "top 1% share", "top 10% share", "top 20% share", "gini"],
            rows,
            title="Figure 2: percentage of downloads held by top apps",
        )
    ]
    for report in reports:
        x, y = report.pareto_series
        parts.append(
            render_series(
                x,
                y,
                x_label="app ranking (%)",
                y_label="downloads CDF (%)",
                title=f"-- {report.store}",
                max_rows=10,
            )
        )
    return "\n\n".join(parts)


def test_fig02_pareto_effect(benchmark, database, results_dir):
    text = benchmark.pedantic(render_pareto, args=(database,), rounds=3, iterations=1)
    emit(results_dir, "fig02_pareto", text)

    reports = {r.store: r for r in popularity_reports(database)}
    # Shape: every store shows a strong Pareto effect.
    for store, report in reports.items():
        assert report.pareto.share_top_10pct > 0.4, store
    # The Chinese stores concentrate harder than SlideMe, as in Figure 2.
    assert (
        reports["appchina"].pareto.share_top_1pct
        > reports["slideme"].pareto.share_top_1pct
    )
