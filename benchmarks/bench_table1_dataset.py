"""Table 1: summary of collected data.

Paper row format: per store, crawling period, total apps (first/last
day), new apps per day, total downloads (first/last day), daily
downloads.  SlideMe is split into free and paid rows.

Shape targets: AppChina and Anzhi lead daily downloads; 1Mobile hosts the
most apps but fewer downloads; SlideMe's paid row is tiny next to its
free row.
"""

from conftest import emit

from repro.analysis.dataset import dataset_summary
from repro.reporting.tables import render_table


def render_dataset_summary(database) -> str:
    rows = dataset_summary(database, split_free_paid=["slideme"])
    table_rows = [
        [
            row.store,
            row.crawl_days,
            row.apps_first_day,
            row.apps_last_day,
            round(row.new_apps_per_day, 1),
            row.downloads_first_day,
            row.downloads_last_day,
            round(row.daily_downloads, 1),
        ]
        for row in rows
    ]
    return render_table(
        [
            "store",
            "days",
            "apps (first)",
            "apps (last)",
            "new apps/day",
            "downloads (first)",
            "downloads (last)",
            "downloads/day",
        ],
        table_rows,
        title="Table 1: summary of collected data (scaled stores)",
    )


def test_table1_dataset_summary(benchmark, database, results_dir):
    text = benchmark.pedantic(
        render_dataset_summary, args=(database,), rounds=3, iterations=1
    )
    emit(results_dir, "table1_dataset", text)

    rows = {row.store: row for row in dataset_summary(database, split_free_paid=["slideme"])}
    # Shape checks mirroring the paper's Table 1 commentary.
    assert rows["appchina"].daily_downloads > rows["1mobile"].daily_downloads
    assert rows["anzhi"].daily_downloads > rows["1mobile"].daily_downloads
    assert rows["1mobile"].apps_last_day > rows["anzhi"].apps_last_day
    assert (
        rows["slideme (free)"].daily_downloads
        > rows["slideme (paid)"].daily_downloads
    )
