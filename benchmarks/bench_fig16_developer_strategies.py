"""Figure 16: developers create few apps, focused on few categories.

Paper: 60% of free-app developers and 70% of paid-app developers create
a single app; 95% offer fewer than 10; 75% (free) / 85% (paid) work in a
single category and 99% in at most five.  75% of developers offer only
free apps, 15% only paid, 10% both.
"""

from conftest import emit

from repro.analysis.strategies import developer_strategy_report
from repro.reporting.tables import render_table

STORE = "slideme"


def render_strategies(report) -> str:
    apps_rows = [
        [
            k,
            round(report.apps_per_developer_free(k) * 100, 1),
            round(report.apps_per_developer_paid(k) * 100, 1),
        ]
        for k in (1, 2, 5, 10, 100)
    ]
    categories_rows = [
        [
            k,
            round(report.categories_per_developer_free(k) * 100, 1),
            round(report.categories_per_developer_paid(k) * 100, 1),
        ]
        for k in (1, 2, 3, 5, 10)
    ]
    mix_rows = [
        [strategy, round(share * 100, 1)]
        for strategy, share in report.strategy_mix.items()
    ]
    return "\n\n".join(
        [
            render_table(
                ["<= k apps", "free developers (%)", "paid developers (%)"],
                apps_rows,
                title=f"Figure 16(a) ({STORE}): apps per developer (CDF)",
            ),
            render_table(
                ["<= k categories", "free developers (%)", "paid developers (%)"],
                categories_rows,
                title="Figure 16(b): unique categories per developer (CDF)",
            ),
            render_table(
                ["strategy", "developers (%)"],
                mix_rows,
                title="pricing-strategy mix",
            ),
        ]
    )


def test_fig16_developer_strategies(benchmark, database, results_dir):
    report = developer_strategy_report(database, STORE)
    text = benchmark.pedantic(render_strategies, args=(report,), rounds=3, iterations=1)
    emit(results_dir, "fig16_developer_strategies", text)

    # (a) most developers offer very few apps.
    assert report.apps_per_developer_free(9) > 0.85
    assert report.apps_per_developer_paid(9) > 0.85
    # (b) nearly all developers focus on at most five categories.
    assert report.categories_per_developer_free(5) > 0.9
    assert report.categories_per_developer_paid(5) > 0.9
    # Most developers pick a single pricing strategy.
    mix = report.strategy_mix
    assert mix["free_only"] + mix["paid_only"] > mix["both"]
    assert mix["free_only"] > mix["paid_only"]
