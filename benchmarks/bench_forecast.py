"""Extension: forecasting downloads from the fitted model (Section 7).

The paper's implications propose using the download model "to estimate
future app downloads based on app popularity" and "pinpoint problematic
apps".  This bench fits APP-CLUSTERING on each store's *first* crawled
day, extrapolates to the *last* day, and validates against the realized
curve -- then flags the apps growing far below their rank's expectation.

Expected shapes: the forecast's Equation-6 distance to the realized
curve stays small (comparable to the same-day fit quality), the
predicted totals land in the right ballpark, and the flagged apps are a
small minority.
"""

import numpy as np
from conftest import emit

from repro.core.prediction import find_problematic_apps, forecast_downloads
from repro.reporting.tables import render_table

STORES = ("appchina", "anzhi", "1mobile")


def run_forecasts(database):
    results = []
    for store in STORES:
        forecast = forecast_downloads(database, store)
        observed = database.download_vector(store, forecast.target_day).astype(
            float
        )
        distance = forecast.evaluate(observed[observed > 0])
        problematic = find_problematic_apps(database, store)
        n_apps = observed[observed > 0].size
        results.append(
            (
                store,
                forecast.horizon_days,
                forecast.predicted_total(),
                float(observed.sum()),
                distance,
                len(problematic),
                n_apps,
            )
        )
    return results


def render_forecasts(results) -> str:
    rows = [
        [
            store,
            horizon,
            round(predicted, 0),
            round(realized, 0),
            round(distance, 3),
            flagged,
            round(100.0 * flagged / n_apps, 1),
        ]
        for store, horizon, predicted, realized, distance, flagged, n_apps in results
    ]
    return render_table(
        [
            "store",
            "horizon (days)",
            "predicted total",
            "realized total",
            "Eq.6 distance",
            "problematic apps",
            "flagged (%)",
        ],
        rows,
        title="Forecast: first-day fit extrapolated to the last crawled day",
    )


def test_forecast_downloads(benchmark, database, results_dir):
    results = benchmark.pedantic(
        run_forecasts, args=(database,), rounds=1, iterations=1
    )
    emit(results_dir, "forecast", render_forecasts(results))

    for store, horizon, predicted, realized, distance, flagged, n_apps in results:
        assert horizon > 0, store
        # Totals in the right ballpark (within 2x either way).
        assert 0.5 < predicted / realized < 2.0, store
        # The rank-curve forecast is usable (the same-day fits in
        # Figure 8 land at 0.05-0.12; allow headroom for the horizon).
        assert distance < 0.8, store
        # Problematic apps are a minority, not the population.
        assert flagged < 0.3 * n_apps, store