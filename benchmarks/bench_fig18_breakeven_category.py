"""Figure 18: some categories favor the free-with-ads strategy.

Paper: the break-even ad income varies by orders of magnitude across
categories -- music needs ~$1.60 per download (its paid blockbusters are
hard to match) while wallpapers and e-books need ~$0.002.

Shape targets: a multi-order-of-magnitude spread across categories with
music at (or near) the top.
"""

from conftest import emit

from repro.analysis.strategies import break_even_report
from repro.reporting.tables import render_table

STORE = "slideme"


def render_breakeven_by_category(report) -> str:
    ordered = sorted(
        report.by_category.items(), key=lambda pair: pair[1], reverse=True
    )
    rows = [[category, round(value, 4)] for category, value in ordered]
    return render_table(
        ["category", "break-even ad income ($/download)"],
        rows,
        title=f"Figure 18 ({STORE}): break-even ad income per category",
    )


def test_fig18_breakeven_by_category(benchmark, database, results_dir):
    report = break_even_report(database, STORE)
    text = benchmark.pedantic(
        render_breakeven_by_category, args=(report,), rounds=3, iterations=1
    )
    emit(results_dir, "fig18_breakeven_category", text)

    values = report.by_category
    assert len(values) >= 5
    # A wide spread across categories (paper: 1.60 down to 0.002).
    assert max(values.values()) > 10 * min(values.values())
    # Music is among the hardest categories to match with ads.
    if "music" in values:
        ordered = sorted(values.values(), reverse=True)
        assert values["music"] >= ordered[min(2, len(ordered) - 1)]
