"""Methodology check: do comments really proxy download patterns?

Section 4 of the paper measures temporal affinity on *comment* streams
because stores do not reveal per-user downloads, assuming "publicly
available comments provide us with access to a subset of the download
patterns of individual users".  The paper cannot test that assumption;
our simulator can, because it has the ground-truth download log.

This bench builds a store with the raw event log enabled, computes the
affinity study twice -- once from the true download streams, once from
the comment streams the crawler sees -- and compares.

Finding: the proxy is faithful but *attenuated*.  Comments sample the
download stream sparsely (each download comments with probability ~0.15
here), and subsampling a sequence dilutes its sequential structure, so
comment-based affinity sits a little below download-based affinity at
every depth while both remain far above the random-walk baseline.  The
implication for the paper is reassuring: its comment-measured affinity
(Figures 6-7) *underestimates* the true download affinity -- the
clustering effect is, if anything, stronger than reported.
"""

import numpy as np
from conftest import emit

from repro.core.affinity import random_walk_affinity, temporal_affinity
from repro.crawler.scheduler import run_crawl_campaign
from repro.marketplace.profiles import demo_profile
from repro.reporting.tables import render_table

DEPTHS = (1, 2, 3)


def _affinities(streams, depth):
    values = [
        value
        for stream in streams.values()
        if (value := temporal_affinity(stream, depth=depth)) is not None
    ]
    return float(np.mean(values)) if values else float("nan")


def run_proxy_validation():
    profile = demo_profile(
        name="proxycheck",
        initial_apps=600,
        new_apps_per_day=2.0,
        crawl_days=14,
        warmup_days=6,
        daily_downloads=2500.0,
        warmup_daily_downloads=2500.0,
        n_users=1200,
        n_categories=12,
        comment_probability=0.15,
        spam_users=0,
    )
    campaign = run_crawl_campaign(profile, seed=31, keep_download_log=True)
    store = campaign.generated.store

    category_of = {
        app.app_id: app.category for app in store.apps()
    }

    # Ground truth: per-user download category streams.
    download_streams = {}
    for record in store.download_log():
        if record.is_update:
            continue
        download_streams.setdefault(record.user_id, []).append(
            category_of[record.app_id]
        )

    # The proxy: per-user comment category streams, as the crawler saw.
    from repro.analysis.comments import user_category_strings

    comment_streams = user_category_strings(
        campaign.database, campaign.store_name
    )

    counts = [len(s) for s in category_of.values()]
    sizes = {}
    for category in category_of.values():
        sizes[category] = sizes.get(category, 0) + 1

    rows = []
    for depth in DEPTHS:
        rows.append(
            (
                depth,
                _affinities(download_streams, depth),
                _affinities(comment_streams, depth),
                random_walk_affinity(list(sizes.values()), depth=depth),
            )
        )
    return rows


def render_validation(rows) -> str:
    return render_table(
        [
            "depth",
            "affinity from true downloads",
            "affinity from comments (the paper's proxy)",
            "random walk",
        ],
        [
            [depth, round(downloads, 3), round(comments, 3), round(walk, 3)]
            for depth, downloads, comments, walk in rows
        ],
        title="Proxy validation: comment streams vs ground-truth downloads",
    )


def test_comments_proxy_downloads(benchmark, results_dir):
    rows = benchmark.pedantic(run_proxy_validation, rounds=1, iterations=1)
    emit(results_dir, "proxy_validation", render_validation(rows))

    for depth, from_downloads, from_comments, walk in rows:
        # The proxy is attenuated, not inflated: subsampling can only
        # dilute sequential structure, so comments bound the truth from
        # below (within noise)...
        assert from_comments <= from_downloads + 0.03, depth
        # ...and the attenuation is modest.
        assert from_downloads - from_comments < 0.20, depth
        # Both carry the clustering signal far above random wandering.
        assert from_downloads > 1.5 * walk, depth
        assert from_comments > 1.5 * walk, depth