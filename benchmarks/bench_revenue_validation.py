"""Extension: validating Equation 7 with a simulated ad funnel.

The paper could only compute the ad income a free app *needs* (the
break-even threshold), because it had no post-install usage data.  Our
substrate generates that data: this bench simulates usage sessions and an
advertising funnel over the crawled SlideMe population and reports, per
category, the income a free app actually *earns* against its threshold.

Expected shapes: earned income varies by category engagement (games >
wallpapers), the cheap-threshold categories clear the bar while the
blockbuster-led ones (music) do not, and the win/lose split follows the
threshold ordering of Figure 18.
"""

from conftest import emit

from repro.analysis.income import paid_app_records
from repro.analysis.strategies import free_app_records
from repro.reporting.tables import render_table
from repro.revenue_sim.ads import AdMonetization
from repro.revenue_sim.comparison import compare_strategies
from repro.revenue_sim.usage import UsageModel

STORE = "slideme"

# Calibrated to the scaled store: thresholds there sit higher than the
# paper's (a blockbuster dominates a small paid population), so the
# funnel is proportionally generous.  The *comparative* statements are
# scale-free.
MONETIZATION = AdMonetization(
    impressions_per_session=5.0,
    click_through_rate=0.05,
    revenue_per_click=0.5,
    ecpm=5.0,
)


def run_revenue_validation(database):
    paid_apps = paid_app_records(database, STORE)
    free_apps = free_app_records(database, STORE)
    return compare_strategies(
        paid_apps,
        free_apps,
        usage=UsageModel(),
        monetization=MONETIZATION,
        installs_per_category=2000,
        seed=13,
    )


def render_validation(comparison) -> str:
    rows = [
        [
            outcome.category,
            round(outcome.break_even_income, 3),
            round(outcome.simulated_income, 3),
            outcome.free_strategy_wins,
        ]
        for outcome in sorted(
            comparison.outcomes, key=lambda o: o.break_even_income
        )
    ]
    table = render_table(
        [
            "category",
            "needed ($/download, Eq. 7)",
            "earned ($/download, simulated)",
            "free wins",
        ],
        rows,
        title="Equation 7 validated ex post: needed vs earned ad income",
    )
    return table + "\n\n" + comparison.describe()


def test_revenue_validation(benchmark, database, results_dir):
    comparison = benchmark.pedantic(
        run_revenue_validation, args=(database,), rounds=1, iterations=1
    )
    emit(results_dir, "revenue_validation", render_validation(comparison))

    # The free strategy wins somewhere but not everywhere.
    assert 0.0 < comparison.win_fraction < 1.0
    # Winners have lower thresholds than losers (the Figure 18 ordering
    # decides the outcome, not the funnel noise).
    winners = [o for o in comparison.outcomes if o.free_strategy_wins]
    losers = [o for o in comparison.outcomes if not o.free_strategy_wins]
    assert max(o.break_even_income for o in winners) < max(
        o.break_even_income for o in losers
    )
    # Music (blockbuster paid apps) stays out of reach.
    music = next(
        (o for o in comparison.outcomes if o.category == "music"), None
    )
    if music is not None:
        assert not music.free_strategy_wins