"""Figure 13: most developers have negligible income from paid apps.

Paper: half of SlideMe developers earned less than $10, 27% earned
nothing, 80% less than $100, 95% less than $1,500, while the top ~1%
earned millions.

Shape targets: a heavily skewed income CDF -- a majority near zero, a
tiny elite far above the median.
"""

import numpy as np
from conftest import emit

from repro.analysis.income import income_report
from repro.reporting.figures import render_cdf
from repro.reporting.tables import render_table

STORE = "slideme"


def render_income_cdf(report) -> str:
    incomes = np.array(list(report.incomes.values()))
    thresholds = [0.0, 1.0, 10.0, 100.0, 1000.0]
    rows = [
        [f"<= ${threshold:,.0f}", round(report.fraction_below(threshold) * 100, 1)]
        for threshold in thresholds
    ]
    parts = [
        render_table(
            ["income level", "developers (%)"],
            rows,
            title=f"Figure 13 ({STORE}): CDF of income per developer",
        ),
        render_cdf(incomes, "developer income ($)"),
        (
            f"top 1% of developers earn >= "
            f"${float(np.quantile(incomes, 0.99)):,.0f}; "
            f"maximum ${float(incomes.max()):,.0f}"
        ),
    ]
    return "\n\n".join(parts)


def test_fig13_income_cdf(benchmark, database, results_dir):
    report = income_report(database, STORE)
    text = benchmark.pedantic(render_income_cdf, args=(report,), rounds=3, iterations=1)
    emit(results_dir, "fig13_income_cdf", text)

    incomes = np.array(list(report.incomes.values()))
    median = float(np.median(incomes))
    # Shape: a majority earns little; the elite earns orders more.
    assert report.fraction_below(median + 1e-9) >= 0.5
    assert float(incomes.max()) > 20 * max(median, 1.0)
    # Some developers with paid apps earned nothing at all.
    assert report.fraction_below(0.0) > 0.0
