"""Figure 8: predicted vs. measured app popularity, per store.

Paper: for AppChina, Anzhi, and 1Mobile, the APP-CLUSTERING model's
best-fit curve tracks the measured rank-downloads curve closely, while
pure ZIPF overshoots the head by an order of magnitude and
ZIPF-at-most-once diverges in the tail.  Best fits land around
zr = 1.4-1.7, zc = 1.4-1.5, p = 0.9-0.95.

Shape targets: APP-CLUSTERING's distance is the smallest for every
store, and its best-fit p is high (clustering carries most downloads).
"""

from conftest import emit

from repro.analysis.model_validation import fit_store_day
from repro.core.models import ModelKind
from repro.reporting.figures import render_series
from repro.reporting.tables import render_table

STORES = ("appchina", "anzhi", "1mobile")


def fit_all_stores(database):
    return {store: fit_store_day(database, store) for store in STORES}


def render_fits(fits_by_store) -> str:
    rows = []
    for store, fits in fits_by_store.items():
        for kind in ModelKind:
            fit = fits.fits[kind]
            rows.append(
                [
                    store,
                    kind.value,
                    round(fit.distance, 3),
                    fit.zr,
                    fit.p if fit.p is not None else None,
                    fit.zc if fit.zc is not None else None,
                ]
            )
    parts = [
        render_table(
            ["store", "model", "distance", "zr", "p", "zc"],
            rows,
            title="Figure 8: best-fit parameters and distances per model",
            float_format=".2f",
        )
    ]
    for store, fits in fits_by_store.items():
        best = fits.best
        parts.append(
            render_series(
                range(1, len(fits.observed) + 1),
                fits.observed,
                x_label="rank",
                y_label="measured",
                title=f"-- {store}: measured curve (best model: {best.describe()})",
                max_rows=10,
                float_format=",.0f",
            )
        )
    return "\n\n".join(parts)


def test_fig08_model_fit(benchmark, database, results_dir):
    fits_by_store = fit_all_stores(database)
    text = benchmark.pedantic(
        render_fits, args=(fits_by_store,), rounds=3, iterations=1
    )
    emit(results_dir, "fig08_model_fit", text)

    for store, fits in fits_by_store.items():
        assert fits.best.kind == ModelKind.APP_CLUSTERING, store
        # Clustering carries most downloads in the best fit.
        assert fits.best.p >= 0.5, store
