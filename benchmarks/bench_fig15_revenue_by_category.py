"""Figure 15: revenue comes from few categories.

Paper: on SlideMe, 67.7% of paid revenue comes from music (holding just
1.6% of paid apps), 19.7% from games; the top four categories carry 95%
of revenue.  Revenue share per category is uncorrelated with its app
share (r = 0.014).

Shape targets: heavy revenue concentration in the top categories, music
near the top despite a small app share, and a weak revenue-apps
correlation.
"""

import numpy as np
from conftest import emit

from repro.analysis.income import income_report
from repro.reporting.tables import render_table
from repro.stats.correlation import pearson

STORE = "slideme"


def render_category_revenue(report) -> str:
    rows = [
        [category, round(revenue, 2), round(apps, 2), round(developers, 2)]
        for category, revenue, apps, developers in report.category_rows
    ]
    return render_table(
        ["category", "revenue (%)", "apps (%)", "developers (%)"],
        rows,
        title=f"Figure 15 ({STORE}): revenue / apps / developers per category",
    )


def test_fig15_revenue_by_category(benchmark, database, results_dir):
    report = income_report(database, STORE)
    text = benchmark.pedantic(
        render_category_revenue, args=(report,), rounds=3, iterations=1
    )
    emit(results_dir, "fig15_revenue_by_category", text)

    rows = report.category_rows
    # Revenue concentration: the top four categories dominate.
    top4 = sum(row[1] for row in rows[:4])
    assert top4 > 60.0
    # Music punches far above its app share (blockbuster effect).
    music = next((row for row in rows if row[0] == "music"), None)
    assert music is not None
    assert music[1] > 2 * music[2]
    # Revenue share vs app share: weak relation (paper: r = 0.014).
    revenue_shares = np.array([row[1] for row in rows])
    app_shares = np.array([row[2] for row in rows])
    assert abs(pearson(revenue_shares, app_shares).coefficient) < 0.8
