"""Columnar snapshot store benchmark: ingest, day queries, resident set.

Three measurements, all against the out-of-core store behind
:class:`repro.crawler.database.SnapshotDatabase`:

- **ingest** -- rows/s through the bulk ``extend_snapshots`` path (one
  sealed chunk per crawl day) and through the row-at-a-time crawler API;
- **day queries** -- latency of ``download_vector(store, day)`` against
  a faithful re-creation of the seed's flat-dict scan (every day query
  walked all (store, day, app) keys); the acceptance bar is a >=10x
  speedup at 100k apps x 150 crawl days;
- **resident set** -- a fresh subprocess opens the packed 4-store
  dataset and answers queries in every store; its peak RSS must stay
  under 25% of the dataset's uncompressed JSONL size (the mmap path is
  doing its job).

Results append to ``BENCH_store.json`` at the repo root so future PRs
have a performance trajectory to compare against.

Run modes
---------
- ``make bench-store-smoke`` / ``pytest benchmarks/bench_store.py -m
  bench_smoke`` -- small sizes, asserts exactness + direction, seconds.
- ``PYTHONPATH=src python benchmarks/bench_store.py`` -- the paper-scale
  run; writes ``BENCH_store.json``.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.crawler.database import SnapshotDatabase
from repro.obs.manifest import RunManifest, write_metrics_jsonl
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.stats.rng import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_store.json"
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The day-query acceptance workload: one store, 100k apps, 150 days.
QUERY_REFERENCE = dict(n_apps=100_000, n_days=150)
QUERY_SMOKE = dict(n_apps=3_000, n_days=8)

#: The 4-store resident-set workload (paper-scale catalog shapes).
RSS_REFERENCE = (
    ("anzhi", 60_000, 44),
    ("appchina", 55_000, 44),
    ("1mobile", 35_000, 44),
    ("slideme", 12_000, 75),
)
RSS_SMOKE = (("demo-a", 2_000, 6), ("demo-b", 1_500, 6))

_N_CATEGORIES = 30
_N_VERSIONS = 12

#: Subprocess probe: open a packed dataset cold, query every store, and
#: report the checksum plus the process's peak resident set.
_RSS_PROBE = """
import json, sys
from repro.crawler.database import SnapshotDatabase


def peak_rss_bytes():
    # VmHWM belongs to the post-exec address space; ru_maxrss keeps the
    # high-water mark of the forked (copy-on-write) parent image, which
    # would report the benchmark parent's footprint instead of ours.
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource

    scale = 1 if sys.platform == "darwin" else 1024
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale


database = SnapshotDatabase.load(sys.argv[1])
checksum = 0
for store in database.stores():
    days = database.days(store)
    for day in (days[0], days[len(days) // 2], days[-1]):
        checksum += int(database.download_vector(store, day).sum())
print(json.dumps({"checksum": checksum, "peak_rss_bytes": peak_rss_bytes()}))
"""


class _CountingSink(io.TextIOBase):
    """A write-only text sink that counts bytes instead of storing them."""

    def __init__(self) -> None:
        self.bytes_written = 0

    def write(self, text: str) -> int:
        encoded = len(text.encode("utf-8"))
        self.bytes_written += encoded
        return len(text)


@dataclass(frozen=True)
class IngestTiming:
    """Bulk and per-row ingest throughput."""

    n_rows: int
    bulk_seconds: float
    per_row_rows: int
    per_row_seconds: float

    @property
    def bulk_rows_per_sec(self) -> float:
        return self.n_rows / self.bulk_seconds if self.bulk_seconds else 0.0

    @property
    def per_row_rows_per_sec(self) -> float:
        if not self.per_row_seconds:
            return 0.0
        return self.per_row_rows / self.per_row_seconds

    def describe(self) -> str:
        return (
            f"ingest: bulk {self.bulk_rows_per_sec:,.0f} rows/s "
            f"({self.n_rows:,} rows), per-row "
            f"{self.per_row_rows_per_sec:,.0f} rows/s"
        )


@dataclass(frozen=True)
class DayQueryTiming:
    """Chunk-indexed day queries vs the seed's flat-dict scan."""

    n_apps: int
    n_days: int
    n_queries: int
    legacy_seconds: float
    columnar_seconds: float

    @property
    def legacy_per_query(self) -> float:
        return self.legacy_seconds / self.n_queries if self.n_queries else 0.0

    @property
    def columnar_per_query(self) -> float:
        if not self.n_queries:
            return 0.0
        return self.columnar_seconds / self.n_queries

    @property
    def speedup(self) -> float:
        if self.columnar_seconds == 0:
            return float("inf")
        return self.legacy_seconds / self.columnar_seconds

    def describe(self) -> str:
        return (
            f"day queries ({self.n_apps:,} apps x {self.n_days} days): "
            f"dict scan {self.legacy_per_query * 1e3:.1f} ms/query, "
            f"chunk index {self.columnar_per_query * 1e6:.0f} us/query "
            f"({self.speedup:,.0f}x)"
        )


@dataclass(frozen=True)
class ResidentSetResult:
    """Peak RSS of a cold subprocess querying the packed dataset."""

    n_stores: int
    n_rows: int
    jsonl_bytes: int
    packed_bytes: int
    peak_rss_bytes: int
    checksum_matches: bool

    @property
    def rss_fraction(self) -> float:
        if not self.jsonl_bytes:
            return float("inf")
        return self.peak_rss_bytes / self.jsonl_bytes

    def describe(self) -> str:
        check = "==" if self.checksum_matches else "!="
        return (
            f"resident set: {self.n_stores} stores, {self.n_rows:,} rows; "
            f"JSONL {self.jsonl_bytes / 1e6:,.0f} MB, packed "
            f"{self.packed_bytes / 1e6:,.0f} MB, peak RSS "
            f"{self.peak_rss_bytes / 1e6:,.0f} MB "
            f"({self.rss_fraction * 100:.1f}% of JSONL, checksum {check})"
        )


def _day_columns(
    store_seed: int, day: int, n_apps: int
) -> Dict[str, np.ndarray]:
    """Synthetic pre-encoded snapshot columns for one (store, day).

    Downloads grow linearly at a per-app rate so day queries see
    realistic monotone counts; everything derives from ``store_seed`` so
    the dataset is identical across runs.
    """
    rng = make_rng(store_seed)
    app_ids = np.arange(n_apps, dtype=np.int64)
    base = rng.integers(0, 5_000, size=n_apps, dtype=np.int64)
    rate = rng.integers(0, 40, size=n_apps, dtype=np.int64)
    return {
        "app_id": app_ids,
        "name_id": app_ids.astype(np.int32),
        "category_id": (app_ids % _N_CATEGORIES).astype(np.int32),
        "developer_id": app_ids // 4,
        "price": np.zeros(n_apps, dtype=np.float64),
        "declares_ads": (app_ids % 3 == 0),
        "total_downloads": base + rate * day,
        "rating_count": base // 10,
        "average_rating": np.full(n_apps, 3.5, dtype=np.float64),
        "comment_count": base // 50,
        "version_id": ((app_ids + day // 30) % _N_VERSIONS).astype(np.int32),
    }


def _intern_tables(database: SnapshotDatabase, n_apps: int) -> None:
    """Pre-populate the intern tables the encoded columns reference."""
    columnar = database.columnar
    for index in range(n_apps):
        columnar.names.intern(f"app-{index}")
    for index in range(_N_CATEGORIES):
        columnar.categories.intern(f"category-{index}")
    for index in range(_N_VERSIONS):
        columnar.versions.intern(f"1.{index}")


def build_store_database(
    shapes: Tuple[Tuple[str, int, int], ...], seed: int = 0
) -> Tuple[SnapshotDatabase, IngestTiming]:
    """Build a multi-store database through the bulk ingest path."""
    database = SnapshotDatabase()
    columnar = database.columnar
    _intern_tables(database, max(n_apps for _, n_apps, _ in shapes))

    n_rows = 0
    start = time.perf_counter()
    for index, (store, n_apps, n_days) in enumerate(shapes):
        for day in range(n_days):
            columnar.extend_snapshots(
                store, day, _day_columns(seed + index, day, n_apps)
            )
            columnar.seal_chunk(store, day)
            n_rows += n_apps
    bulk_seconds = time.perf_counter() - start

    # Per-row reference: the crawler API, one day of the first store's
    # shape appended to a scratch database.
    scratch = SnapshotDatabase()
    _, n_apps, _ = shapes[0]
    per_row_rows = min(n_apps, 20_000)
    start = time.perf_counter()
    for app_id in range(per_row_rows):
        scratch.columnar.add_snapshot_row(
            "scratch",
            0,
            app_id,
            f"app-{app_id}",
            f"category-{app_id % _N_CATEGORIES}",
            app_id // 4,
            0.0,
            False,
            100,
            10,
            3.5,
            2,
            "1.0",
        )
    scratch.columnar.seal_chunk("scratch", 0)
    per_row_seconds = time.perf_counter() - start

    timing = IngestTiming(
        n_rows=n_rows,
        bulk_seconds=bulk_seconds,
        per_row_rows=per_row_rows,
        per_row_seconds=per_row_seconds,
    )
    return database, timing


def _legacy_flat_dict(
    database: SnapshotDatabase, store: str
) -> Dict[Tuple[str, int, int], int]:
    """The seed's storage shape: one flat dict over every (day, app) key.

    Day queries against it scan all keys, exactly like the seed's
    ``snapshots_on``; values are just the download counts, which makes
    the baseline *faster* than the real dataclass scan -- the reported
    speedup is conservative.
    """
    flat: Dict[Tuple[str, int, int], int] = {}
    for chunk in database.columnar.chunks(store):
        day = chunk.day
        for app_id, downloads in zip(
            chunk.app_ids().tolist(),
            chunk.column("total_downloads").tolist(),
        ):
            flat[(store, day, app_id)] = downloads
    return flat


def time_day_queries(
    database: SnapshotDatabase,
    store: str,
    n_apps: int,
    n_days: int,
    n_queries: int = 8,
) -> DayQueryTiming:
    """Time chunk-indexed day queries against the flat-dict scan."""
    days = database.days(store)
    sample = [days[(i * len(days)) // n_queries] for i in range(n_queries)]
    flat = _legacy_flat_dict(database, store)

    start = time.perf_counter()
    legacy_checksum = 0
    for day in sample:
        values = [
            downloads
            for (key_store, key_day, _), downloads in flat.items()
            if key_store == store and key_day == day
        ]
        legacy_checksum += sum(values)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    columnar_checksum = 0
    for day in sample:
        columnar_checksum += int(database.download_vector(store, day).sum())
    columnar_seconds = time.perf_counter() - start

    if legacy_checksum != columnar_checksum:
        raise AssertionError(
            f"query paths disagree: dict scan {legacy_checksum} != "
            f"chunk index {columnar_checksum}"
        )
    return DayQueryTiming(
        n_apps=n_apps,
        n_days=n_days,
        n_queries=len(sample),
        legacy_seconds=legacy_seconds,
        columnar_seconds=columnar_seconds,
    )


def measure_resident_set(
    database: SnapshotDatabase, pack_path: Path
) -> ResidentSetResult:
    """Pack the database and probe a cold subprocess's peak RSS."""
    sink = _CountingSink()
    database.dump_jsonl(sink)
    packed_bytes = database.pack(pack_path)

    expected = 0
    for store in database.stores():
        days = database.days(store)
        for day in (days[0], days[len(days) // 2], days[-1]):
            expected += int(database.download_vector(store, day).sum())

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    probe = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, str(pack_path)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    report = json.loads(probe.stdout)

    return ResidentSetResult(
        n_stores=len(database.stores()),
        n_rows=database.columnar.n_snapshot_rows(),
        jsonl_bytes=sink.bytes_written,
        packed_bytes=packed_bytes,
        peak_rss_bytes=int(report["peak_rss_bytes"]),
        checksum_matches=int(report["checksum"]) == expected,
    )


def write_results(
    label: str,
    ingest: IngestTiming,
    day_query: DayQueryTiming,
    resident: ResidentSetResult,
    path: Path = DEFAULT_OUTPUT,
) -> dict:
    """Append a benchmark record to the JSON trajectory file."""
    record = {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "ingest": {
            **asdict(ingest),
            "bulk_rows_per_sec": round(ingest.bulk_rows_per_sec, 1),
            "per_row_rows_per_sec": round(ingest.per_row_rows_per_sec, 1),
        },
        "day_query": {
            **asdict(day_query),
            "legacy_per_query_ms": round(day_query.legacy_per_query * 1e3, 3),
            "columnar_per_query_ms": round(
                day_query.columnar_per_query * 1e3, 6
            ),
            "speedup": round(day_query.speedup, 1),
        },
        "resident_set": {
            **asdict(resident),
            "rss_fraction": round(resident.rss_fraction, 4),
        },
    }
    history = []
    if path.exists():
        history = json.loads(path.read_text(encoding="utf-8"))
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return record


def _write_metrics_sidecar(
    registry: MetricsRegistry, label: str, seed: int, path: Path
) -> Path:
    """Write the run's store counters next to its timing output."""
    path.parent.mkdir(exist_ok=True)
    manifest = RunManifest(
        command=f"bench-store-{label}",
        seed=seed,
        params={"label": label},
    )
    return write_metrics_jsonl(path, registry, manifest)


def run_benchmark(
    query_sizes: Dict[str, int],
    rss_shapes: Tuple[Tuple[str, int, int], ...],
    pack_path: Path,
    seed: int = 0,
) -> Tuple[IngestTiming, DayQueryTiming, ResidentSetResult]:
    """Run all three measurements and return their results."""
    query_store = ("query-store", query_sizes["n_apps"], query_sizes["n_days"])
    database, ingest = build_store_database((query_store,), seed=seed)
    day_query = time_day_queries(
        database,
        "query-store",
        query_sizes["n_apps"],
        query_sizes["n_days"],
    )
    rss_database, _ = build_store_database(rss_shapes, seed=seed + 1)
    resident = measure_resident_set(rss_database, pack_path)
    return ingest, day_query, resident


@pytest.mark.bench_smoke
def test_bench_store_smoke(tmp_path):
    """Smoke mode: exactness and direction at small sizes, in seconds.

    The flat-dict baseline and the chunk index must agree on every
    checksum (both are asserted inside the timing helpers), the columnar
    path must win the day-query comparison even at smoke sizes, and the
    packed-dataset probe must reproduce the in-process answers from a
    cold subprocess.  The 10x / 25%-RSS acceptance bars apply to the
    paper-scale run (see ``main``).
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        ingest, day_query, resident = run_benchmark(
            QUERY_SMOKE, RSS_SMOKE, tmp_path / "smoke.cstore", seed=0
        )
    sidecar = _write_metrics_sidecar(
        registry, "smoke", 0, RESULTS_DIR / "bench_store_smoke.metrics.jsonl"
    )
    print(f"(metrics sidecar: {sidecar})")
    for result in (ingest, day_query, resident):
        print(result.describe())
    assert ingest.n_rows == QUERY_SMOKE["n_apps"] * QUERY_SMOKE["n_days"]
    assert ingest.bulk_rows_per_sec > 0
    assert day_query.speedup > 1.0, day_query.describe()
    assert resident.checksum_matches, resident.describe()
    assert resident.peak_rss_bytes > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the small smoke sizes instead"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUTPUT, help="JSON trajectory file"
    )
    parser.add_argument(
        "--label", default=None, help="record label (default: smoke/paper)"
    )
    parser.add_argument(
        "--pack-dir",
        type=Path,
        default=None,
        help="directory for the packed dataset (default: a temp dir)",
    )
    args = parser.parse_args()

    query_sizes = QUERY_SMOKE if args.smoke else QUERY_REFERENCE
    rss_shapes = RSS_SMOKE if args.smoke else RSS_REFERENCE
    label = args.label or ("smoke" if args.smoke else "paper")

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench_store_") as scratch:
        pack_path = (args.pack_dir or Path(scratch)) / "bench.cstore"
        registry = MetricsRegistry()
        with use_registry(registry):
            ingest, day_query, resident = run_benchmark(
                query_sizes, rss_shapes, pack_path, seed=args.seed
            )

    for result in (ingest, day_query, resident):
        print(result.describe())
    if not args.smoke:
        assert day_query.speedup >= 10.0, day_query.describe()
        assert resident.rss_fraction < 0.25, resident.describe()
        assert resident.checksum_matches, resident.describe()

    record = write_results(label, ingest, day_query, resident, path=args.out)
    print(f"wrote {args.out} ({record['label']})")
    sidecar = _write_metrics_sidecar(
        registry,
        label,
        args.seed,
        RESULTS_DIR / f"bench_store_{label}.metrics.jsonl",
    )
    print(f"wrote {sidecar}")


if __name__ == "__main__":
    main()
