"""Figure 5: users focus on a few categories (Anzhi comments).

Paper panels: (a) 99% of users post at most 30 comments; (b) 53% of
users comment in a single category, 94% in at most five; (c) an average
user posts 66% of comments in one category, 95% in at most five; (d) the
most popular category holds just 12% of downloads, so (b)-(c) are not a
popularity artifact.
"""

from conftest import emit

from repro.analysis.comments import comment_behavior_report
from repro.reporting.tables import render_table

STORE = "anzhi"  # the paper's comment dataset comes from Anzhi


def render_comment_behavior(database) -> str:
    report = comment_behavior_report(database, STORE)
    panel_b = [
        [k, round(report.unique_categories_per_user(k) * 100, 1)]
        for k in (1, 2, 3, 5, 10)
    ]
    panel_c = [
        [k, round(report.top_k_comment_share[k] * 100, 1)]
        for k in sorted(report.top_k_comment_share)
    ]
    panel_d = [
        [category, round(share * 100, 2)]
        for category, share in report.downloads_share_by_category[:10]
    ]
    parts = [
        f"Figure 5 ({STORE}): {report.n_users} commenting users, "
        f"{report.n_comments} comments",
        render_table(
            ["k", "users with <= k categories (%)"],
            panel_b,
            title="(b) unique categories per user (CDF)",
        ),
        render_table(
            ["k", "avg comments in top-k categories (%)"],
            panel_c,
            title="(c) comment share in top-k categories",
        ),
        render_table(
            ["category", "downloads share (%)"],
            panel_d,
            title="(d) downloads per app category (top 10)",
        ),
    ]
    return "\n\n".join(parts)


def test_fig05_comment_behavior(benchmark, database, results_dir):
    text = benchmark.pedantic(
        render_comment_behavior, args=(database,), rounds=3, iterations=1
    )
    emit(results_dir, "fig05_comments", text)

    report = comment_behavior_report(database, STORE)
    # (a) most users comment little.
    assert report.comments_per_user(30) > 0.8
    # (b) a large share of users sticks to very few categories.
    assert report.unique_categories_per_user(5) > 0.7
    # (c) the average user's top category dominates their comments.
    assert report.top_k_comment_share[1] > 0.45
    assert report.top_k_comment_share[5] > 0.85
    # (d) no dominant category in download share.
    top_share = report.downloads_share_by_category[0][1]
    assert top_share < 0.35
