"""Figure 19: clustering hurts LRU cache performance.

Paper setup: an Anzhi-like store (60k apps, 30 categories, 600k users,
2M downloads, zr=1.7, zc=1.4, p=0.9), an LRU cache initialized with the
most popular apps, cache sizes 1-20% of the catalog.  ZIPF workloads hit
>99% everywhere; ZIPF-at-most-once starts at 94.5%; APP-CLUSTERING drops
to 67.1% at 1% capacity, reaching 96.3% at 20%.

Shape targets: ZIPF > ZIPF-at-most-once > APP-CLUSTERING at every cache
size, with a wide gap at small caches that narrows as capacity grows;
hit ratios grow monotonically with capacity.
"""

import time

import numpy as np
from conftest import emit

from repro.cache.policies import LruCache
from repro.cache.simulator import simulate_cache, simulate_cache_batches
from repro.core.models import ModelKind
from repro.reporting.tables import render_table
from repro.workload.generators import figure19_spec

SCALE = 0.02  # 1,200 apps / 12,000 users / 40,000 downloads
CACHE_FRACTIONS = (0.01, 0.02, 0.05, 0.10, 0.20)


def run_cache_experiment():
    results = {}
    for kind in ModelKind:
        spec = figure19_spec(kind=kind, scale=SCALE, seed=7)
        counts = spec.download_counts()
        popularity_order = list(np.argsort(counts)[::-1])
        per_size = {}
        for fraction in CACHE_FRACTIONS:
            capacity = max(1, int(fraction * spec.n_apps))
            cache = LruCache(capacity)
            result = simulate_cache(
                spec.events(), cache, warm_keys=popularity_order[:capacity]
            )
            per_size[fraction] = result.hit_ratio
        results[kind] = per_size
    return results


def render_cache_results(results) -> str:
    rows = []
    for fraction in CACHE_FRACTIONS:
        rows.append(
            [
                f"{fraction * 100:.0f}%",
                round(results[ModelKind.ZIPF][fraction] * 100, 1),
                round(results[ModelKind.ZIPF_AT_MOST_ONCE][fraction] * 100, 1),
                round(results[ModelKind.APP_CLUSTERING][fraction] * 100, 1),
            ]
        )
    return render_table(
        ["cache size", "ZIPF (%)", "ZIPF-AMO (%)", "APP-CLUSTERING (%)"],
        rows,
        title=(
            "Figure 19: LRU hit ratio vs cache size "
            "(Anzhi-like store, zr=1.7, zc=1.4, p=0.9)"
        ),
    )


def test_fig19_cache_hit_ratio(benchmark, results_dir):
    results = benchmark.pedantic(run_cache_experiment, rounds=1, iterations=1)
    emit(results_dir, "fig19_cache", render_cache_results(results))

    for fraction in CACHE_FRACTIONS:
        zipf = results[ModelKind.ZIPF][fraction]
        amo = results[ModelKind.ZIPF_AT_MOST_ONCE][fraction]
        clustering = results[ModelKind.APP_CLUSTERING][fraction]
        # The paper's ordering at every cache size.
        assert zipf > amo > clustering, fraction
    # Wide gap at the smallest cache, narrowing at the largest.
    smallest_gap = (
        results[ModelKind.ZIPF][0.01]
        - results[ModelKind.APP_CLUSTERING][0.01]
    )
    largest_gap = (
        results[ModelKind.ZIPF][0.20]
        - results[ModelKind.APP_CLUSTERING][0.20]
    )
    assert smallest_gap > largest_gap
    # Hit ratio grows with capacity for the clustering workload.
    clustering_curve = [
        results[ModelKind.APP_CLUSTERING][f] for f in CACHE_FRACTIONS
    ]
    assert clustering_curve == sorted(clustering_curve)


def _legacy_simulate_cache_batches(batches, cache):
    """The pre-fast-path batch replay: one ``.tolist()`` per batch."""
    access = cache.access
    n_accesses = 0
    for batch in batches:
        for app_index in batch.app_indices.tolist():
            access(app_index)
        n_accesses += len(batch)
    return n_accesses


def test_batched_replay_fast_path_delta(results_dir):
    """The concatenating fast path must match the legacy per-batch loop
    hit-for-hit; the emitted table records the speed delta."""
    spec = figure19_spec(kind=ModelKind.APP_CLUSTERING, scale=SCALE, seed=7)
    batches = list(spec.event_batches())
    capacity = max(1, int(0.05 * spec.n_apps))

    legacy_cache = LruCache(capacity)
    start = time.perf_counter()
    n_accesses = _legacy_simulate_cache_batches(iter(batches), legacy_cache)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = simulate_cache_batches(iter(batches), LruCache(capacity))
    fast_seconds = time.perf_counter() - start

    # Exact equivalence: same accesses, same hits, same misses.
    assert fast.n_accesses == n_accesses
    assert fast.hits == legacy_cache.hits
    assert fast.misses == legacy_cache.misses

    speedup = legacy_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    table = render_table(
        ["path", "seconds", "events/s"],
        [
            ["legacy per-batch tolist", round(legacy_seconds, 4),
             int(n_accesses / legacy_seconds) if legacy_seconds else 0],
            ["concatenated trace", round(fast_seconds, 4),
             int(n_accesses / fast_seconds) if fast_seconds else 0],
        ],
        title=(
            f"Batched cache replay fast path "
            f"({n_accesses} events, speedup {speedup:.2f}x)"
        ),
    )
    emit(results_dir, "fig19_cache_fastpath", table)
