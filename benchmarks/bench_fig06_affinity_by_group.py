"""Figure 6: successive selections share a category far above chance.

Paper: grouping Anzhi users by comment count, the average depth-1
affinity is ~0.55 against a 0.14 random-walk baseline (3.9x); affinity
and baseline both grow with depth (0.28 and 0.42 at depths 2 and 3).

Shape targets: affinity well above the random-walk baseline at every
depth, with a multi-x lift at depth 1.
"""

import numpy as np
from conftest import emit

from repro.analysis.affinity_study import affinity_study
from repro.reporting.tables import render_table

STORE = "anzhi"


def run_affinity_study(database):
    return affinity_study(database, STORE, depths=(1, 2, 3), min_group_size=10)


def render_affinity(study) -> str:
    summary_rows = [
        [
            depth,
            round(result.overall_mean, 3),
            round(result.random_walk, 3),
            round(result.lift_over_random, 1),
            len(result.group_points),
        ]
        for depth, result in sorted(study.by_depth.items())
    ]
    parts = [
        render_table(
            [
                "depth",
                "mean affinity",
                "random walk",
                "lift (x)",
                "user groups",
            ],
            summary_rows,
            title=f"Figure 6 ({STORE}): temporal affinity vs random walk",
        )
    ]
    depth1 = study.by_depth[1]
    group_rows = [
        [
            point.n_comments,
            round(point.mean, 3),
            round(point.interval.lower, 3),
            round(point.interval.upper, 3),
            point.interval.n,
        ]
        for point in depth1.group_points[:15]
    ]
    parts.append(
        render_table(
            ["comments", "mean affinity", "CI low", "CI high", "users"],
            group_rows,
            title="depth 1: per-group averages with 95% CIs (first 15 groups)",
        )
    )
    return "\n\n".join(parts)


def test_fig06_affinity_by_group(benchmark, database, results_dir):
    study = run_affinity_study(database)
    text = benchmark.pedantic(render_affinity, args=(study,), rounds=3, iterations=1)
    emit(results_dir, "fig06_affinity_by_group", text)

    for depth, result in study.by_depth.items():
        assert result.overall_mean > result.random_walk, depth
    # A strong (multi-x) lift at depth 1, as the paper's 3.9x.
    assert study.by_depth[1].lift_over_random > 2.0
    # The baseline increases with depth (Equation 4), and so does the
    # measured affinity when compared on a fixed population of long
    # strings (the paper's per-group view; mixing string lengths is not
    # monotone because depth d discards strings shorter than d+1).
    baselines = [study.by_depth[d].random_walk for d in (1, 2, 3)]
    assert baselines == sorted(baselines)
    from repro.analysis.comments import user_category_strings
    from repro.core.affinity import temporal_affinity

    long_strings = [
        string
        for string in user_category_strings(database, STORE).values()
        if len(string) >= 6
    ]
    assert long_strings
    means = [
        np.mean([temporal_affinity(s, depth=d) for s in long_strings])
        for d in (1, 2, 3)
    ]
    assert means[0] < means[2]
