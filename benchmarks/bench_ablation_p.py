"""Ablation: the clustering probability ``p``.

DESIGN.md calls out ``p`` as the model's central knob.  The paper finds
its best fits at p = 0.9-0.95 and argues the tail truncation is
clustering-driven; this ablation sweeps p from 0 (pure
ZIPF-at-most-once) to 1 (pure clustering) and measures the tail of the
resulting rank curve and the fit distance against a p=0.9 reference
workload.

Expected shapes: the trunk-relative tail droop deepens as p grows (the
clustering effect bends the tail under the Zipf trunk, Figure 3), even
though clustering *touches* more distinct apps (category exploration);
and the fit distance to the reference is minimized near the reference's
own p.
"""

import numpy as np
from conftest import emit

from repro.core.fitting import mean_relative_error
from repro.core.models import AppClusteringModel, AppClusteringParams
from repro.core.powerlaw import analyze_rank_distribution
from repro.reporting.tables import render_table

P_GRID = (0.0, 0.5, 0.7, 0.9, 0.95, 1.0)
BASE = dict(
    n_apps=2000,
    n_users=2500,
    total_downloads=30_000,
    zr=1.6,
    zc=1.4,
    n_clusters=25,
)


def run_p_sweep():
    reference = np.sort(
        AppClusteringModel(
            AppClusteringParams(p=0.9, **BASE)
        ).simulate(seed=1)
    )[::-1].astype(float)

    rows = []
    for p in P_GRID:
        counts = AppClusteringModel(
            AppClusteringParams(p=p, **BASE)
        ).simulate(seed=2)
        ranked = np.sort(counts)[::-1].astype(float)
        droop = analyze_rank_distribution(ranked[ranked > 0]).tail_droop
        touched = float(np.mean(ranked > 0))
        distance = mean_relative_error(reference, ranked)
        rows.append((p, droop, touched, distance))
    return rows


def render_p_sweep(rows) -> str:
    return render_table(
        [
            "p",
            "tail droop (obs/trunk at last rank)",
            "apps with >=1 download",
            "distance to p=0.9 reference",
        ],
        [
            [p, round(droop, 4), round(touched, 3), round(distance, 3)]
            for p, droop, touched, distance in rows
        ],
        title="Ablation: clustering probability p",
        float_format=".3f",
    )


def test_ablation_clustering_probability(benchmark, results_dir):
    rows = benchmark.pedantic(run_p_sweep, rounds=1, iterations=1)
    emit(results_dir, "ablation_p", render_p_sweep(rows))

    by_p = {p: (droop, touched, distance) for p, droop, touched, distance in rows}
    # Tail truncation deepens with clustering: at high p the last ranks
    # fall further below the trunk extrapolation than at p=0.
    assert by_p[1.0][0] < by_p[0.0][0]
    # Clustering explores categories: more distinct apps get downloads.
    assert by_p[1.0][1] > by_p[0.0][1]
    # The reference is matched best by a nearby p, not by the extremes.
    distances = {p: by_p[p][2] for p in P_GRID}
    best_p = min(distances, key=distances.get)
    assert best_p in (0.7, 0.9, 0.95)
