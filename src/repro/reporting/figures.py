"""Textual figure rendering: series printers and sparklines.

Benchmarks print each figure as rows of (x, y) values so the shape --
who wins, where the crossovers fall -- is readable and diffable without a
plotting stack; a unicode sparkline accompanies each series for quick
visual inspection.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values, width: int = 40, log_scale: bool = False) -> str:
    """A one-line character gradient of a numeric series.

    ``log_scale`` maps values through log10 first (handy for rank plots
    spanning orders of magnitude); non-positive values render as blanks.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if width < 1:
        raise ValueError("width must be >= 1")
    # Resample to the requested width by picking evenly spaced points.
    indices = np.linspace(0, values.size - 1, min(width, values.size)).astype(int)
    sampled = values[indices]
    if log_scale:
        with np.errstate(divide="ignore"):
            sampled = np.where(sampled > 0, np.log10(sampled), np.nan)
    finite = sampled[np.isfinite(sampled)]
    if finite.size == 0:
        return " " * indices.size
    low, high = float(finite.min()), float(finite.max())
    span = high - low
    characters = []
    for value in sampled:
        if not np.isfinite(value):
            characters.append(" ")
            continue
        if span == 0:
            level = len(_SPARK_LEVELS) - 1
        else:
            level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        characters.append(_SPARK_LEVELS[level])
    return "".join(characters)


def render_series(
    x,
    y,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    max_rows: int = 20,
    float_format: str = ",.2f",
) -> str:
    """Print an (x, y) series as aligned rows plus a sparkline."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.size == 0:
        raise ValueError("x and y must be non-empty 1-D arrays of equal shape")
    if max_rows < 2:
        raise ValueError("max_rows must be >= 2")

    if x.size > max_rows:
        indices = np.unique(
            np.linspace(0, x.size - 1, max_rows).astype(int)
        )
    else:
        indices = np.arange(x.size)

    lines: List[str] = []
    if title:
        lines.append(title)
    x_cells = [format(float(value), float_format) for value in x[indices]]
    y_cells = [format(float(value), float_format) for value in y[indices]]
    x_width = max(len(x_label), *(len(cell) for cell in x_cells))
    y_width = max(len(y_label), *(len(cell) for cell in y_cells))
    lines.append(f"{x_label.rjust(x_width)}  {y_label.rjust(y_width)}")
    lines.extend(
        f"{x_cell.rjust(x_width)}  {y_cell.rjust(y_width)}"
        for x_cell, y_cell in zip(x_cells, y_cells)
    )
    lines.append(f"shape: [{sparkline(y)}]")
    return "\n".join(lines)


def render_cdf(
    samples,
    label: str,
    probes: Sequence[float] = (0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
    float_format: str = ",.2f",
) -> str:
    """Print the quantiles of a sample the way a CDF figure is read."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    values = np.quantile(samples, probes)
    rows = [
        f"  P{int(q * 100):02d} = {format(float(v), float_format)}"
        for q, v in zip(probes, values)
    ]
    header = (
        f"{label}: n={samples.size}, "
        f"mean={format(float(samples.mean()), float_format)}"
    )
    return "\n".join([header] + rows)
