"""Column-aligned ASCII table rendering.

Minimal but careful: right-aligns numeric columns, left-aligns text,
formats floats compactly, and never wraps -- benchmark output is meant to
be diffable run to run.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _format_cell(value: Any, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    if isinstance(value, int):
        return format(value, ",")
    return str(value)


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_format: str = ",.2f",
    title: Optional[str] = None,
) -> str:
    """Render rows under headers as an aligned ASCII table.

    Numeric columns (numeric in every non-empty cell) are right-aligned.
    """
    if not headers:
        raise ValueError("headers must not be empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )

    formatted = [
        [_format_cell(cell, float_format) for cell in row] for row in rows
    ]
    numeric_column = [
        all(_is_numeric(row[col]) or row[col] is None for row in rows) and bool(rows)
        for col in range(len(headers))
    ]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in formatted))
        if formatted
        else len(headers[col])
        for col in range(len(headers))
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            if numeric_column[col]:
                parts.append(cell.rjust(widths[col]))
            else:
                parts.append(cell.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)
