"""Textual reporting: ASCII tables and figure series.

The benchmarks regenerate every table and figure of the paper as text;
this package provides the renderers so all benches print consistently.

- :mod:`repro.reporting.tables` -- column-aligned ASCII tables.
- :mod:`repro.reporting.figures` -- (x, y) series printers for CDF and
  log-log rank plots, plus simple unicode sparkline bars for quick visual
  inspection in a terminal.
"""

from repro.reporting.figures import render_cdf, render_series, sparkline
from repro.reporting.tables import render_table

__all__ = [
    "render_cdf",
    "render_series",
    "render_table",
    "sparkline",
]
