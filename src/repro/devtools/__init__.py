"""Developer tooling for the reproduction: static analysis and CI gates.

Nothing in this package is imported by the simulation or analysis code;
it exists to keep *them* honest.  See :mod:`repro.devtools.lint` for the
determinism & vectorization linter (``repro lint`` / ``make lint``).
"""

from __future__ import annotations
