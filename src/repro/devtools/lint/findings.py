"""Finding model shared by the lint engine, rules, and reporters.

A finding is one rule violation at one source location.  Findings are
plain frozen dataclasses so reporters can sort, group, and serialize
them without knowing anything about the rules that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str  # rule code, e.g. "RPL003"
    message: str  # human-readable description of the violation
    path: str  # file the finding is in (as given to the engine)
    line: int  # 1-based source line
    col: int  # 0-based column, matching ``ast`` node offsets

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering: by file, then position, then code."""
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready representation."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        """The one-line human format: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
