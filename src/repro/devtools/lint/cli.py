"""``repro lint`` runner: discovery, filtering, and reporting.

Exit codes: 0 clean, 1 findings, 2 usage errors (unknown path or rule
code).  ``--format json`` emits a machine-readable object so CI and
editors can consume findings without scraping text; ``--format sarif``
(``--sarif``) feeds GitHub code scanning.  ``--changed`` restricts the
run to files git considers modified (worktree, index, or untracked), so
a pre-commit hook finishes in well under a second on large trees.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.lint.engine import iter_python_files, lint_source
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.rules import RULES
from repro.devtools.lint.sarif import render_sarif

#: Rule metadata in the shape the SARIF serializer consumes.
_PARSE_RULE = {
    "code": "RPL000",
    "name": "parse-error",
    "summary": "file could not be parsed",
}
RULE_DESCRIPTORS = (_PARSE_RULE,) + tuple(
    {"code": rule.code, "name": rule.name, "summary": rule.summary}
    for rule in RULES
)


def known_codes() -> List[str]:
    """Rule codes shipped in the pack (plus the engine's parse error)."""
    return ["RPL000"] + [rule.code for rule in RULES]


def _parse_code_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [part.strip() for part in raw.split(",") if part.strip()]
    unknown = sorted(set(codes) - set(known_codes()))
    if unknown:
        raise ValueError(f"unknown rule codes: {', '.join(unknown)}")
    return codes


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Add the lint arguments to a parser (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json", "sarif"],
        help="output format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        action="store_const",
        const="sarif",
        dest="output_format",
        help="shorthand for --format sarif",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only files git reports as changed (worktree, staged, "
            "or untracked) under the given paths"
        ),
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated codes to enable"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated codes to disable"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its summary and exit",
    )
    parser.set_defaults(handler=run_lint)


def add_lint_parser(subparsers) -> None:
    """Register the ``lint`` subcommand on the top-level ``repro`` CLI."""
    parser = subparsers.add_parser(
        "lint",
        help="run the determinism & vectorization linter (RPL rules)",
        description=(
            "AST-based static analysis enforcing the repository's "
            "seed-threading, determinism, and vectorization conventions. "
            "Suppress one line with `# repro: noqa=RPL0xx -- reason`."
        ),
    )
    configure_parser(parser)


def changed_python_files(paths: Sequence[str]) -> Optional[List[Path]]:
    """``.py`` files git reports as touched, restricted to ``paths``.

    Unions unstaged, staged, and untracked files; returns ``None`` when
    git is unavailable or the working directory is not a checkout.
    Deleted files are skipped (there is nothing left to lint).
    """
    commands = [
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "diff", "--name-only", "--cached"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    names: set = set()
    for command in commands:
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        names.update(
            line.strip() for line in result.stdout.splitlines() if line.strip()
        )
    roots = [Path(raw).resolve() for raw in paths]
    selected: List[Path] = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = Path(name)
        if not path.exists():
            continue
        resolved = path.resolve()
        if any(resolved == root or root in resolved.parents for root in roots):
            selected.append(path)
    return selected


def _list_rules(output_format: str) -> int:
    if output_format == "json":
        payload = [
            {"code": rule.code, "name": rule.name, "summary": rule.summary}
            for rule in RULES
        ]
        print(json.dumps(payload, indent=2))
    else:
        for rule in RULES:
            print(f"{rule.code} [{rule.name}] {rule.summary}")
    return 0


def run_lint(args) -> int:
    """Handler behind ``repro lint``."""
    if args.list_rules:
        return _list_rules(args.output_format)
    try:
        selected = _parse_code_list(args.select)
        ignored = _parse_code_list(args.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    missing = [raw for raw in args.paths if not Path(raw).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if getattr(args, "changed", False):
        changed = changed_python_files(args.paths)
        if changed is None:
            print(
                "error: --changed requires a git checkout", file=sys.stderr
            )
            return 2
        files = iter(changed)
    else:
        files = iter_python_files(args.paths)

    findings: List[Finding] = []
    files_checked = 0
    for file_path in files:
        files_checked += 1
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file_path)))
    if selected is not None:
        findings = [f for f in findings if f.code in selected]
    if ignored is not None:
        findings = [f for f in findings if f.code not in ignored]
    findings.sort(key=Finding.sort_key)

    if args.output_format == "sarif":
        print(render_sarif(findings, RULE_DESCRIPTORS, tool_name="repro-lint"))
    elif args.output_format == "json":
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "findings": [finding.to_dict() for finding in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"repro lint: {len(findings)} {noun} in {files_checked} files")
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & vectorization linter (RPL rules)",
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    return args.handler(args)
