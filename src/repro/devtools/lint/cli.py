"""``repro lint`` runner: discovery, filtering, and reporting.

Exit codes: 0 clean, 1 findings, 2 usage errors (unknown path or rule
code).  ``--format json`` emits a machine-readable object so CI and
editors can consume findings without scraping text.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.lint.engine import iter_python_files, lint_source
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.rules import RULES


def known_codes() -> List[str]:
    """Rule codes shipped in the pack (plus the engine's parse error)."""
    return ["RPL000"] + [rule.code for rule in RULES]


def _parse_code_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [part.strip() for part in raw.split(",") if part.strip()]
    unknown = sorted(set(codes) - set(known_codes()))
    if unknown:
        raise ValueError(f"unknown rule codes: {', '.join(unknown)}")
    return codes


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Add the lint arguments to a parser (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json"],
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated codes to enable"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated codes to disable"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its summary and exit",
    )
    parser.set_defaults(handler=run_lint)


def add_lint_parser(subparsers) -> None:
    """Register the ``lint`` subcommand on the top-level ``repro`` CLI."""
    parser = subparsers.add_parser(
        "lint",
        help="run the determinism & vectorization linter (RPL rules)",
        description=(
            "AST-based static analysis enforcing the repository's "
            "seed-threading, determinism, and vectorization conventions. "
            "Suppress one line with `# repro: noqa=RPL0xx -- reason`."
        ),
    )
    configure_parser(parser)


def _list_rules(output_format: str) -> int:
    if output_format == "json":
        payload = [
            {"code": rule.code, "name": rule.name, "summary": rule.summary}
            for rule in RULES
        ]
        print(json.dumps(payload, indent=2))
    else:
        for rule in RULES:
            print(f"{rule.code} [{rule.name}] {rule.summary}")
    return 0


def run_lint(args) -> int:
    """Handler behind ``repro lint``."""
    if args.list_rules:
        return _list_rules(args.output_format)
    try:
        selected = _parse_code_list(args.select)
        ignored = _parse_code_list(args.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    missing = [raw for raw in args.paths if not Path(raw).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    findings: List[Finding] = []
    files_checked = 0
    for file_path in iter_python_files(args.paths):
        files_checked += 1
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file_path)))
    if selected is not None:
        findings = [f for f in findings if f.code in selected]
    if ignored is not None:
        findings = [f for f in findings if f.code not in ignored]
    findings.sort(key=Finding.sort_key)

    if args.output_format == "json":
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "findings": [finding.to_dict() for finding in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"repro lint: {len(findings)} {noun} in {files_checked} files")
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & vectorization linter (RPL rules)",
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    return args.handler(args)
