"""Visitor engine of the determinism & vectorization linter.

The engine parses each file once, precomputes the module facts every
rule needs (import aliases, parent links, per-scope name bindings, and
``# repro: noqa`` suppressions), then runs each registered rule as an
:mod:`ast` visitor over the tree.  Rules stay tiny: they pattern-match
nodes and call :meth:`Rule.report`; everything positional or contextual
lives here.

Suppression syntax, checked per finding line::

    risky_call()  # repro: noqa=RPL003 -- justification
    risky_call()  # repro: noqa -- suppress every rule on this line
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

from repro.devtools.lint.findings import Finding

#: Matches ``# repro: noqa`` and ``# repro: noqa=RPL001,RPL002`` comments.
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\s*=\s*(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*))?"
)

#: ``numpy`` functions whose return value is treated as an ndarray by the
#: vectorization rules.  Deliberately a whitelist: unknown calls stay
#: unclassified rather than producing false positives.
ARRAY_RETURNING_NUMPY_FUNCTIONS = frozenset(
    {
        "arange",
        "argsort",
        "array",
        "asarray",
        "bincount",
        "concatenate",
        "cumsum",
        "empty",
        "flatnonzero",
        "full",
        "hstack",
        "linspace",
        "nonzero",
        "ones",
        "repeat",
        "sort",
        "unique",
        "vstack",
        "where",
        "zeros",
    }
)

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSION_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_SCOPE_NODES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def parse_noqa_directives(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions: line -> codes (``None`` means all codes)."""
    directives: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            directives[lineno] = None
        else:
            directives[lineno] = {part.strip() for part in codes.split(",")}
    return directives


class ModuleInfo:
    """Everything about one parsed module that rules share.

    Attributes
    ----------
    path:
        The file's path as given to the engine (kept verbatim so findings
        are reported against what the user typed).
    tree:
        The parsed module AST, with parent links available through
        :meth:`parent` / :meth:`ancestors`.
    numpy_aliases / numpy_random_aliases:
        Local names bound to the ``numpy`` and ``numpy.random`` modules.
    imported_names:
        Local name -> fully dotted origin for ``from x import y`` names.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.noqa = parse_noqa_directives(source)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.imported_names: Dict[str, str] = {}
        self._collect_imports()
        self._bindings: Dict[int, Dict[str, str]] = {}
        for scope in ast.walk(tree):
            if isinstance(scope, _SCOPE_NODES):
                self._bindings[id(scope)] = self._collect_bindings(scope)

    # -- import table ---------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        self.numpy_aliases.add(bound)
                    elif alias.name == "numpy.random" and alias.asname:
                        self.numpy_random_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    origin = f"{node.module}.{alias.name}"
                    self.imported_names[bound] = origin
                    if origin == "numpy.random":
                        self.numpy_random_aliases.add(bound)

    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of an expression, if resolvable.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        under ``import numpy as np``; a bare ``default_rng`` resolves the
        same way under ``from numpy.random import default_rng``.  Returns
        ``None`` for anything that is not a (possibly aliased) dotted name.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = current.id
        parts.reverse()
        if base in self.numpy_aliases:
            return ".".join(["numpy"] + parts)
        if base in self.numpy_random_aliases:
            return ".".join(["numpy", "random"] + parts)
        if base in self.imported_names:
            return ".".join([self.imported_names[base]] + parts)
        return ".".join([base] + parts)

    # -- tree topology --------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The node's syntactic parent (``None`` for the module)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        """The innermost function the node sits in, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """The innermost binding scope (function, lambda, or module)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _SCOPE_NODES):
                return ancestor
        return self.tree

    def qualname(self, node: ast.AST) -> str:
        """Dotted name of the enclosing definitions, e.g. ``App.is_free``."""
        names: List[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(ancestor.name)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.insert(0, node.name)
        return ".".join(reversed(names))

    def in_loop(self, node: ast.AST) -> bool:
        """Whether the node executes repeatedly inside its own function.

        ``for``/``while`` bodies and comprehension element expressions
        count; the walk stops at the first function boundary, so a loop
        in an *outer* function does not taint a nested definition.
        """
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if isinstance(ancestor, ast.Lambda):
                return False
            if isinstance(ancestor, _LOOP_NODES):
                return True
            if isinstance(ancestor, _COMPREHENSION_NODES):
                # Everything but the first generator's iterable re-runs
                # once per element.
                first_iter = ancestor.generators[0].iter
                if not any(child is node for child in ast.walk(first_iter)):
                    return True
        return False

    # -- lightweight local type facts -----------------------------------

    def _classify_value(self, value: ast.AST) -> Optional[str]:
        """Classify an expression as ``"set"`` / ``"ndarray"`` if obvious."""
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            dotted = self.resolve_dotted(value.func)
            if dotted in ("set", "frozenset", "builtins.set", "builtins.frozenset"):
                return "set"
            if dotted is not None and self.is_array_returning(dotted):
                return "ndarray"
        return None

    def _classify_annotation(self, annotation: Optional[ast.AST]) -> Optional[str]:
        if annotation is None:
            return None
        dotted = self.resolve_dotted(annotation)
        if dotted in ("numpy.ndarray",):
            return "ndarray"
        if dotted in ("set", "frozenset", "typing.Set", "typing.FrozenSet"):
            return "set"
        if isinstance(annotation, ast.Subscript):
            return self._classify_annotation(annotation.value)
        return None

    def is_array_returning(self, dotted: str) -> bool:
        """Whether a resolved call target is a known array constructor."""
        if not dotted.startswith("numpy."):
            return False
        return dotted.rsplit(".", 1)[-1] in ARRAY_RETURNING_NUMPY_FUNCTIONS

    def _collect_bindings(self, scope: ast.AST) -> Dict[str, str]:
        """Name -> kind for one scope, from assignments and annotations.

        A name keeps a classification only when every assignment to it in
        the scope agrees; conflicting writes drop it to unknown.
        """
        bindings: Dict[str, str] = {}
        conflicted: Set[str] = set()

        def record(name: str, kind: Optional[str]) -> None:
            if kind is None:
                conflicted.add(name)
            elif bindings.get(name, kind) != kind:
                conflicted.add(name)
            else:
                bindings[name] = kind

        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            all_args = list(scope.args.posonlyargs) + list(scope.args.args)
            all_args += list(scope.args.kwonlyargs)
            for arg in all_args:
                kind = self._classify_annotation(arg.annotation)
                if kind is not None:
                    record(arg.arg, kind)
        for node in ast.walk(scope):
            if node is not scope and isinstance(node, _SCOPE_NODES):
                # Nested scopes keep their own tables.
                continue
            if self.enclosing_scope(node) is not scope:
                continue
            if isinstance(node, ast.Assign):
                kind = self._classify_value(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        record(target.id, kind)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                kind = self._classify_annotation(node.annotation)
                if kind is None and node.value is not None:
                    kind = self._classify_value(node.value)
                record(node.target.id, kind)
        for name in sorted(conflicted):
            bindings.pop(name, None)
        return bindings

    def name_kind(self, node: ast.AST) -> Optional[str]:
        """Classification of a ``Name`` load, looked up in its scope chain."""
        if not isinstance(node, ast.Name):
            return None
        scope: Optional[ast.AST] = self.enclosing_scope(node)
        while scope is not None:
            kind = self._bindings.get(id(scope), {}).get(node.id)
            if kind is not None:
                return kind
            scope = None if isinstance(scope, ast.Module) else self.parent(scope)
            while scope is not None and not isinstance(scope, _SCOPE_NODES):
                scope = self.parent(scope)
        return None

    def expression_kind(self, node: ast.AST) -> Optional[str]:
        """Classification of an arbitrary expression (value or name)."""
        direct = self._classify_value(node)
        if direct is not None:
            return direct
        return self.name_kind(node)


class Rule(ast.NodeVisitor):
    """Base class of all lint rules.

    Subclasses set ``code``, ``name``, and ``summary`` and implement
    ``visit_*`` methods that call :meth:`report`.  One instance is created
    per (rule, module) pair, so per-module state can live on ``self``.
    """

    code: str = "RPL000"
    name: str = "abstract-rule"
    summary: str = ""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record one violation at a node's location."""
        self.findings.append(
            Finding(
                code=self.code,
                message=message,
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
            )
        )

    def run(self) -> List[Finding]:
        """Visit the module and return this rule's findings."""
        self.visit(self.module.tree)
        return self.findings


def _apply_noqa(
    findings: Iterable[Finding], noqa: Dict[int, Optional[Set[str]]]
) -> List[Finding]:
    kept = []
    for finding in findings:
        codes = noqa.get(finding.line, "missing")
        if codes == "missing":
            kept.append(finding)
        elif codes is not None and finding.code not in codes:
            kept.append(finding)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one source string; returns sorted, noqa-filtered findings."""
    if rules is None:
        from repro.devtools.lint.rules import RULES

        rules = RULES
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                code="RPL000",
                message=f"syntax error: {error.msg}",
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
            )
        ]
    module = ModuleInfo(path=path, source=source, tree=tree)
    findings: List[Finding] = []
    for rule_class in rules:
        findings.extend(rule_class(module).run())
    return sorted(_apply_noqa(findings, module.noqa), key=Finding.sort_key)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Type[Rule]]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file_path), rules=rules))
    return sorted(findings, key=Finding.sort_key)
