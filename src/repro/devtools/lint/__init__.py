"""Determinism & vectorization linter (``repro lint`` / ``make lint``).

A small compiler-grade pass over the repository's own conventions:

- every stochastic path is replayable from a single seed (RNG
  discipline, ``RPL001-004``);
- nothing nondeterministic -- wall clocks, randomized hashes, set
  iteration order -- can reach seeds or samplers (``RPL010-011``);
- the modules the batched engine declares hot stay vectorized
  (``RPL020-021``);
- API hygiene: mutable defaults, float equality, ``__all__`` drift
  (``RPL030-032``).

Public API: :func:`lint_source` / :func:`lint_paths` for programmatic
use, :data:`RULES` for the shipped pack, :class:`Finding` for results,
and :func:`main` for the command line.  Findings on a line are
suppressed with ``# repro: noqa=RPL0xx -- justification``.
"""

from __future__ import annotations

from repro.devtools.lint.cli import add_lint_parser, main, run_lint
from repro.devtools.lint.engine import (
    ModuleInfo,
    Rule,
    lint_paths,
    lint_source,
)
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.rules import RULES

__all__ = [
    "Finding",
    "ModuleInfo",
    "RULES",
    "Rule",
    "add_lint_parser",
    "lint_paths",
    "lint_source",
    "main",
    "run_lint",
]
