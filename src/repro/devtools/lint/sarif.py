"""SARIF 2.1.0 serialization shared by ``repro lint`` and ``repro flow``.

SARIF is the interchange format GitHub code scanning ingests, so one
``upload-sarif`` step in CI turns both analyzers' findings into inline
PR annotations.  The serializer is deliberately minimal: one run, one
tool driver, rule metadata from the caller, and one result per finding
with a physical location (SARIF columns are 1-based; ``Finding.col``
follows ``ast`` and is 0-based).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.devtools.lint.findings import Finding

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def to_sarif(
    findings: Iterable[Finding],
    rules: Sequence[Mapping[str, str]],
    tool_name: str,
    information_uri: str = "https://github.com/repro/repro",
) -> Dict:
    """Build a SARIF log dict from findings plus rule metadata.

    ``rules`` entries carry ``code``, ``name``, and ``summary`` keys (the
    shape both rule packs already expose).
    """
    descriptors: List[Dict] = [
        {
            "id": rule["code"],
            "name": rule["name"],
            "shortDescription": {"text": rule["summary"]},
        }
        for rule in rules
    ]
    index_of = {rule["code"]: index for index, rule in enumerate(rules)}
    results: List[Dict] = []
    for finding in sorted(findings, key=Finding.sort_key):
        result: Dict = {
            "ruleId": finding.code,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.code in index_of:
            result["ruleIndex"] = index_of[finding.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": information_uri,
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Iterable[Finding],
    rules: Sequence[Mapping[str, str]],
    tool_name: str,
) -> str:
    """The SARIF log as a JSON string, ready to print or write."""
    return json.dumps(to_sarif(findings, rules, tool_name), indent=2)
