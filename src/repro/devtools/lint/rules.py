"""The ``RPL`` rule pack: determinism, vectorization, and API hygiene.

Codes are grouped by decade:

- ``RPL000``     -- file could not be parsed (emitted by the engine).
- ``RPL001-009`` -- RNG discipline: all randomness flows through
  :mod:`repro.stats.rng` from explicit seeds.
- ``RPL010-019`` -- determinism hazards: wall clocks, randomized hashes,
  and unordered-set iteration must not shape stochastic output.
- ``RPL020-029`` -- vectorization guards for the modules the batched
  engine declares hot (:data:`BATCHED_MODULE_SUFFIXES`), the
  columnar store's array paths (:data:`STORE_MODULE_PATH_PARTS`), and
  the segment-dispatch modules (:data:`SEGMENT_MODULE_SUFFIXES`).
- ``RPL030-039`` -- API hygiene: mutable defaults, float equality,
  ``__all__`` drift.
- ``RPL040-049`` -- virtual-time discipline: the always-on service
  (:data:`SERVICE_MODULE_PATH_PARTS`) must take time from its event
  loop, never from the wall clock.

Suppress a finding with ``# repro: noqa=RPL0xx -- justification`` on the
offending line.  Two structural allowlists live here, next to the rules
they parameterize: :data:`RNG_HELPER_MODULE_SUFFIXES` (the coercion
helpers are allowed to touch numpy's seeding primitives -- they are the
one place that may) and :data:`FLOAT_EQ_ALLOWLIST` (named predicates
whose single internal comparison *defines* the semantic, e.g. free-app
detection on exact stored prices).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple, Type

from repro.devtools.lint.engine import Rule

#: Modules whose hot paths are declared vectorized (PR 1's batched
#: engine); the RPL02x guards only fire inside these.
BATCHED_MODULE_SUFFIXES = (
    "repro/core/engine.py",
    "repro/core/models.py",
    "repro/stats/sampling.py",
)

#: The designated seed-coercion implementation; exempt from the RNG
#: discipline rules because it is the layer they force everyone through.
RNG_HELPER_MODULE_SUFFIXES = ("repro/stats/rng.py",)

#: Path fragments identifying the columnar store, whose row loops are
#: expected to stay batched (the RPL022 guard fires inside these).
STORE_MODULE_PATH_PARTS = ("repro/store/",)

#: Modules that resolve persona segments over user populations; their
#: contract is one kernel invocation per segment block, so the RPL023
#: guard fires inside these.
SEGMENT_MODULE_SUFFIXES = (
    "repro/marketplace/segments.py",
    "repro/marketplace/behavior.py",
    "repro/workload/sharding.py",
)

#: Path fragments identifying the always-on service, which runs on the
#: virtual clock (the RPL040 guard fires inside these).
SERVICE_MODULE_PATH_PARTS = ("repro/service/",)

#: (module suffix, function qualname) pairs whose float equality is the
#: definition of a domain predicate rather than a numerical accident.
FLOAT_EQ_ALLOWLIST = (
    ("repro/marketplace/entities.py", "is_free_price"),
)

#: ``numpy.random`` attributes that are part of the Generator/seeding
#: machinery rather than the legacy global-state API.
_MODERN_NUMPY_RANDOM = frozenset(
    {
        "BitGenerator",
        "Generator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "SeedSequence",
        "default_rng",
    }
)

_SEED_COERCERS = frozenset(
    {"make_rng", "spawn_rngs", "derive_seed", "make_seed_sequence"}
)

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)


def _normalized(path: str) -> str:
    return path.replace("\\", "/")


def _path_matches(path: str, suffixes: Sequence[str]) -> bool:
    normalized = _normalized(path)
    return any(normalized.endswith(suffix) for suffix in suffixes)


def _path_within(path: str, parts: Sequence[str]) -> bool:
    normalized = _normalized(path)
    return any(part in normalized for part in parts)


def _has_seed_parameter(node: ast.FunctionDef) -> bool:
    args = list(node.args.posonlyargs) + list(node.args.args)
    args += list(node.args.kwonlyargs)
    return any("seed" in arg.arg.lower() for arg in args)


class LegacyNumpyRandomRule(Rule):
    """RPL001: calls into numpy's legacy global-state random API."""

    code = "RPL001"
    name = "legacy-numpy-random"
    summary = (
        "no np.random.* global-state calls (np.random.seed, np.random.rand, "
        "np.random.choice, ...); draw from an explicit Generator via "
        "repro.stats.rng.make_rng"
    )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.module.resolve_dotted(node.func)
        if dotted is not None and dotted.startswith("numpy.random."):
            attribute = dotted.split(".")[-1]
            if attribute not in _MODERN_NUMPY_RANDOM:
                if attribute == "seed":
                    self.report(
                        node,
                        "np.random.seed mutates hidden global state; pass "
                        "an explicit seed through repro.stats.rng.make_rng",
                    )
                else:
                    self.report(
                        node,
                        f"legacy global-state call np.random.{attribute}; "
                        "draw from an explicit Generator "
                        "(repro.stats.rng.make_rng)",
                    )
        self.generic_visit(node)


class StdlibRandomRule(Rule):
    """RPL002: the stdlib ``random`` module is off-limits."""

    code = "RPL002"
    name = "stdlib-random"
    summary = (
        "no stdlib `random` usage; its global Mersenne Twister state is "
        "invisible to the seed-threading contract"
    )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib random imported; use numpy Generators from "
                    "repro.stats.rng instead",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module is not None:
            if node.module == "random" or node.module.startswith("random."):
                self.report(
                    node,
                    "stdlib random imported; use numpy Generators from "
                    "repro.stats.rng instead",
                )


class UncoercedSeedRule(Rule):
    """RPL003: seed-taking functions must use the central coercers."""

    code = "RPL003"
    name = "uncoerced-seed"
    summary = (
        "functions taking a seed parameter must coerce it via "
        "repro.stats.rng (make_rng / spawn_rngs / make_seed_sequence), "
        "not np.random.default_rng or np.random.SeedSequence directly"
    )

    _TARGETS = frozenset(
        {"numpy.random.default_rng", "numpy.random.SeedSequence"}
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if _path_matches(self.module.path, RNG_HELPER_MODULE_SUFFIXES):
            return
        if _has_seed_parameter(node):
            for call in ast.walk(node):
                if isinstance(call, ast.Call):
                    dotted = self.module.resolve_dotted(call.func)
                    if dotted in self._TARGETS:
                        helper = (
                            "make_rng"
                            if dotted.endswith("default_rng")
                            else "make_seed_sequence"
                        )
                        self.report(
                            call,
                            f"{dotted.replace('numpy', 'np')} called inside "
                            f"seed-taking function {node.name!r}; coerce "
                            f"SeedLike values via repro.stats.rng.{helper}",
                        )
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


class GeneratorInLoopRule(Rule):
    """RPL004: no Generator construction inside loops."""

    code = "RPL004"
    name = "generator-in-loop"
    summary = (
        "no np.random.Generator construction (default_rng / make_rng) "
        "inside a loop; build once outside, or spawn_rngs for independent "
        "streams"
    )

    _TARGETS = frozenset(
        {
            "numpy.random.default_rng",
            "numpy.random.Generator",
            "repro.stats.rng.make_rng",
        }
    )

    def visit_Call(self, node: ast.Call) -> None:
        if not _path_matches(self.module.path, RNG_HELPER_MODULE_SUFFIXES):
            dotted = self.module.resolve_dotted(node.func)
            if dotted in self._TARGETS and self.module.in_loop(node):
                self.report(
                    node,
                    f"{dotted.rsplit('.', 1)[-1]} constructed inside a loop; "
                    "hoist the Generator out (or use "
                    "repro.stats.rng.spawn_rngs for per-iteration streams)",
                )
        self.generic_visit(node)


class GeneratorAcrossProcessRule(Rule):
    """RPL005: no Generator objects shipped across process boundaries.

    A ``np.random.Generator`` submitted to a process pool is pickled,
    so parent and child each advance a *copy* of the same stream: the
    worker's draws silently duplicate draws the parent (or a sibling
    worker) will also make.  Ship seeds (or ``SeedSequence`` children)
    and construct the Generator on the worker side -- the pattern both
    replication and the sharded campaign runner use.
    """

    code = "RPL005"
    name = "generator-across-process"
    summary = (
        "np.random.Generator passed into a process-pool dispatch "
        "(submit/map/apply_async); pass a seed and build the Generator "
        "in the worker instead"
    )

    _DISPATCH_METHODS = frozenset(
        {
            "submit",
            "map",
            "map_async",
            "starmap",
            "starmap_async",
            "apply",
            "apply_async",
            "imap",
            "imap_unordered",
        }
    )

    _RNG_FACTORIES = frozenset(
        {
            "numpy.random.default_rng",
            "numpy.random.Generator",
            "repro.stats.rng.make_rng",
            "repro.stats.rng.spawn_rngs",
        }
    )

    def __init__(self, module) -> None:
        super().__init__(module)
        self._rng_names: set = set()

    def _is_rng_value(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Call):
            return self.module.resolve_dotted(value.func) in self._RNG_FACTORIES
        return False

    def _is_rng_argument(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            name = node.id
            return (
                name in self._rng_names
                or name == "rng"
                or name.endswith("_rng")
                or name.endswith("rngs")
            )
        if isinstance(node, ast.Starred):
            return self._is_rng_argument(node.value)
        # Generators smuggled inside container displays or constructor
        # arguments (tuples, lists, dicts, dataclass calls) are pickled
        # all the same -- recurse one syntactic level at a time.
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._is_rng_argument(elt) for elt in node.elts)
        if isinstance(node, ast.Dict):
            return any(
                value is not None and self._is_rng_argument(value)
                for value in node.values
            )
        if isinstance(node, ast.Call) and not self._is_rng_value(node):
            operands = list(node.args)
            operands += [keyword.value for keyword in node.keywords]
            return any(self._is_rng_argument(operand) for operand in operands)
        return self._is_rng_value(node)

    def _is_rng_bundle(self, value: ast.AST) -> bool:
        """Whether an assigned value visibly *carries* a Generator.

        Container displays and constructor-style calls (a capitalized
        callable, i.e. a dataclass/class) propagate their rng contents to
        the assigned name; a plain function call does not -- ``simulate
        (rng)`` returns results, not the Generator.  The flow analyzer
        (RPL110) handles those interprocedural cases.
        """
        if self._is_rng_value(value):
            return True
        if isinstance(value, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            return self._is_rng_argument(value)
        if isinstance(value, ast.Call):
            callee = value.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else ""
            )
            if name[:1].isupper():
                return self._is_rng_argument(value)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_rng_bundle(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._rng_names.add(target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._DISPATCH_METHODS
        ):
            offenders = [
                arg for arg in node.args if self._is_rng_argument(arg)
            ]
            offenders += [
                keyword.value
                for keyword in node.keywords
                if self._is_rng_argument(keyword.value)
            ]
            for offender in offenders:
                self.report(
                    offender,
                    f"Generator shipped through .{func.attr}() is pickled "
                    "into the worker, duplicating the parent's stream; "
                    "pass a seed (SeedSequence child) and make_rng in the "
                    "worker",
                )
        self.generic_visit(node)


class NondeterministicSeedSourceRule(Rule):
    """RPL010: wall clocks and randomized hashes must not feed seeds."""

    code = "RPL010"
    name = "nondeterministic-seed-source"
    summary = (
        "no time.time / datetime.now / builtin hash() feeding seeds or "
        "sampling; repro.stats.rng.stable_hash and explicit seeds exist "
        "for this"
    )

    def _in_seed_context(self, node: ast.Call) -> bool:
        for ancestor in self.module.ancestors(node):
            if isinstance(ancestor, ast.keyword):
                if ancestor.arg is not None and "seed" in ancestor.arg.lower():
                    return True
            elif isinstance(ancestor, ast.Call) and ancestor is not node:
                dotted = self.module.resolve_dotted(ancestor.func) or ""
                if dotted.rsplit(".", 1)[-1] in _SEED_COERCERS or dotted in (
                    "numpy.random.default_rng",
                    "numpy.random.SeedSequence",
                ):
                    return True
            elif isinstance(ancestor, (ast.Assign, ast.AnnAssign)):
                targets = (
                    ancestor.targets
                    if isinstance(ancestor, ast.Assign)
                    else [ancestor.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and "seed" in target.id.lower():
                        return True
            elif isinstance(ancestor, ast.stmt):
                return False
        return False

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.module.resolve_dotted(node.func)
        is_clock = dotted in _CLOCK_CALLS
        is_hash = (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and node.func.id not in self.module.imported_names
        )
        if (is_clock or is_hash) and self._in_seed_context(node):
            source = "builtin hash()" if is_hash else dotted
            hint = (
                "repro.stats.rng.stable_hash"
                if is_hash
                else "an explicit seed argument"
            )
            self.report(
                node,
                f"{source} feeds a seed; runs become unreproducible -- "
                f"use {hint} instead",
            )
        self.generic_visit(node)


class SetIterationRule(Rule):
    """RPL011: iterating a set leaks unordered state into loop order."""

    code = "RPL011"
    name = "set-iteration-order"
    summary = (
        "no iteration over sets (for-loops / comprehensions); set order "
        "is insertion- and hash-dependent, so wrap in sorted(...) before "
        "order can reach a sampler"
    )

    def _check_iterable(self, iterable: ast.AST) -> None:
        if self.module.expression_kind(iterable) == "set":
            described = (
                f"set {iterable.id!r}"
                if isinstance(iterable, ast.Name)
                else "a set expression"
            )
            self.report(
                iterable,
                f"iteration over {described} has no stable order; use "
                "sorted(...) so downstream sampling stays deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)


class NdarrayElementLoopRule(Rule):
    """RPL020: per-element loops over ndarrays in batched modules."""

    code = "RPL020"
    name = "ndarray-element-loop"
    summary = (
        "no per-element for-loop over an ndarray in modules declared "
        "batched (repro.core.engine, repro.core.models, "
        "repro.stats.sampling); vectorize or justify with a noqa"
    )

    _WRAPPERS = frozenset({"zip", "enumerate", "reversed"})

    def _ndarray_operand(self, iterable: ast.AST) -> Optional[ast.AST]:
        if self.module.expression_kind(iterable) == "ndarray":
            return iterable
        if isinstance(iterable, ast.Call):
            dotted = self.module.resolve_dotted(iterable.func)
            if dotted in self._WRAPPERS:
                for argument in iterable.args:
                    if self.module.expression_kind(argument) == "ndarray":
                        return argument
        return None

    def _check_iterable(self, iterable: ast.AST) -> None:
        operand = self._ndarray_operand(iterable)
        if operand is not None:
            described = (
                f"ndarray {operand.id!r}"
                if isinstance(operand, ast.Name)
                else "an ndarray expression"
            )
            self.report(
                iterable,
                f"per-element iteration over {described} in a batched "
                "module; express this as array operations (or .tolist() "
                "explicitly on a declared compatibility path)",
            )

    def visit_For(self, node: ast.For) -> None:
        if _path_matches(self.module.path, BATCHED_MODULE_SUFFIXES):
            self._check_iterable(node.iter)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if _path_matches(self.module.path, BATCHED_MODULE_SUFFIXES):
            self._check_iterable(node.iter)
        self.generic_visit(node)


class ArrayGrowthInLoopRule(Rule):
    """RPL021: growing arrays inside loops in batched modules."""

    code = "RPL021"
    name = "array-growth-in-loop"
    summary = (
        "no np.append / np.concatenate / np.*stack inside a loop in "
        "batched modules; each call reallocates -- collect chunks and "
        "concatenate once"
    )

    _TARGETS = frozenset(
        {
            "numpy.append",
            "numpy.concatenate",
            "numpy.hstack",
            "numpy.vstack",
            "numpy.column_stack",
        }
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _path_matches(self.module.path, BATCHED_MODULE_SUFFIXES):
            dotted = self.module.resolve_dotted(node.func)
            if dotted in self._TARGETS and self.module.in_loop(node):
                self.report(
                    node,
                    f"{dotted.replace('numpy', 'np')} inside a loop "
                    "reallocates the array every iteration; append to a "
                    "list and concatenate once after the loop",
                )
        self.generic_visit(node)


class ColumnAppendLoopRule(Rule):
    """RPL022: per-row append loops over column arrays in repro.store.

    The store's whole point is that data moves as columns: a loop that
    walks an ndarray column and ``.append``-s values one row at a time
    re-introduces the O(rows) Python-interpreter cost the chunk layout
    removed.  Batch the transfer (``list.extend(column.tolist())``) or
    express the transform as array operations.
    """

    code = "RPL022"
    name = "column-append-loop"
    summary = (
        "no per-row list.append loop over ndarray columns inside "
        "repro.store modules; batch the rows with "
        ".extend(column.tolist()) or a vectorized transform"
    )

    _WRAPPERS = frozenset({"zip", "enumerate", "reversed"})

    def _iterates_ndarray(self, iterable: ast.AST) -> bool:
        if self.module.expression_kind(iterable) == "ndarray":
            return True
        if isinstance(iterable, ast.Call):
            dotted = self.module.resolve_dotted(iterable.func)
            if dotted in self._WRAPPERS:
                return any(
                    self.module.expression_kind(argument) == "ndarray"
                    for argument in iterable.args
                )
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if _path_within(self.module.path, STORE_MODULE_PATH_PARTS):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "append":
                for ancestor in self.module.ancestors(node):
                    if isinstance(
                        ancestor, (ast.For, ast.AsyncFor)
                    ) and self._iterates_ndarray(ancestor.iter):
                        self.report(
                            node,
                            "per-row .append over an ndarray column; batch "
                            "the rows with .extend(column.tolist()) or a "
                            "vectorized transform instead",
                        )
                        break
        self.generic_visit(node)


class SegmentUserLoopRule(Rule):
    """RPL023: per-user Python loops in segment-aware modules.

    The persona-segment contract is one kernel invocation per segment:
    a mixed-segment user batch is grouped by
    :func:`repro.core.engine.partition_by_blocks` and each contiguous
    block moves through the vectorized engine whole.  A Python loop
    that walks a user/app ndarray element-by-element inside these
    modules re-introduces the O(users)-per-segment interpreter cost
    the block dispatch exists to remove.
    """

    code = "RPL023"
    name = "segment-user-loop"
    summary = (
        "no per-element loop over user/app ndarrays in segment-aware "
        "modules (repro.marketplace.segments, "
        "repro.marketplace.behavior, repro.workload.sharding); group "
        "the batch with partition_by_blocks and hand whole segment "
        "blocks to one kernel call"
    )

    _WRAPPERS = frozenset({"zip", "enumerate", "reversed"})

    def _ndarray_operand(self, iterable: ast.AST) -> Optional[ast.AST]:
        if self.module.expression_kind(iterable) == "ndarray":
            return iterable
        if isinstance(iterable, ast.Call):
            dotted = self.module.resolve_dotted(iterable.func)
            if dotted in self._WRAPPERS:
                for argument in iterable.args:
                    if self.module.expression_kind(argument) == "ndarray":
                        return argument
        return None

    def _check_iterable(self, iterable: ast.AST) -> None:
        operand = self._ndarray_operand(iterable)
        if operand is not None:
            described = (
                f"ndarray {operand.id!r}"
                if isinstance(operand, ast.Name)
                else "an ndarray expression"
            )
            self.report(
                iterable,
                f"per-element iteration over {described} in a "
                "segment-aware module; group the users with "
                "partition_by_blocks and dispatch each segment block "
                "through one kernel call instead",
            )

    def visit_For(self, node: ast.For) -> None:
        if _path_matches(self.module.path, SEGMENT_MODULE_SUFFIXES):
            self._check_iterable(node.iter)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if _path_matches(self.module.path, SEGMENT_MODULE_SUFFIXES):
            self._check_iterable(node.iter)
        self.generic_visit(node)


class MutableDefaultRule(Rule):
    """RPL030: mutable default arguments."""

    code = "RPL030"
    name = "mutable-default-argument"
    summary = (
        "no mutable default arguments ([], {}, set(), ...); defaults are "
        "evaluated once and shared across calls -- default to None"
    )

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "collections.defaultdict"}
    )

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(default, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(default, ast.Call):
            dotted = self.module.resolve_dotted(default.func)
            return dotted in self._MUTABLE_CALLS
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    default,
                    f"mutable default argument in {node.name!r}; use None "
                    "and construct inside the function",
                )
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    default,
                    "mutable default argument in lambda; use None and "
                    "construct inside",
                )
        self.generic_visit(node)


class FloatEqualityRule(Rule):
    """RPL031: exact float equality outside the allowlist."""

    code = "RPL031"
    name = "float-equality"
    summary = (
        "no == / != against float literals outside allowlisted named "
        "predicates; exact float comparison is brittle -- compare via a "
        "domain predicate (e.g. AppSnapshot.is_free) or np.isclose"
    )

    @staticmethod
    def _is_float_constant(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return FloatEqualityRule._is_float_constant(node.operand)
        return False

    def _allowlisted(self, node: ast.AST) -> bool:
        qualname = self.module.qualname(node)
        normalized = _normalized(self.module.path)
        for suffix, allowed_qualname in FLOAT_EQ_ALLOWLIST:
            if normalized.endswith(suffix) and qualname.endswith(
                allowed_qualname
            ):
                return True
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, operator in enumerate(node.ops):
            if isinstance(operator, (ast.Eq, ast.NotEq)):
                pair = (operands[index], operands[index + 1])
                if any(self._is_float_constant(side) for side in pair):
                    if not self._allowlisted(node):
                        self.report(
                            node,
                            "exact float equality comparison; express the "
                            "intent as a named predicate or use np.isclose",
                        )
                        break
        self.generic_visit(node)


class DunderAllDriftRule(Rule):
    """RPL032: ``__all__`` out of sync with the module's public names."""

    code = "RPL032"
    name = "dunder-all-drift"
    summary = (
        "__all__ must list exactly the module-level public defs it "
        "exports: no unbound entries, no public def/class missing from "
        "an existing __all__"
    )

    def visit_Module(self, node: ast.Module) -> None:
        all_node: Optional[ast.Assign] = None
        exported: List[str] = []
        bound: set = set()
        public_defs: List[Tuple[str, ast.AST]] = []
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                bound.add(statement.name)
                if not statement.name.startswith("_"):
                    public_defs.append((statement.name, statement))
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                        if target.id == "__all__":
                            all_node = statement
                            exported = self._exported_names(statement.value)
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name):
                    bound.add(statement.target.id)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, ast.ImportFrom):
                for alias in statement.names:
                    bound.add(alias.asname or alias.name)
        if all_node is None:
            return
        for name in exported:
            if name not in bound:
                self.report(
                    all_node,
                    f"__all__ exports {name!r} but the module never binds "
                    "it; remove the entry or define the name",
                )
        listed = set(exported)
        for name, definition in public_defs:
            if name not in listed:
                self.report(
                    definition,
                    f"public {name!r} is defined here but missing from "
                    "__all__; add it or rename with a leading underscore",
                )

    @staticmethod
    def _exported_names(value: ast.AST) -> List[str]:
        names: List[str] = []
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append(element.value)
        return names


#: Wall-time sources that poison virtual-clock determinism: the clock
#: reads RPL010 knows about, plus blocking sleeps.
_WALL_TIME_CALLS = frozenset(_CLOCK_CALLS | {"time.sleep"})


class WallClockInServiceRule(Rule):
    """RPL040: wall-clock time inside the virtual-time service."""

    code = "RPL040"
    name = "wall-clock-in-service"
    summary = (
        "repro/service modules run on the virtual clock; read time via "
        "the running event loop's loop.time() and wait via asyncio.sleep "
        "-- any time.*/datetime wall-clock call (or time.sleep) breaks "
        "the deterministic-replay and instant-soak contracts"
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _path_within(self.module.path, SERVICE_MODULE_PATH_PARTS):
            dotted = self.module.resolve_dotted(node.func)
            if dotted in _WALL_TIME_CALLS:
                if dotted == "time.sleep":
                    hint = "await asyncio.sleep(...) on the running loop"
                else:
                    hint = "asyncio.get_running_loop().time()"
                self.report(
                    node,
                    f"{dotted} reads the wall clock inside the "
                    f"virtual-time service; use {hint} so simulated time "
                    "stays deterministic and instant",
                )
        self.generic_visit(node)


#: The shipped rule pack, in code order.
RULES: Tuple[Type[Rule], ...] = (
    LegacyNumpyRandomRule,
    StdlibRandomRule,
    UncoercedSeedRule,
    GeneratorInLoopRule,
    GeneratorAcrossProcessRule,
    NondeterministicSeedSourceRule,
    SetIterationRule,
    NdarrayElementLoopRule,
    ArrayGrowthInLoopRule,
    ColumnAppendLoopRule,
    SegmentUserLoopRule,
    MutableDefaultRule,
    FloatEqualityRule,
    DunderAllDriftRule,
    WallClockInServiceRule,
)
