"""Whole-program model behind the flow passes.

Where the lint engine sees one file at a time, :class:`Program` parses a
whole tree once and links it: dotted module names recovered from the
package layout, a symbol table of every module-level function and class,
re-export canonicalization (``repro.store.open_store`` resolves to its
definition in ``repro.store.disk``), a call-site index (who calls whom,
and from where), and best-effort binding of call arguments to callee
parameters.  The three dataflow passes are clients of this model; none
of them re-parse or re-resolve anything.

Resolution is deliberately *precise over complete*: a name the model
cannot follow resolves to ``None`` and the passes treat it as opaque
rather than guessing.  False positives are the failure mode that kills
an analyzer people must keep at zero findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

from repro.devtools.lint.engine import ModuleInfo, iter_python_files
from repro.devtools.lint.findings import Finding

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Canonicalization follows at most this many re-export hops; real
#: chains in the tree are 1-2 deep, so the cap only guards cycles.
_MAX_REEXPORT_HOPS = 8


def module_name_for(path: Path) -> str:
    """Dotted module name recovered from the package layout on disk.

    Walks parent directories while they contain ``__init__.py``; the
    first directory without one is the import root.  ``__init__.py``
    itself names its package.
    """
    resolved = path.resolve()
    parts: List[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    current = resolved.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(reversed(parts))


def walk_function_body(func: FunctionNode) -> Iterator[ast.AST]:
    """Yield the nodes of a function's own body, skipping nested defs."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class FunctionInfo:
    """One module-level function or method, linked to its module."""

    qualname: str
    module: ModuleInfo
    node: FunctionNode
    class_name: Optional[str] = None

    @property
    def positional_params(self) -> List[str]:
        args = self.node.args
        return [p.arg for p in list(args.posonlyargs) + list(args.args)]

    @property
    def param_names(self) -> Set[str]:
        args = self.node.args
        names = set(self.positional_params)
        names.update(p.arg for p in args.kwonlyargs)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        return names

    def return_expressions(self) -> List[ast.AST]:
        """Value expressions of this function's own ``return`` statements."""
        return [
            node.value
            for node in walk_function_body(self.node)
            if isinstance(node, ast.Return) and node.value is not None
        ]


@dataclass
class ClassInfo:
    """One module-level class with its directly-defined methods."""

    qualname: str
    module: ModuleInfo
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression, with the function it occurs inside (if any)."""

    module: ModuleInfo
    node: ast.Call
    caller: Optional[FunctionInfo]


class Program:
    """A parsed, cross-linked view of one or more source trees."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: callee qualname -> every resolved call site targeting it.
        self.callers: Dict[str, List[CallSite]] = {}
        #: Parse failures, reported as RPL100 findings by the CLI.
        self.errors: List[Finding] = []
        self._names_by_module: Dict[int, str] = {}
        self._info_by_node: Dict[int, FunctionInfo] = {}
        self._import_aliases: Dict[int, Dict[str, str]] = {}
        self._callees_cache: Dict[str, Set[str]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def load(cls, paths: Sequence[str]) -> "Program":
        """Parse every ``.py`` file under the given files/directories."""
        program = cls()
        for file_path in iter_python_files(paths):
            source = file_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source)
            except SyntaxError as error:
                program.errors.append(
                    Finding(
                        code="RPL100",
                        message=f"file could not be parsed: {error.msg}",
                        path=str(file_path),
                        line=error.lineno or 1,
                        col=(error.offset or 1) - 1,
                    )
                )
                continue
            module = ModuleInfo(path=str(file_path), source=source, tree=tree)
            name = module_name_for(file_path)
            program.modules[name] = module
            program._names_by_module[id(module)] = name
            program._import_aliases[id(module)] = cls._collect_plain_imports(tree)
        program._index_definitions()
        program._index_call_sites()
        return program

    @staticmethod
    def _collect_plain_imports(tree: ast.Module) -> Dict[str, str]:
        """Bound name -> dotted module for ``import x.y as z`` statements.

        ``ModuleInfo`` only tracks numpy this way; the program model needs
        the general table to resolve e.g. ``import concurrent.futures``.
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        aliases[alias.asname] = alias.name
        return aliases

    def _index_definitions(self) -> None:
        for mod_name, module in self.modules.items():
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(mod_name, module, stmt, None)
                elif isinstance(stmt, ast.ClassDef):
                    cls_info = ClassInfo(
                        qualname=f"{mod_name}.{stmt.name}",
                        module=module,
                        node=stmt,
                    )
                    self.classes[cls_info.qualname] = cls_info
                    for item in stmt.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            method = self._add_function(
                                mod_name, module, item, stmt.name
                            )
                            cls_info.methods[item.name] = method

    def _add_function(
        self,
        mod_name: str,
        module: ModuleInfo,
        node: FunctionNode,
        class_name: Optional[str],
    ) -> FunctionInfo:
        middle = f"{class_name}." if class_name else ""
        info = FunctionInfo(
            qualname=f"{mod_name}.{middle}{node.name}",
            module=module,
            node=node,
            class_name=class_name,
        )
        self.functions[info.qualname] = info
        self._info_by_node[id(node)] = info
        return info

    def _index_call_sites(self) -> None:
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                caller = self.enclosing_function_info(module, node)
                callee = self.resolve_callee(module, node, caller)
                if callee in self.functions:
                    self.callers.setdefault(callee, []).append(
                        CallSite(module=module, node=node, caller=caller)
                    )

    # -- resolution ------------------------------------------------------

    def module_name(self, module: ModuleInfo) -> str:
        """The dotted name this program loaded the module under."""
        return self._names_by_module.get(id(module), "")

    def resolve(self, module: ModuleInfo, node: ast.AST) -> Optional[str]:
        """``resolve_dotted`` plus the generic ``import x as y`` table."""
        dotted = module.resolve_dotted(node)
        if dotted is None:
            return None
        aliases = self._import_aliases.get(id(module), {})
        head, sep, rest = dotted.partition(".")
        if head in aliases:
            dotted = aliases[head] + (f".{rest}" if sep else "")
        return dotted

    def canonicalize(self, dotted: Optional[str]) -> Optional[str]:
        """Follow re-export chains until a definition site (or fixpoint).

        ``repro.store.open_store`` canonicalizes to
        ``repro.store.disk.open_store`` because ``repro.store``'s
        ``__init__`` imports it from there.
        """
        if dotted is None:
            return None
        current = dotted
        for _ in range(_MAX_REEXPORT_HOPS):
            if current in self.functions or current in self.classes:
                return current
            parts = current.split(".")
            replaced = False
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                module = self.modules.get(prefix)
                if module is None:
                    continue
                origin = module.imported_names.get(parts[cut])
                if origin is not None and origin != current:
                    current = ".".join([origin] + parts[cut + 1 :])
                    replaced = True
                break
            if not replaced:
                break
        return current

    def resolve_callee(
        self,
        module: ModuleInfo,
        call: ast.Call,
        caller: Optional[FunctionInfo],
    ) -> Optional[str]:
        """Qualname of the function/class a call targets, if in-program."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and caller is not None
            and caller.class_name is not None
        ):
            mod_name = self.module_name(module)
            candidate = f"{mod_name}.{caller.class_name}.{func.attr}"
            if candidate in self.functions:
                return candidate
        dotted = self.resolve(module, func)
        if dotted is None:
            return None
        canonical = self.canonicalize(dotted)
        if canonical not in self.functions and canonical not in self.classes:
            # A bare local name: qualify against the defining module.
            local = f"{self.module_name(module)}.{dotted}"
            if local in self.functions or local in self.classes:
                return local
        return canonical

    def enclosing_function_info(
        self, module: ModuleInfo, node: ast.AST
    ) -> Optional[FunctionInfo]:
        """The indexed function a node sits in (nested defs resolve to
        their nearest indexed ancestor)."""
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._info_by_node.get(id(ancestor))
                if info is not None:
                    return info
        return None

    def function_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The FunctionInfo indexed for a specific def node, if any."""
        return self._info_by_node.get(id(node))

    # -- call graph ------------------------------------------------------

    def callees_of(self, qualname: str) -> Set[str]:
        """In-program functions a function calls directly (cached)."""
        cached = self._callees_cache.get(qualname)
        if cached is not None:
            return cached
        info = self.functions.get(qualname)
        callees: Set[str] = set()
        if info is not None:
            for node in walk_function_body(info.node):
                if isinstance(node, ast.Call):
                    target = self.resolve_callee(info.module, node, info)
                    if target in self.functions:
                        callees.add(target)
        self._callees_cache[qualname] = callees
        return callees

    def parameters_bound(
        self, callee: FunctionInfo, call: ast.Call
    ) -> Dict[str, List[ast.AST]]:
        """Best-effort map of callee parameter -> argument expressions.

        Bound-method calls (``obj.meth(...)``) shift positional binding
        past ``self``/``cls``.  ``*args`` splats stop positional binding
        at the splat; keywords bind by name.
        """
        positional = callee.positional_params
        offset = 0
        if (
            callee.class_name is not None
            and isinstance(call.func, ast.Attribute)
            and positional
            and positional[0] in ("self", "cls")
        ):
            offset = 1
        bound: Dict[str, List[ast.AST]] = {}
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            slot = index + offset
            if slot < len(positional):
                bound.setdefault(positional[slot], []).append(arg)
        names = callee.param_names
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in names:
                bound.setdefault(keyword.arg, []).append(keyword.value)
        return bound
