"""Purity contracts checked by the whole-program analyzer.

:func:`pure` is the only runtime artifact of the purity pass: a marker
decorator with **zero call overhead** (it tags the function object and
returns it unchanged), importable from hot modules without dragging any
analyzer machinery along -- this module deliberately imports nothing.

The contract a ``@pure`` function promises, verified statically by
``repro flow`` (``RPL120-123``):

- no writes to globals, closures, ``self``, or any argument -- the only
  mutable state it touches is what it allocates itself;
- no I/O (files, sockets, stdout, logging) and no wall clock;
- every callee is itself ``@pure``, an allowlisted numpy/builtin
  operation, or a method on a value the function owns;
- the one sanctioned effect: draws from a ``numpy.random.Generator``
  passed *explicitly* as a parameter.  The function is "pure modulo its
  arguments": same arguments (including Generator state) in, same
  values out, nothing else observed or changed.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable)

#: Attribute set on decorated functions; the analyzer matches the
#: decorator *syntactically*, so this exists only for runtime
#: introspection (``is_pure``) and documentation tooling.
PURE_ATTRIBUTE = "__repro_pure__"


def pure(func: _F) -> _F:
    """Mark a function as a statically-verified pure kernel."""
    setattr(func, PURE_ATTRIBUTE, True)
    return func


def is_pure(func: Callable) -> bool:
    """Whether a callable carries the ``@pure`` contract marker."""
    return getattr(func, PURE_ATTRIBUTE, False) is True
