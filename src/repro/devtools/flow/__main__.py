"""Allow ``python -m repro.devtools.flow <paths>``."""

from __future__ import annotations

import sys

from repro.devtools.flow.cli import main

if __name__ == "__main__":
    sys.exit(main())
