"""Process-boundary escape pass: what actually crosses into workers.

RPL005 catches a Generator *named* in a ``submit(...)`` call.  This pass
generalizes it to the transitive closure: starting from every payload
expression of a process-pool dispatch (``submit``/``map``/...), it
chases values backwards through local assignments, container displays,
dataclass constructor fields, in-program function returns, and -- when a
payload is a parameter -- the arguments of every caller, up to a small
depth.  Anything in that closure whose origin is a forbidden resource is
flagged:

- ``RPL110`` -- ``np.random.Generator`` (pickling duplicates the
  stream; parent and worker silently share draws);
- ``RPL111`` -- mmap-backed store handles from
  ``repro.store.disk.open_store`` / ``np.load(mmap_mode=...)`` (the
  mapping cannot cross a process);
- ``RPL112`` -- open file handles;
- ``RPL113`` -- ``MetricsRegistry`` instances (workers must keep
  private registries, merged deterministically after join).

``SeedSequence`` is deliberately *not* a forbidden origin: seeds and
their spawned children are the sanctioned cross-process currency.
Unresolvable expressions stop the walk silently -- precision over
recall, as everywhere in the flow analyzer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.engine import ModuleInfo
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.rules import GeneratorAcrossProcessRule
from repro.devtools.flow.program import (
    FunctionInfo,
    Program,
    walk_function_body,
)

_DISPATCH_METHODS = GeneratorAcrossProcessRule._DISPATCH_METHODS

_EXECUTOR_TYPES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: Receiver names treated as executors even without a visible
#: construction site (executors passed in as parameters).
_EXECUTOR_NAMES = frozenset({"pool", "executor"})

_RNG_ORIGINS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "repro.stats.rng.make_rng",
        "repro.stats.rng.spawn_rngs",
    }
)

_STORE_ORIGINS = frozenset({"repro.store.disk.open_store"})

_FILE_ORIGINS = frozenset({"open", "builtins.open", "io.open", "gzip.open"})

_REGISTRY_ORIGINS = frozenset(
    {
        "repro.obs.metrics.MetricsRegistry",
        "repro.obs.metrics.get_registry",
    }
)

#: Builtins whose return value contains their arguments.
_CONTAINER_WRAPPERS = frozenset(
    {"tuple", "list", "set", "frozenset", "dict", "sorted", "reversed"}
)

#: How many caller/callee hops the closure follows from a dispatch site.
_MAX_HOPS = 4


@dataclass(frozen=True)
class _Item:
    """One expression on the worklist, with where it came from."""

    node: ast.AST
    module: ModuleInfo
    info: Optional[FunctionInfo]
    depth: int
    chain: Tuple[str, ...]


@dataclass(frozen=True)
class _Dispatch:
    """One dispatch payload root, kept for reporting."""

    method: str
    root: ast.AST
    module: ModuleInfo


class EscapePass:
    """Run the escape analysis over a loaded :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.findings: List[Finding] = []
        self._reported: Set[Tuple[int, str]] = set()

    def run(self) -> List[Finding]:
        for module in self.program.modules.values():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    method = self._dispatch_method(module, node)
                    if method is not None:
                        self._trace_dispatch(module, node, method)
        return self.findings

    # -- dispatch detection ---------------------------------------------

    def _dispatch_method(
        self, module: ModuleInfo, call: ast.Call
    ) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in _DISPATCH_METHODS:
            return None
        receiver = func.value
        if isinstance(receiver, ast.Call) and self._is_executor_ctor(
            module, receiver
        ):
            return func.attr
        if isinstance(receiver, ast.Name):
            if receiver.id in _EXECUTOR_NAMES:
                return func.attr
            info = self.program.enclosing_function_info(module, call)
            if receiver.id in self._executor_names(module, info):
                return func.attr
        return None

    def _is_executor_ctor(self, module: ModuleInfo, call: ast.Call) -> bool:
        dotted = self.program.resolve(module, call.func)
        return dotted in _EXECUTOR_TYPES

    def _executor_names(
        self, module: ModuleInfo, info: Optional[FunctionInfo]
    ) -> Set[str]:
        """Names bound to executor constructions in the relevant scope."""
        if info is not None:
            nodes: Iterator[ast.AST] = walk_function_body(info.node)
        else:
            nodes = ast.walk(module.tree)
        names: Set[str] = set()
        for node in nodes:
            if isinstance(node, ast.withitem):
                if (
                    isinstance(node.optional_vars, ast.Name)
                    and isinstance(node.context_expr, ast.Call)
                    and self._is_executor_ctor(module, node.context_expr)
                ):
                    names.add(node.optional_vars.id)
            elif isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Call) and self._is_executor_ctor(
                    module, node.value
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    # -- the closure -----------------------------------------------------

    def _trace_dispatch(
        self, module: ModuleInfo, call: ast.Call, method: str
    ) -> None:
        info = self.program.enclosing_function_info(module, call)
        roots = list(call.args) + [kw.value for kw in call.keywords]
        for root in roots:
            dispatch = _Dispatch(method=method, root=root, module=module)
            self._run_worklist(
                _Item(node=root, module=module, info=info, depth=0, chain=()),
                dispatch,
            )

    def _run_worklist(self, start: _Item, dispatch: _Dispatch) -> None:
        worklist: List[_Item] = [start]
        visited: Set[int] = set()
        while worklist:
            item = worklist.pop()
            if id(item.node) in visited:
                continue
            visited.add(id(item.node))
            worklist.extend(self._expand(item, dispatch))

    def _expand(self, item: _Item, dispatch: _Dispatch) -> List[_Item]:
        node = item.node
        if isinstance(node, ast.Name):
            return self._expand_name(item, dispatch)
        if isinstance(node, ast.Starred):
            return [self._child(item, node.value)]
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return [self._child(item, elt) for elt in node.elts]
        if isinstance(node, ast.Dict):
            return [
                self._child(item, value)
                for value in node.values
                if value is not None
            ]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return [self._child(item, node.elt)]
        if isinstance(node, ast.DictComp):
            return [self._child(item, node.value)]
        if isinstance(node, ast.IfExp):
            return [self._child(item, node.body), self._child(item, node.orelse)]
        if isinstance(node, ast.BoolOp):
            return [self._child(item, value) for value in node.values]
        if isinstance(node, ast.Await):
            return [self._child(item, node.value)]
        if isinstance(node, ast.Call):
            return self._expand_call(item, node, dispatch)
        if isinstance(node, ast.Attribute):
            return self._expand_attribute(item, node)
        if isinstance(node, ast.Subscript):
            return [self._child(item, node.value)]
        return []

    def _child(self, item: _Item, node: ast.AST, *, hop: str = "") -> _Item:
        return _Item(
            node=node,
            module=item.module,
            info=item.info,
            depth=item.depth,
            chain=item.chain + ((hop,) if hop else ()),
        )

    def _expand_name(self, item: _Item, dispatch: _Dispatch) -> List[_Item]:
        name = item.node.id  # type: ignore[attr-defined]
        children: List[_Item] = []
        is_param = item.info is not None and name in item.info.param_names
        bindings = self._local_bindings(item, name)
        if not is_param and not bindings:
            # A bare reference to an in-program function/class is the
            # worker callable, not a value -- it pickles by name.
            referenced = self.program.canonicalize(
                self.program.resolve(item.module, item.node)
            )
            local = f"{self.program.module_name(item.module)}.{name}"
            for candidate in (referenced, local):
                if (
                    candidate in self.program.functions
                    or candidate in self.program.classes
                ):
                    return []
        if item.info is not None:
            children.extend(bindings)
            if is_param and item.depth < _MAX_HOPS:
                for site in self.program.callers.get(item.info.qualname, []):
                    bound = self.program.parameters_bound(item.info, site.node)
                    for arg in bound.get(name, []):
                        children.append(
                            _Item(
                                node=arg,
                                module=site.module,
                                info=site.caller,
                                depth=item.depth + 1,
                                chain=item.chain
                                + (f"{item.info.qualname}({name})",),
                            )
                        )
        else:
            children.extend(bindings)
        return children

    def _local_bindings(self, item: _Item, name: str) -> List[_Item]:
        """Everything assigned or appended to ``name`` in the scope."""
        if item.info is not None:
            nodes: Iterator[ast.AST] = walk_function_body(item.info.node)
        else:
            nodes = iter(item.module.tree.body)
        children: List[_Item] = []
        for node in nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                if node.value is not None and any(
                    isinstance(target, ast.Name) and target.id == name
                    for target in targets
                ):
                    children.append(self._child(item, node.value))
            elif isinstance(node, ast.For):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == name
                ):
                    children.append(self._child(item, node.iter))
            elif isinstance(node, ast.withitem):
                if (
                    isinstance(node.optional_vars, ast.Name)
                    and node.optional_vars.id == name
                ):
                    children.append(self._child(item, node.context_expr))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                    and func.attr in ("append", "add", "insert", "extend")
                ):
                    children.extend(self._child(item, arg) for arg in node.args)
        return children

    def _expand_call(
        self, item: _Item, node: ast.Call, dispatch: _Dispatch
    ) -> List[_Item]:
        dotted = self.program.resolve(item.module, node.func)
        canonical = self.program.canonicalize(dotted)
        classified = self._classify(dotted, canonical, node)
        if classified is not None:
            code, kind, remedy = classified
            self._report(dispatch, item, node, code, kind, remedy)
            return []
        if dotted in _CONTAINER_WRAPPERS:
            return [self._child(item, arg) for arg in node.args]
        callee = self.program.resolve_callee(item.module, node, item.info)
        if callee in self.program.functions and item.depth < _MAX_HOPS:
            callee_info = self.program.functions[callee]
            return [
                _Item(
                    node=value,
                    module=callee_info.module,
                    info=callee_info,
                    depth=item.depth + 1,
                    chain=item.chain + (f"{callee_info.qualname}() return",),
                )
                for value in callee_info.return_expressions()
            ]
        if callee in self.program.classes:
            # Constructor: the instance carries every field it was built
            # from, so the closure recurses into the arguments.
            hop = f"{callee.rsplit('.', 1)[-1]}(...) field"
            values = list(node.args) + [kw.value for kw in node.keywords]
            return [self._child(item, value, hop=hop) for value in values]
        return []

    def _expand_attribute(self, item: _Item, node: ast.Attribute) -> List[_Item]:
        # ``self.attr`` inside a method: chase assignments to that
        # attribute anywhere in the class.
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and item.info is not None
            and item.info.class_name is not None
        ):
            mod_name = self.program.module_name(item.module)
            cls_info = self.program.classes.get(
                f"{mod_name}.{item.info.class_name}"
            )
            children: List[_Item] = []
            if cls_info is not None:
                for method in cls_info.methods.values():
                    for stmt in walk_function_body(method.node):
                        if not isinstance(stmt, ast.Assign):
                            continue
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and target.attr == node.attr
                            ):
                                children.append(
                                    _Item(
                                        node=stmt.value,
                                        module=method.module,
                                        info=method,
                                        depth=item.depth,
                                        chain=item.chain
                                        + (f"self.{node.attr}",),
                                    )
                                )
            return children
        # Otherwise the attribute's object carries the value: expand the
        # base (a dataclass field reaches its constructor arguments).
        return [self._child(item, node.value)]

    # -- classification & reporting -------------------------------------

    def _classify(
        self,
        dotted: Optional[str],
        canonical: Optional[str],
        node: ast.Call,
    ) -> Optional[Tuple[str, str, str]]:
        candidates = {dotted, canonical}
        if candidates & _RNG_ORIGINS:
            return (
                "RPL110",
                "np.random.Generator",
                "ship a seed or SeedSequence child and build the Generator "
                "in the worker",
            )
        if candidates & _STORE_ORIGINS:
            return (
                "RPL111",
                "mmap-backed store handle",
                "pass the dataset directory and re-open in the worker",
            )
        if dotted == "numpy.load" and any(
            kw.arg == "mmap_mode" for kw in node.keywords
        ):
            return (
                "RPL111",
                "mmap-backed array",
                "pass the file path and np.load in the worker",
            )
        if candidates & _FILE_ORIGINS:
            return (
                "RPL112",
                "open file handle",
                "pass the path and open in the worker",
            )
        if candidates & _REGISTRY_ORIGINS:
            return (
                "RPL113",
                "MetricsRegistry",
                "let the worker keep a private registry and merge snapshots "
                "deterministically after join",
            )
        return None

    def _report(
        self,
        dispatch: _Dispatch,
        item: _Item,
        origin: ast.Call,
        code: str,
        kind: str,
        remedy: str,
    ) -> None:
        key = (id(dispatch.root), code)
        if key in self._reported:
            return
        self._reported.add(key)
        origin_at = f"{Path(item.module.path).name}:{origin.lineno}"
        via = f" via {' -> '.join(item.chain)}" if item.chain else ""
        self.findings.append(
            Finding(
                code=code,
                message=(
                    f"{kind} (created at {origin_at}) escapes into a "
                    f"process-pool {dispatch.method}() payload{via}; "
                    f"{remedy}"
                ),
                path=dispatch.module.path,
                line=dispatch.root.lineno,
                col=dispatch.root.col_offset,
            )
        )


def run_escape(program: Program) -> List[Finding]:
    """Convenience wrapper used by the CLI."""
    return EscapePass(program).run()
