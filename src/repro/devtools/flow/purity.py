"""Purity pass: static verification of ``@pure`` kernel contracts.

A kernel decorated with :func:`repro.devtools.flow.pure` promises it is
deterministic and side-effect-free *modulo its arguments*: the only
mutable state it touches is what it allocates itself, plus draws from a
``numpy.random.Generator`` passed explicitly as a parameter.  This pass
verifies the promise:

- ``RPL120`` -- writes to globals/closures (``global``/``nonlocal``),
  to ``self``, to parameters, or through any value that may alias an
  argument.  Ownership is tracked per local name: a name is *owned*
  when every assignment to it is a fresh allocation (a display, an
  arithmetic expression, a numpy constructor that copies, a ``.copy()``
  / ``.astype()``); owned values may be mutated freely.
- ``RPL121`` -- I/O of any kind (files, ``print``, logging, ``os``/
  ``sys``/``subprocess``, numpy's save/load family).
- ``RPL122`` -- wall-clock reads.
- ``RPL123`` -- callees the analyzer cannot verify: an in-program
  callee that is not itself ``@pure``, ``np.random.*`` (draws must come
  through the passed Generator), unknown methods on values that may
  alias arguments, or anything unresolvable (including nested function
  definitions -- hoist helpers and mark them ``@pure``).

Everything else -- numpy array math, allowlisted builtins, methods on
owned values -- is allowed.  As in the other passes, allow/deny sets are
explicit and unknown constructs fail *closed* (``RPL123``) rather than
silently passing: a purity contract nobody can trust is worse than none.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.rules import _CLOCK_CALLS
from repro.devtools.flow.program import (
    FunctionInfo,
    Program,
    walk_function_body,
)

#: Decorator spellings that mark a contracted kernel.
_PURE_DECORATORS = (
    "repro.devtools.flow.pure",
    "repro.devtools.flow.contracts.pure",
)

#: numpy calls that return *views* of their input; results are not owned.
_NUMPY_VIEWS = frozenset(
    {
        "numpy.asarray",
        "numpy.asanyarray",
        "numpy.ascontiguousarray",
        "numpy.atleast_1d",
        "numpy.atleast_2d",
        "numpy.broadcast_to",
        "numpy.frombuffer",
        "numpy.ravel",
        "numpy.reshape",
        "numpy.squeeze",
        "numpy.swapaxes",
        "numpy.transpose",
    }
)

#: numpy calls that are I/O, not math.
_NUMPY_IO = frozenset(
    {
        "numpy.fromfile",
        "numpy.genfromtxt",
        "numpy.load",
        "numpy.loadtxt",
        "numpy.memmap",
        "numpy.save",
        "numpy.savetxt",
        "numpy.savez",
        "numpy.savez_compressed",
    }
)

#: Builtins a pure kernel may call freely.
_BUILTIN_ALLOWED = frozenset(
    {
        "abs",
        "all",
        "any",
        "bool",
        "dict",
        "divmod",
        "enumerate",
        "float",
        "frozenset",
        "int",
        "isinstance",
        "len",
        "list",
        "max",
        "min",
        "pow",
        "range",
        "repr",
        "reversed",
        "round",
        "set",
        "slice",
        "sorted",
        "str",
        "sum",
        "tuple",
        "zip",
        # Raising is pure; constructing the exception must be too.
        "AssertionError",
        "IndexError",
        "KeyError",
        "NotImplementedError",
        "RuntimeError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: Non-mutating methods allowed on any receiver (ndarray/str/bytes API).
_PURE_METHODS = frozenset(
    {
        "all",
        "any",
        "argmax",
        "argmin",
        "argsort",
        "astype",
        "clip",
        "copy",
        "cumsum",
        "item",
        "max",
        "mean",
        "min",
        "nonzero",
        "prod",
        "repeat",
        "reshape",
        "round",
        "searchsorted",
        "std",
        "sum",
        "take",
        "tobytes",
        "tolist",
        "view",
    }
)

#: Mutating methods, allowed only on owned receivers.
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "fill",
        "insert",
        "partition",
        "pop",
        "put",
        "remove",
        "resize",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Dotted-name prefixes that are I/O or ambient state by construction.
_IO_PREFIXES = (
    "builtins.open",
    "gzip.",
    "io.",
    "json.",
    "logging.",
    "os.",
    "pathlib.",
    "pickle.",
    "shutil.",
    "socket.",
    "subprocess.",
    "sys.",
    "tempfile.",
    "warnings.",
)

_IO_CALLS = frozenset({"open", "print", "input"})

#: Expression types that always denote freshly-allocated values.
_FRESH_NODES = (
    ast.BinOp,
    ast.BoolOp,
    ast.Compare,
    ast.Constant,
    ast.Dict,
    ast.DictComp,
    ast.GeneratorExp,
    ast.JoinedStr,
    ast.List,
    ast.ListComp,
    ast.Set,
    ast.SetComp,
    ast.Tuple,
    ast.UnaryOp,
)


def _decorated_pure(program: Program, info: FunctionInfo) -> bool:
    for decorator in info.node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = program.resolve(info.module, target)
        canonical = program.canonicalize(dotted)
        for spelling in (dotted, canonical):
            if spelling is not None and spelling.endswith(_PURE_DECORATORS):
                return True
    return False


class PurityPass:
    """Verify every contracted kernel in a loaded :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.contracted: Set[str] = {
            qualname
            for qualname, info in program.functions.items()
            if _decorated_pure(program, info)
        }
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        for qualname in sorted(self.contracted):
            self._verify(self.program.functions[qualname])
        return self.findings

    # -- per-kernel verification ----------------------------------------

    def _verify(self, info: FunctionInfo) -> None:
        owned = self._owned_names(info)
        rng_params = self._rng_params(info)
        for node in walk_function_body(info.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                names = ", ".join(node.names)
                self._report(
                    info,
                    node,
                    "RPL120",
                    f"declares {type(node).__name__.lower()} {names!r}; "
                    "pure kernels may only mutate values they allocate",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                self._report(
                    info,
                    node,
                    "RPL123",
                    "contains a nested definition the analyzer cannot "
                    "verify; hoist the helper and mark it @pure",
                )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                self._report(
                    info,
                    node,
                    "RPL123",
                    "imports inside the kernel body cannot be verified; "
                    "import at module level",
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._check_store(info, node, owned)
            elif isinstance(node, ast.Call):
                self._check_call(info, node, owned, rng_params)

    # -- ownership -------------------------------------------------------

    def _owned_names(self, info: FunctionInfo) -> Set[str]:
        """Locals whose every binding is a fresh allocation."""
        assignments: List[Tuple[List[str], ast.AST]] = []
        for node in walk_function_body(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                names: List[str] = []
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.append(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        names.extend(
                            elt.id
                            for elt in target.elts
                            if isinstance(elt, ast.Name)
                        )
                if names:
                    assignments.append((names, value))
        owned: Set[str] = set()
        poisoned: Set[str] = set()
        # Two rounds so name-to-name copies of owned values settle.
        for _ in range(2):
            poisoned = set()
            for names, value in assignments:
                fresh = self._is_fresh(info, value, owned)
                for name in names:
                    if fresh:
                        owned.add(name)
                    else:
                        poisoned.add(name)
            owned -= poisoned
        return owned

    def _is_fresh(
        self, info: FunctionInfo, node: ast.AST, owned: Set[str]
    ) -> bool:
        if isinstance(node, _FRESH_NODES):
            return True
        if isinstance(node, ast.Name):
            return node.id in owned
        if isinstance(node, ast.IfExp):
            return self._is_fresh(info, node.body, owned) and self._is_fresh(
                info, node.orelse, owned
            )
        if isinstance(node, ast.Call):
            dotted = self.program.resolve(info.module, node.func) or ""
            if dotted.startswith("numpy.random."):
                return False
            if dotted.startswith("numpy."):
                return dotted not in _NUMPY_VIEWS and dotted not in _NUMPY_IO
            if dotted in _BUILTIN_ALLOWED:
                return True
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _PURE_METHODS:
                    return True
                receiver = node.func.value
                if isinstance(receiver, ast.Name) and receiver.id in (
                    self._rng_params(info)
                ):
                    # Draws from the passed Generator are fresh arrays.
                    return True
        return False

    def _rng_params(self, info: FunctionInfo) -> Set[str]:
        args = info.node.args
        all_args = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        )
        names: Set[str] = set()
        for arg in all_args:
            if arg.arg == "rng" or arg.arg.endswith("_rng"):
                names.add(arg.arg)
                continue
            if arg.annotation is not None:
                dotted = self.program.resolve(info.module, arg.annotation) or ""
                if dotted in ("numpy.random.Generator", "Generator"):
                    names.add(arg.arg)
        return names

    # -- write checks ----------------------------------------------------

    def _check_store(self, info: FunctionInfo, node: ast.AST, owned: Set[str]) -> None:
        targets: List[ast.AST]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is None:
            return  # a bare annotation is not a write
        else:
            targets = [node.target]  # type: ignore[attr-defined]
        augmented = isinstance(node, ast.AugAssign)
        stack = targets
        while stack:
            target = stack.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                stack.extend(target.elts)
            elif isinstance(target, ast.Starred):
                stack.append(target.value)
            elif isinstance(target, ast.Attribute):
                self._check_write_base(info, target, target.value, owned, "attribute")
            elif isinstance(target, ast.Subscript):
                self._check_write_base(info, target, target.value, owned, "element")
            elif isinstance(target, ast.Name) and augmented:
                if target.id not in owned:
                    self._report(
                        info,
                        target,
                        "RPL120",
                        f"augments {target.id!r}, which may alias an "
                        "argument; copy into an owned value first",
                    )

    def _check_write_base(
        self,
        info: FunctionInfo,
        target: ast.AST,
        base: ast.AST,
        owned: Set[str],
        what: str,
    ) -> None:
        if isinstance(base, ast.Name) and base.id in owned:
            return
        described = (
            f"{base.id!r}" if isinstance(base, ast.Name) else "a value"
        )
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            described = "self"
        self._report(
            info,
            target,
            "RPL120",
            f"writes an {what} of {described}, which the kernel does not "
            "own; pure kernels may only mutate values they allocate",
        )

    # -- call checks -----------------------------------------------------

    def _check_call(
        self,
        info: FunctionInfo,
        node: ast.Call,
        owned: Set[str],
        rng_params: Set[str],
    ) -> None:
        dotted = self.program.resolve(info.module, node.func)
        # Writes through out= keywords count as stores.
        for keyword in node.keywords:
            if keyword.arg == "out":
                value = keyword.value
                if not (isinstance(value, ast.Name) and value.id in owned):
                    self._report(
                        info,
                        value,
                        "RPL120",
                        "writes through out= into a value the kernel does "
                        "not own",
                    )
        if dotted is not None:
            if dotted in _CLOCK_CALLS:
                self._report(
                    info,
                    node,
                    "RPL122",
                    f"reads the wall clock via {dotted}; pure kernels must "
                    "be deterministic in their arguments",
                )
                return
            if dotted in _IO_CALLS or dotted in _NUMPY_IO or dotted.startswith(
                _IO_PREFIXES
            ):
                self._report(
                    info,
                    node,
                    "RPL121",
                    f"performs I/O via {dotted}; hoist side effects out of "
                    "the kernel",
                )
                return
            if dotted.startswith("numpy.random."):
                self._report(
                    info,
                    node,
                    "RPL123",
                    f"calls {dotted.replace('numpy', 'np')}; draws must come "
                    "from a Generator passed explicitly as a parameter",
                )
                return
            if dotted.startswith("numpy."):
                return
            if dotted in _BUILTIN_ALLOWED:
                return
        callee = self.program.resolve_callee(info.module, node, info)
        if callee is not None and callee in self.program.functions:
            if callee in self.contracted:
                return
            self._report(
                info,
                node,
                "RPL123",
                f"calls {callee}, which is not @pure; mark the callee or "
                "hoist the call out of the kernel",
            )
            return
        if isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            method = node.func.attr
            if isinstance(receiver, ast.Name) and receiver.id in rng_params:
                return
            if method in _PURE_METHODS:
                return
            if isinstance(receiver, ast.Name) and receiver.id in owned:
                return
            if method in _MUTATING_METHODS:
                self._report(
                    info,
                    node,
                    "RPL120",
                    f"calls mutating method .{method}() on a value the "
                    "kernel does not own",
                )
                return
            self._report(
                info,
                node,
                "RPL123",
                f"calls unverified method .{method}(); receivers must be "
                "owned values, the passed Generator, or allowlisted "
                "ndarray methods",
            )
            return
        self._report(
            info,
            node,
            "RPL123",
            "calls an unresolvable target the analyzer cannot verify; "
            "pure kernels may only call @pure functions and allowlisted "
            "numpy/builtin ops",
        )

    # -- reporting -------------------------------------------------------

    def _report(
        self, info: FunctionInfo, node: ast.AST, code: str, detail: str
    ) -> None:
        self.findings.append(
            Finding(
                code=code,
                message=f"@pure kernel {info.qualname} {detail}",
                path=info.module.path,
                line=getattr(node, "lineno", info.node.lineno),
                col=getattr(node, "col_offset", info.node.col_offset),
            )
        )


def run_purity(program: Program) -> List[Finding]:
    """Convenience wrapper used by the CLI."""
    return PurityPass(program).run()
