"""Whole-program dataflow analyzer (``repro flow`` / ``make flow``).

Where :mod:`repro.devtools.lint` checks one file at a time, this package
parses the full tree once ( :class:`~repro.devtools.flow.program.Program` )
and runs three interprocedural passes over it:

- **RNG provenance** (``RPL101-102``): every Generator's provenance must
  reach :mod:`repro.stats.rng`; no wall-clock/builtin-hash value may
  reach a seed sink through any chain of calls.
- **Process-boundary escape** (``RPL110-113``): nothing that cannot
  survive pickling into a worker -- Generators, mmap-backed store
  handles, open files, ``MetricsRegistry`` -- may be reachable from a
  ``ProcessPoolExecutor.submit``/``map`` payload.
- **Purity contracts** (``RPL120-123``): kernels marked with the
  zero-cost :func:`pure` decorator are statically held to
  "deterministic, side-effect-free modulo explicitly-passed Generator
  arguments".

Findings reuse the lint engine's :class:`~repro.devtools.lint.findings.
Finding` model and ``# repro: noqa=RPL1xx -- reason`` suppressions, plus
a committed-baseline mode for gating in CI.  Only :func:`pure` /
:func:`is_pure` are imported eagerly -- hot modules decorate kernels
without paying for any analyzer import.
"""

from __future__ import annotations

from repro.devtools.flow.contracts import is_pure, pure

#: ``add_flow_parser`` / ``analyze_paths`` / ``run_flow`` / ``main`` are
#: importable too, loaded lazily through ``__getattr__`` below.
__all__ = [
    "is_pure",
    "pure",
]


def __getattr__(name):
    # Lazy re-exports: importing `pure` from a hot kernel module must not
    # drag the whole analyzer (and its CLI) along.
    if name in ("add_flow_parser", "analyze_paths", "main", "run_flow"):
        from repro.devtools.flow import cli

        return getattr(cli, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
