"""Committed-baseline mode for the flow analyzer.

A baseline is a checked-in JSON inventory of known findings.  CI runs
the analyzer against it and fails only on findings *not* in the
inventory, so a new cross-cutting rule can land before the last legacy
violation is fixed, without ratcheting backwards: each baseline entry
carries a count, and the gate consumes at most that many matches.

Findings match on ``(code, path, message)`` -- deliberately not line
numbers, so unrelated edits above a baselined finding do not break CI.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Counter as CounterType
from typing import Iterable, List, Tuple

from repro.devtools.lint.findings import Finding

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (finding.code, finding.path.replace("\\", "/"), finding.message)


def write_baseline(findings: Iterable[Finding], path: str) -> int:
    """Write the baseline inventory for a set of findings; returns count."""
    counts = Counter(_key(finding) for finding in findings)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"code": code, "path": file_path, "message": message, "count": count}
            for (code, file_path, message), count in sorted(counts.items())
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return sum(counts.values())


def load_baseline(path: str) -> CounterType[_Key]:
    """Load a baseline inventory into a matching budget."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    budget: CounterType[_Key] = Counter()
    for entry in payload.get("findings", []):
        key = (entry["code"], entry["path"], entry["message"])
        budget[key] += int(entry.get("count", 1))
    return budget


def apply_baseline(
    findings: Iterable[Finding], budget: CounterType[_Key]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, number baselined-away)."""
    remaining = Counter(budget)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in sorted(findings, key=Finding.sort_key):
        key = _key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
