"""RNG provenance pass: where seeds and Generators really come from.

Generalizes the per-file RPL003/RPL010 rules across module boundaries
with two checks:

- ``RPL101`` -- any modern numpy RNG constructor (``default_rng``,
  ``Generator``, ``SeedSequence``, bit generators) called outside
  :mod:`repro.stats.rng`.  The per-file rules only catch this inside
  seed-taking functions (RPL003) or loops (RPL004); a helper module
  that launders an unseeded Generator through a plain function passes
  them all.  Whole-program, the policy is simply: Generators are *born*
  in one module, everywhere else receives them.
- ``RPL102`` -- a wall-clock or builtin-``hash`` value that reaches a
  seed sink (an argument to the central coercers or numpy's seeding
  constructors, a ``seed=`` keyword, or a ``*seed*`` assignment)
  **through any number of function calls**.  Taint is tracked through
  assignments, arithmetic, tuple packing, returns, and parameter
  passing via per-function summaries iterated to a fixpoint.

The lattice is tiny by design: a value is tainted by ``{clock}``,
``{hash}``, both, or neither, plus the set of parameters whose taint
would flow into it.  Everything unresolvable is untainted -- precision
over recall, so the tree can be held at zero findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.rules import (
    _CLOCK_CALLS,
    _MODERN_NUMPY_RANDOM,
    _SEED_COERCERS,
    RNG_HELPER_MODULE_SUFFIXES,
    _path_matches,
)
from repro.devtools.flow.program import (
    FunctionInfo,
    Program,
    walk_function_body,
)

TAINT_CLOCK = "wall clock"
TAINT_HASH = "builtin hash()"

#: Builtins that pass taint straight through their arguments.
_WRAPPER_CALLS = frozenset(
    {"int", "float", "str", "abs", "round", "min", "max", "sum", "pow", "divmod"}
)

#: Seed sinks that are themselves external constructors.
_NUMPY_SEED_SINKS = frozenset(
    {"numpy.random.default_rng", "numpy.random.SeedSequence"}
)

#: Fixpoint round cap; summaries converge in O(call-graph depth) rounds.
_MAX_ROUNDS = 20

Taint = Tuple[Set[str], Set[str]]  # (taint kinds, contributing params)


def _empty() -> Taint:
    return (set(), set())


@dataclass
class _Summary:
    """What a function does with taint, seen from a call site."""

    returns_taints: Set[str] = field(default_factory=set)
    forward_params: Set[str] = field(default_factory=set)
    sink_params: Set[str] = field(default_factory=set)

    def snapshot(self) -> Tuple[frozenset, frozenset, frozenset]:
        return (
            frozenset(self.returns_taints),
            frozenset(self.forward_params),
            frozenset(self.sink_params),
        )


class ProvenancePass:
    """Run both provenance checks over a loaded :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries: Dict[str, _Summary] = {
            qualname: _Summary() for qualname in program.functions
        }
        self._env_cache: Dict[str, Dict[str, Taint]] = {}

    # -- entry point -----------------------------------------------------

    def run(self) -> List[Finding]:
        findings = self._check_construction_sites()
        self._solve_summaries()
        for info in self.program.functions.values():
            findings.extend(self._report_sinks(info))
        return findings

    # -- RPL101: construction sites -------------------------------------

    def _check_construction_sites(self) -> List[Finding]:
        findings: List[Finding] = []
        for module in self.program.modules.values():
            if _path_matches(module.path, RNG_HELPER_MODULE_SUFFIXES):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = self.program.resolve(module, node.func)
                if (
                    dotted is not None
                    and dotted.startswith("numpy.random.")
                    and dotted.rsplit(".", 1)[-1] in _MODERN_NUMPY_RANDOM
                ):
                    short = dotted.replace("numpy", "np")
                    findings.append(
                        Finding(
                            code="RPL101",
                            message=(
                                f"{short} constructed outside repro.stats.rng; "
                                "every Generator's provenance must reach "
                                "make_rng/make_seed_sequence so streams stay "
                                "auditable whole-program"
                            ),
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
        return findings

    # -- taint machinery -------------------------------------------------

    def _expr_taint(self, info: FunctionInfo, node: ast.AST, env) -> Taint:
        if isinstance(node, ast.Name):
            if node.id in env:
                taints, params = env[node.id]
                return (set(taints), set(params))
            if node.id in info.param_names:
                return (set(), {node.id})
            return _empty()
        if isinstance(node, ast.Call):
            return self._call_taint(info, node, env)
        if isinstance(node, (ast.BinOp,)):
            return self._union(info, [node.left, node.right], env)
        if isinstance(node, ast.UnaryOp):
            return self._expr_taint(info, node.operand, env)
        if isinstance(node, ast.BoolOp):
            return self._union(info, node.values, env)
        if isinstance(node, ast.IfExp):
            return self._union(info, [node.body, node.orelse], env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._union(info, node.elts, env)
        if isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
            return self._expr_taint(info, node.value, env)
        if isinstance(node, ast.NamedExpr):
            return self._expr_taint(info, node.value, env)
        return _empty()

    def _union(self, info: FunctionInfo, nodes: Sequence[ast.AST], env) -> Taint:
        taints: Set[str] = set()
        params: Set[str] = set()
        for node in nodes:
            sub_taints, sub_params = self._expr_taint(info, node, env)
            taints |= sub_taints
            params |= sub_params
        return (taints, params)

    def _call_taint(self, info: FunctionInfo, node: ast.Call, env) -> Taint:
        dotted = self.program.resolve(info.module, node.func)
        if dotted in _CLOCK_CALLS:
            return ({TAINT_CLOCK}, set())
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and node.func.id not in info.module.imported_names
        ):
            return ({TAINT_HASH}, set())
        if dotted in _WRAPPER_CALLS:
            operands = list(node.args) + [kw.value for kw in node.keywords]
            return self._union(info, operands, env)
        callee = self.program.resolve_callee(info.module, node, info)
        if callee is not None and callee in self.summaries:
            summary = self.summaries[callee]
            taints = set(summary.returns_taints)
            params: Set[str] = set()
            if summary.forward_params:
                callee_info = self.program.functions[callee]
                bound = self.program.parameters_bound(callee_info, node)
                for param in sorted(summary.forward_params):
                    for arg in bound.get(param, []):
                        arg_taints, arg_params = self._expr_taint(info, arg, env)
                        taints |= arg_taints
                        params |= arg_params
            return (taints, params)
        return _empty()

    def _local_env(self, info: FunctionInfo) -> Dict[str, Taint]:
        """Name -> taint for one function's locals (weak/union updates)."""
        cached = self._env_cache.get(info.qualname)
        if cached is not None:
            return cached
        statements = sorted(
            (
                node
                for node in walk_function_body(info.node)
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                and node.value is not None
            ),
            key=lambda node: (node.lineno, node.col_offset),
        )
        env: Dict[str, Taint] = {}
        # Two ordered rounds pick up loop-carried taint.
        for _ in range(2):
            for stmt in statements:
                taints, params = self._expr_taint(info, stmt.value, env)
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            old = env.get(name.id, _empty())
                            env[name.id] = (old[0] | taints, old[1] | params)
        self._env_cache[info.qualname] = env
        return env

    # -- summaries -------------------------------------------------------

    def _solve_summaries(self) -> None:
        for _ in range(_MAX_ROUNDS):
            before = {
                qualname: summary.snapshot()
                for qualname, summary in self.summaries.items()
            }
            self._env_cache.clear()
            for qualname, info in self.program.functions.items():
                self._update_summary(qualname, info)
            after = {
                qualname: summary.snapshot()
                for qualname, summary in self.summaries.items()
            }
            if after == before:
                break

    def _update_summary(self, qualname: str, info: FunctionInfo) -> None:
        summary = self.summaries[qualname]
        env = self._local_env(info)
        for value in info.return_expressions():
            taints, params = self._expr_taint(info, value, env)
            summary.returns_taints |= taints
            summary.forward_params |= params & info.param_names
        for node, _description in self._sink_arguments(info):
            taints, params = self._expr_taint(info, node, env)
            summary.sink_params |= params & info.param_names

    # -- sinks -----------------------------------------------------------

    def _sink_arguments(self, info: FunctionInfo):
        """Yield ``(expression, sink description)`` for every seed sink."""
        for node in walk_function_body(info.node):
            if isinstance(node, ast.Call):
                dotted = self.program.resolve(info.module, node.func) or ""
                callee = self.program.resolve_callee(info.module, node, info)
                is_coercer = (
                    dotted.rsplit(".", 1)[-1] in _SEED_COERCERS
                    or dotted in _NUMPY_SEED_SINKS
                )
                if is_coercer:
                    short = dotted.rsplit(".", 1)[-1]
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        yield arg, f"{short}(...)"
                    continue
                if callee is not None and callee in self.summaries:
                    sink_params = self.summaries[callee].sink_params
                    if sink_params:
                        callee_info = self.program.functions[callee]
                        bound = self.program.parameters_bound(callee_info, node)
                        for param in sorted(sink_params):
                            for arg in bound.get(param, []):
                                yield arg, f"{callee_info.qualname}({param}=...)"
                for keyword in node.keywords:
                    if keyword.arg is not None and "seed" in keyword.arg.lower():
                        yield keyword.value, f"keyword {keyword.arg}="
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and "seed" in target.id.lower()
                        and node.value is not None
                    ):
                        yield node.value, f"assignment to {target.id!r}"

    def _report_sinks(self, info: FunctionInfo) -> List[Finding]:
        findings: List[Finding] = []
        env = self._local_env(info)
        seen: Set[Tuple[int, str]] = set()
        for node, description in self._sink_arguments(info):
            taints, _params = self._expr_taint(info, node, env)
            for taint in sorted(taints):
                key = (id(node), taint)
                if key in seen:
                    continue
                seen.add(key)
                hint = (
                    "repro.stats.rng.stable_hash"
                    if taint == TAINT_HASH
                    else "an explicit SeedLike argument"
                )
                findings.append(
                    Finding(
                        code="RPL102",
                        message=(
                            f"value derived from {taint} reaches seed sink "
                            f"{description} in {info.qualname}; runs become "
                            f"unreproducible -- use {hint} instead"
                        ),
                        path=info.module.path,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
        return findings


def run_provenance(program: Program) -> List[Finding]:
    """Convenience wrapper used by the CLI."""
    return ProvenancePass(program).run()
