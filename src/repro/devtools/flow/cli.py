"""``repro flow`` runner: whole-program analysis, baseline, reporting.

Mirrors the lint CLI's contract -- exit 0 clean, 1 findings, 2 usage
errors; ``--format json`` for machines -- and adds what a whole-program
gate needs: ``--format sarif`` (``--sarif`` for short) for GitHub code
scanning, and a committed-baseline mode (``--baseline`` /
``--write-baseline``) so a new cross-cutting rule can land before every
legacy violation is fixed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devtools.lint.engine import _apply_noqa
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.sarif import render_sarif
from repro.devtools.flow.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.flow.escape import run_escape
from repro.devtools.flow.program import Program
from repro.devtools.flow.provenance import run_provenance
from repro.devtools.flow.purity import run_purity

#: Rule metadata for ``--list-rules`` and SARIF; the passes themselves
#: construct findings directly, so this table is the single registry.
FLOW_RULES: Tuple[Dict[str, str], ...] = (
    {
        "code": "RPL100",
        "name": "flow-parse-error",
        "summary": "file could not be parsed by the whole-program analyzer",
    },
    {
        "code": "RPL101",
        "name": "unsanctioned-rng-construction",
        "summary": (
            "modern numpy RNG constructors (default_rng, Generator, "
            "SeedSequence, bit generators) called outside repro.stats.rng; "
            "Generator provenance must reach the central coercers"
        ),
    },
    {
        "code": "RPL102",
        "name": "nondeterministic-seed-flow",
        "summary": (
            "wall-clock or builtin-hash value reaches a seed sink through "
            "any chain of assignments, returns, and calls"
        ),
    },
    {
        "code": "RPL110",
        "name": "generator-escapes-to-worker",
        "summary": (
            "np.random.Generator reachable from a process-pool dispatch "
            "payload; pickling duplicates the stream in the worker"
        ),
    },
    {
        "code": "RPL111",
        "name": "mmap-escapes-to-worker",
        "summary": (
            "mmap-backed store handle or array reachable from a "
            "process-pool dispatch payload; mappings cannot cross processes"
        ),
    },
    {
        "code": "RPL112",
        "name": "file-handle-escapes-to-worker",
        "summary": (
            "open file handle reachable from a process-pool dispatch "
            "payload; pass the path and open in the worker"
        ),
    },
    {
        "code": "RPL113",
        "name": "metrics-registry-escapes-to-worker",
        "summary": (
            "MetricsRegistry reachable from a process-pool dispatch "
            "payload; workers keep private registries merged after join"
        ),
    },
    {
        "code": "RPL120",
        "name": "pure-kernel-writes-shared-state",
        "summary": (
            "@pure kernel writes globals/closures/self/arguments or "
            "through values it does not own"
        ),
    },
    {
        "code": "RPL121",
        "name": "pure-kernel-does-io",
        "summary": "@pure kernel performs I/O",
    },
    {
        "code": "RPL122",
        "name": "pure-kernel-reads-clock",
        "summary": "@pure kernel reads the wall clock",
    },
    {
        "code": "RPL123",
        "name": "pure-kernel-unverified-callee",
        "summary": (
            "@pure kernel calls something the analyzer cannot verify; "
            "callees must be @pure or allowlisted numpy/builtin ops"
        ),
    },
)

_FLOW_CODES = frozenset(rule["code"] for rule in FLOW_RULES)


def analyze_paths(paths: Sequence[str]) -> Tuple[List[Finding], int]:
    """Run all three passes over a tree; returns (findings, modules)."""
    program = Program.load(paths)
    findings: List[Finding] = list(program.errors)
    findings.extend(run_provenance(program))
    findings.extend(run_escape(program))
    findings.extend(run_purity(program))
    kept: List[Finding] = []
    noqa_by_path = {
        module.path: module.noqa for module in program.modules.values()
    }
    for finding in findings:
        noqa = noqa_by_path.get(finding.path)
        if noqa:
            if _apply_noqa([finding], noqa):
                kept.append(finding)
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept, len(program.modules) + len(program.errors)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Add the flow arguments to a parser (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json", "sarif"],
        help="output format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        action="store_const",
        const="sarif",
        dest="output_format",
        help="shorthand for --format sarif",
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated codes to enable"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated codes to disable"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="committed baseline JSON; matching findings do not fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every flow rule code with its summary and exit",
    )
    parser.set_defaults(handler=run_flow)


def add_flow_parser(subparsers) -> None:
    """Register the ``flow`` subcommand on the top-level ``repro`` CLI."""
    parser = subparsers.add_parser(
        "flow",
        help="run the whole-program dataflow analyzer (RPL1xx rules)",
        description=(
            "Interprocedural static analysis over the full tree: RNG "
            "provenance, process-boundary escape, and @pure kernel "
            "contracts. Suppress one line with "
            "`# repro: noqa=RPL1xx -- reason`."
        ),
    )
    configure_parser(parser)


def _parse_code_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [part.strip() for part in raw.split(",") if part.strip()]
    unknown = sorted(set(codes) - _FLOW_CODES)
    if unknown:
        raise ValueError(f"unknown flow rule codes: {', '.join(unknown)}")
    return codes


def _list_rules(output_format: str) -> int:
    if output_format == "json":
        print(json.dumps(list(FLOW_RULES), indent=2))
    else:
        for rule in FLOW_RULES:
            print(f"{rule['code']} [{rule['name']}] {rule['summary']}")
    return 0


def run_flow(args) -> int:
    """Handler behind ``repro flow``."""
    if args.list_rules:
        return _list_rules(args.output_format)
    try:
        selected = _parse_code_list(args.select)
        ignored = _parse_code_list(args.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    missing = [raw for raw in args.paths if not Path(raw).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    findings, modules_checked = analyze_paths(args.paths)
    if selected is not None:
        findings = [f for f in findings if f.code in selected]
    if ignored is not None:
        findings = [f for f in findings if f.code not in ignored]

    if args.write_baseline is not None:
        count = write_baseline(findings, args.write_baseline)
        print(
            f"repro flow: wrote baseline with {count} findings to "
            f"{args.write_baseline}"
        )
        return 0

    baselined = 0
    if args.baseline is not None:
        try:
            budget = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"error: cannot load baseline: {error}", file=sys.stderr)
            return 2
        findings, baselined = apply_baseline(findings, budget)

    if args.output_format == "sarif":
        print(render_sarif(findings, FLOW_RULES, tool_name="repro-flow"))
    elif args.output_format == "json":
        print(
            json.dumps(
                {
                    "modules_checked": modules_checked,
                    "baselined": baselined,
                    "findings": [finding.to_dict() for finding in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        suffix = f" ({baselined} baselined)" if baselined else ""
        print(
            f"repro flow: {len(findings)} new {noun}{suffix} in "
            f"{modules_checked} modules"
        )
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.devtools.flow``)."""
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description=(
            "whole-program dataflow analyzer: RNG provenance, "
            "process-boundary escape, purity contracts (RPL1xx rules)"
        ),
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    return args.handler(args)
