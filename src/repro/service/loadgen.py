"""Standalone load generation against a simulated store's web API.

Where :class:`~repro.service.service.EcosystemService` runs the full
measurement pipeline (discovery, APK archiving, commits, analytics),
the load generator answers a narrower operational question: *what does
this store's admission path do under N clients at R requests/second
each?*  It hammers the statistics-page endpoint round-robin over the
listing, through the same proxy/retry/breaker machinery as real
clients, and reports what the traffic plane saw -- rate-limit hits,
transient faults, breaker skips, end-to-end latency.  Nothing is
written to a database.

Like everything in :mod:`repro.service`, it runs on the virtual clock:
a multi-hour load test completes in milliseconds and is exactly
reproducible from its seed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional

from repro.crawler.proxies import ProxyPool
from repro.crawler.requesting import CrawlError
from repro.crawler.scheduler import _GEO_FENCED_STORES
from repro.crawler.webapi import StoreWebApi
from repro.marketplace.generator import build_store
from repro.marketplace.profiles import StoreProfile
from repro.obs.metrics import get_registry
from repro.resilience.errors import WorkerCrashed
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.service.client import AsyncCrawlClient
from repro.service.virtualtime import run_virtual
from repro.stats.rng import SeedLike, derive_seed, make_rng

__all__ = ["LoadGenerator", "LoadReport"]


@dataclass(frozen=True)
class LoadReport:
    """The outcome of one bounded load-generation run."""

    store_name: str
    n_clients: int
    requests_per_client: int
    requests_ok: int
    requests_failed: int
    worker_crashes: int
    virtual_seconds: float

    @property
    def requests_attempted(self) -> int:
        """Total requests the fleet tried to complete."""
        return self.requests_ok + self.requests_failed

    @property
    def throughput_rps(self) -> float:
        """Completed requests per simulated second."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.requests_ok / self.virtual_seconds

    def describe(self) -> str:
        """One summary line for the CLI."""
        return (
            f"[{self.store_name}] {self.n_clients} client(s) x "
            f"{self.requests_per_client} requests: {self.requests_ok} ok, "
            f"{self.requests_failed} failed, {self.worker_crashes} worker "
            f"crash(es) in {self.virtual_seconds:.1f} simulated seconds "
            f"({self.throughput_rps:.2f} req/s)"
        )


class LoadGenerator:
    """Drive N synthetic crawler clients against one store's API.

    Parameters
    ----------
    profile:
        Store to generate and warm up (its ``warmup_days`` run first so
        the listing has realistic depth and statistics).
    seed:
        Master seed, threaded exactly like the service's: ``store`` and
        ``proxies`` substreams plus per-client retry jitter.
    n_clients:
        Concurrent synthetic clients.
    requests_per_client:
        Statistics-page fetches each client performs before stopping.
    requests_per_second:
        Per-client self-pacing.
    fault_plan:
        Optional chaos schedule injected into the store and clients.
    """

    def __init__(
        self,
        profile: StoreProfile,
        seed: SeedLike = None,
        n_clients: int = 4,
        requests_per_client: int = 100,
        requests_per_second: float = 8.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1")
        base_seed = int(make_rng(seed).integers(0, 2**62))
        self.profile = profile
        self.generated = build_store(profile, seed=derive_seed(base_seed, "store"))
        self.store = self.generated.store
        self.proxy_pool = ProxyPool.planetlab_like(
            n_proxies=100, seed=derive_seed(base_seed, "proxies")
        )
        self.fault_injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        allowed = ("cn",) if profile.name in _GEO_FENCED_STORES else None
        self.api = StoreWebApi(
            self.store,
            allowed_countries=allowed,
            fault_injector=self.fault_injector,
        )
        self.requests_per_client = requests_per_client
        traffic = get_registry()
        self.clients = [
            AsyncCrawlClient(
                name=f"loadgen-{index}",
                api=self.api,
                proxy_pool=self.proxy_pool,
                requests_per_second=requests_per_second,
                fault_injector=self.fault_injector,
                seed=derive_seed(base_seed, "crawler-retry", index),
                metrics=traffic,
            )
            for index in range(n_clients)
        ]

    def run(self) -> LoadReport:
        """Run the bounded load test on a fresh virtual clock."""
        return run_virtual(self.generate())

    async def generate(self) -> LoadReport:
        """The load loop itself, awaitable on any event loop."""
        loop = asyncio.get_running_loop()
        self.store.advance_days(self.profile.warmup_days)
        listed = self.store.listed_app_ids()
        if not listed:
            raise RuntimeError(
                f"store {self.store.name!r} has no listed apps to load-test"
            )
        started = loop.time()
        outcomes: List[int] = [0, 0, 0]
        tasks = [
            loop.create_task(
                self._client_loop(client, offset, listed, outcomes),
                name=f"{client.name}/loop",
            )
            for offset, client in enumerate(self.clients)
        ]
        try:
            await asyncio.gather(*tasks)
        except BaseException:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        return LoadReport(
            store_name=self.store.name,
            n_clients=len(self.clients),
            requests_per_client=self.requests_per_client,
            requests_ok=outcomes[0],
            requests_failed=outcomes[1],
            worker_crashes=outcomes[2],
            virtual_seconds=loop.time() - started,
        )

    async def _client_loop(
        self,
        client: AsyncCrawlClient,
        offset: int,
        listed: List[int],
        outcomes: List[int],
    ) -> None:
        """One client's request budget, round-robin over the listing.

        Clients start at staggered listing offsets so the fleet spreads
        over the catalogue instead of convoying app by app.
        """
        stride = max(1, len(listed) // max(1, len(self.clients)))
        position = (offset * stride) % len(listed)
        for _ in range(self.requests_per_client):
            app_id = listed[position]
            position = (position + 1) % len(listed)
            try:
                await client.request(self.api.app_page, app_id)
            except WorkerCrashed:
                # A scheduled crash kills the worker process mid-request;
                # the operator loop restarts it and the budget goes on.
                outcomes[2] += 1
                outcomes[1] += 1
            except CrawlError:
                outcomes[1] += 1
            else:
                outcomes[0] += 1
