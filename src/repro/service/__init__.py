"""The always-on ecosystem service (ROADMAP item 3).

A long-running simulated appstore under live concurrent crawl load:
daily marketplace ticks on a deterministic virtual clock, N async
crawler clients reusing the batch stack's proxies / rate limits /
breakers / fault plans, snapshots committed into the columnar store as
they land, and streaming analytics updated per snapshot.  Bounded runs
reproduce the batch campaign's dataset fingerprint byte for byte.
"""

from repro.service.client import AppObservation, AsyncCrawlClient
from repro.service.loadgen import LoadGenerator, LoadReport
from repro.service.service import EcosystemService, ServiceReport
from repro.service.virtualtime import (
    TaskLeakError,
    VirtualClockEventLoop,
    VirtualTimeDeadlock,
    run_virtual,
)

__all__ = [
    "AppObservation",
    "AsyncCrawlClient",
    "EcosystemService",
    "LoadGenerator",
    "LoadReport",
    "ServiceReport",
    "TaskLeakError",
    "VirtualClockEventLoop",
    "VirtualTimeDeadlock",
    "run_virtual",
]
