"""A deterministic virtual-clock asyncio event loop.

The always-on service simulates months of store time; waiting those
months out on the wall clock would make soak tests (and the service
itself) unrunnable.  This module provides an event loop whose ``time()``
is *virtual*: whenever every task is blocked waiting on a timer, the
loop jumps the clock straight to the earliest deadline instead of
selecting on the OS.  ``await asyncio.sleep(3600)`` completes in
microseconds of wall time while still ordering tasks exactly as a real
hour would.

Two properties make this the right substrate for the test archetype:

- **Determinism.**  The program is single-threaded and performs no OS
  I/O, so the only scheduling inputs are the ready queue (FIFO) and the
  timer heap (ordered by deadline, ties by creation order) -- both pure
  functions of the program.  Two runs of the same seeded workload
  interleave identically, which is what lets the service promise
  byte-identical datasets and metrics.
- **Liveness checking.**  If every task is blocked and *no* timer is
  pending, a real loop would hang forever.  Here that state is
  detectable, and :class:`VirtualTimeDeadlock` turns a hung soak test
  into an immediate, debuggable failure.

:func:`run_virtual` is the entry point used by both ``repro serve`` and
the ``tests/service`` harness; it also fails loudly on leaked tasks
(:class:`TaskLeakError`), making "no task leaks" a checked invariant
rather than a hope.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any, Coroutine, List, Optional

__all__ = [
    "TaskLeakError",
    "VirtualClockEventLoop",
    "VirtualTimeDeadlock",
    "run_virtual",
]


class VirtualTimeDeadlock(RuntimeError):
    """Every task is blocked and no timer is pending: time cannot advance.

    On a wall-clock loop this state is an invisible hang; on the virtual
    loop it is raised synchronously out of ``run_until_complete`` so the
    offending await shows up in the traceback.
    """


class TaskLeakError(RuntimeError):
    """The driven coroutine finished but left other tasks running.

    Attributes
    ----------
    task_names:
        ``Task.get_name()`` of every task still pending when the main
        coroutine returned (they are cancelled before this is raised).
    """

    def __init__(self, task_names: List[str]) -> None:
        listed = ", ".join(sorted(task_names))
        super().__init__(
            f"{len(task_names)} task(s) still pending after the main "
            f"coroutine finished: {listed}"
        )
        self.task_names = sorted(task_names)


class _VirtualSelector:
    """Selector shim: never blocks; converts select timeouts into time jumps.

    The loop computes ``timeout`` as the delta to its earliest timer and
    asks the selector to wait that long.  With no real I/O to wait for,
    waiting is pointless -- so the shim advances the loop's virtual clock
    by the timeout and returns immediately, which makes the timer due on
    the next iteration.  A ``None`` timeout means the loop has neither
    ready callbacks nor timers: that is a deadlock, not a wait.
    """

    def __init__(self) -> None:
        self._real = selectors.DefaultSelector()
        self.loop: Optional["VirtualClockEventLoop"] = None

    # The event loop registers its self-pipe (and nothing else) with the
    # selector; those registrations must be serviced for the loop's own
    # bookkeeping even though the pipe never becomes ready in a
    # single-threaded virtual-time run.
    def register(self, fileobj, events, data=None):
        return self._real.register(fileobj, events, data)

    def unregister(self, fileobj):
        return self._real.unregister(fileobj)

    def modify(self, fileobj, events, data=None):
        return self._real.modify(fileobj, events, data)

    def get_map(self):
        return self._real.get_map()

    def get_key(self, fileobj):
        return self._real.get_key(fileobj)

    def close(self) -> None:
        self._real.close()

    def select(self, timeout: Optional[float] = None):
        # A zero-timeout poll keeps signal wakeups (self-pipe writes)
        # working should they ever occur; in the deterministic
        # single-threaded case this returns [] instantly.
        events = self._real.select(0)
        if events:
            return events
        if timeout is None:
            raise VirtualTimeDeadlock(
                "all tasks are blocked and no timer is scheduled; "
                "virtual time cannot advance (deadlocked await chain?)"
            )
        if timeout > 0 and self.loop is not None:
            self.loop.advance(timeout)
        return []


class VirtualClockEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop running on virtual time.

    ``loop.time()`` starts at ``start`` and only moves when the loop
    would otherwise block: the would-be select timeout is added to the
    clock instead of being slept.  All of asyncio's timer-based
    machinery (``sleep``, ``wait_for``, timeouts on queues and events)
    works unchanged -- instantly, deterministically.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._virtual_now = float(start)
        selector = _VirtualSelector()
        super().__init__(selector)
        selector.loop = self

    def time(self) -> float:
        """The current virtual time, in seconds."""
        return self._virtual_now

    def advance(self, seconds: float) -> None:
        """Jump the virtual clock forward (used by the selector shim)."""
        if seconds < 0:
            raise ValueError("virtual time cannot move backwards")
        self._virtual_now += seconds


def run_virtual(
    main: Coroutine[Any, Any, Any],
    start: float = 0.0,
    check_leaks: bool = True,
) -> Any:
    """Run ``main`` to completion on a fresh virtual-clock loop.

    Parameters
    ----------
    main:
        The coroutine to drive.  Timers inside it resolve on virtual
        time; the call returns as fast as the CPU allows regardless of
        how many simulated hours elapse.
    start:
        Initial value of ``loop.time()``.
    check_leaks:
        When True (the default, and what the service test harness
        relies on), any task still pending after ``main`` returns is
        cancelled and reported via :class:`TaskLeakError`.  The service
        must shut its workers down; tests get leak detection for free.

    Returns the coroutine's result.  The loop is always closed before
    returning or raising.
    """
    loop = VirtualClockEventLoop(start=start)
    try:
        asyncio.set_event_loop(loop)
        try:
            result = loop.run_until_complete(main)
        except BaseException:
            # A deadlock (or any escaped exception) leaves tasks pending;
            # unwind them so nothing is destroyed while still running.
            stranded = [
                task for task in asyncio.all_tasks(loop) if not task.done()
            ]
            for task in stranded:
                task.cancel()
            if stranded:
                try:
                    loop.run_until_complete(
                        asyncio.gather(*stranded, return_exceptions=True)
                    )
                except VirtualTimeDeadlock:
                    pass
            raise
        leftover = [task for task in asyncio.all_tasks(loop) if not task.done()]
        if leftover:
            for task in leftover:
                task.cancel()
            # Give the cancelled tasks one pass to unwind their frames so
            # no "task was destroyed but it is pending" warnings escape.
            loop.run_until_complete(
                asyncio.gather(*leftover, return_exceptions=True)
            )
            if check_leaks:
                raise TaskLeakError([task.get_name() for task in leftover])
        return result
    finally:
        asyncio.set_event_loop(None)
        loop.close()
