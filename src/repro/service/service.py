"""The always-on ecosystem service: a live store under concurrent crawl.

This is ROADMAP item 3: the batch campaign
(:func:`repro.crawler.scheduler.run_crawl_campaign`) promoted to a
long-running system.  One simulated marketplace advances daily ticks
while N concurrent :class:`~repro.service.client.AsyncCrawlClient`
workers -- each with its own pacer, retry jitter, and circuit breakers,
all sharing the proxy fleet and fault schedule -- hammer the
:class:`~repro.crawler.webapi.StoreWebApi` and land snapshots in the
columnar :class:`~repro.crawler.database.SnapshotDatabase`.  Streaming
analytics (:mod:`repro.analysis.streaming`) update as each snapshot
commits.

**The determinism contract.**  For the same seed and fault plan, a
bounded run exports a dataset fingerprint byte-identical to the batch
campaign -- for *any* client count.  Three design choices carry that:

1. seed threading matches the batch scheduler exactly (``store`` and
   ``proxies`` substreams; client ``i`` jitters from
   ``("crawler-retry", i)``, which can never influence data);
2. each daily tick is a barrier: the store holds still while workers
   crawl it, so every page reads the same regardless of who fetches it
   or when, and a crashed day can be re-run idempotently;
3. observations are committed *in listing order* after the day's fan-out
   completes, so the database write stream, the analytics stream, and
   the data-plane metrics are a pure function of (seed, days) -- never
   of client interleaving.

**Two metric planes.**  The service keeps a private *data-plane*
registry (commit counters, streaming-analytics gauges: K-invariant by
construction, exported via ``repro serve --emit-metrics``) separate
from the ambient *traffic-plane* registry (``crawler.*`` retry/fault
counters, request-latency histograms, worker restarts: deterministic
for a fixed (seed, clients) but necessarily K-dependent, exported via
``--emit-traffic``).  Mixing the planes would make the data sidecar
vary with ``--clients``, which the determinism suite forbids.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.streaming import SegmentDownloadShares, StreamingAnalytics
from repro.crawler.crawler import CrawlStats
from repro.crawler.database import ApkRecord, AppSnapshot, SnapshotDatabase
from repro.crawler.proxies import ProxyPool
from repro.crawler.scheduler import _GEO_FENCED_STORES
from repro.crawler.webapi import StoreWebApi
from repro.marketplace.generator import GeneratedStore, build_store
from repro.marketplace.profiles import StoreProfile
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.resilience.errors import ResilienceError, WorkerCrashed
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.service.client import AppObservation, AsyncCrawlClient
from repro.service.virtualtime import run_virtual
from repro.stats.rng import SeedLike, derive_seed, make_rng

__all__ = ["EcosystemService", "ServiceReport"]


@dataclass
class ServiceReport:
    """What a bounded service run produced and went through."""

    store_name: str
    days_crawled: int
    first_crawl_day: int
    last_crawl_day: int
    n_clients: int
    snapshots_committed: int
    apks_archived: int
    comments_ingested: int
    worker_restarts: int
    fingerprint: str
    client_stats: Dict[str, CrawlStats] = field(default_factory=dict)

    def describe(self) -> str:
        """A one-paragraph run summary."""
        return (
            f"[{self.store_name}] served days "
            f"{self.first_crawl_day}..{self.last_crawl_day} to "
            f"{self.n_clients} client(s): {self.snapshots_committed} "
            f"snapshots, {self.apks_archived} APKs, "
            f"{self.comments_ingested} comments, "
            f"{self.worker_restarts} worker restart(s); "
            f"fingerprint {self.fingerprint[:16]}..."
        )


class EcosystemService:
    """A long-running simulated appstore under live concurrent crawl.

    Parameters
    ----------
    profile:
        The store's scale/behaviour profile; its ``warmup_days`` run
        unobserved before serving starts, exactly as in the batch
        campaign.
    seed:
        Master seed; store, proxies, and per-client retry jitter get
        derived substreams on the batch scheduler's threading contract.
    n_clients:
        Concurrent crawler clients per daily tick.
    fault_plan:
        Optional chaos schedule, shared (like the batch campaign's) by
        the web API and every client's request engine.
    fetch_comments:
        Whether clients collect comment pages.
    requests_per_second:
        Per-client self-pacing; total store pressure scales with
        ``n_clients``.
    retry_policy:
        Backoff/attempt budget shared by every client.  Long soaks under
        dense fault plans raise ``max_attempts`` so a Poisson cluster of
        transient faults cannot exhaust a single request's retries.
        Retries never touch the data plane, so this knob cannot change
        the fingerprint.
    max_worker_restarts:
        Worker crashes tolerated across the run before giving up.
    data_metrics:
        The K-invariant data-plane registry; a private one is created
        when omitted.  Traffic-plane metrics go to the registry that is
        ambient (:func:`~repro.obs.metrics.get_registry`) at
        construction time.
    """

    def __init__(
        self,
        profile: StoreProfile,
        seed: SeedLike = None,
        n_clients: int = 4,
        fault_plan: Optional[FaultPlan] = None,
        fetch_comments: bool = True,
        requests_per_second: float = 8.0,
        retry_policy: Optional[RetryPolicy] = None,
        max_worker_restarts: int = 5,
        data_metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be non-negative")
        base_seed = int(make_rng(seed).integers(0, 2**62))
        self.profile = profile
        self.generated: GeneratedStore = build_store(
            profile, seed=derive_seed(base_seed, "store")
        )
        self.store = self.generated.store
        self.database = SnapshotDatabase()
        self.proxy_pool = ProxyPool.planetlab_like(
            n_proxies=100, seed=derive_seed(base_seed, "proxies")
        )
        self.fault_injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        allowed = ("cn",) if profile.name in _GEO_FENCED_STORES else None
        self.api = StoreWebApi(
            self.store,
            allowed_countries=allowed,
            fault_injector=self.fault_injector,
        )
        self.fetch_comments = fetch_comments
        self.max_worker_restarts = max_worker_restarts
        self.analytics = StreamingAnalytics(self.store.name)
        # Per-persona-segment gauges: the store's segment download matrix
        # is simulator state (independent of client count and arrival
        # order), so these live in the K-invariant data plane too.
        self.segment_analytics: Optional[SegmentDownloadShares] = None
        if self.store.segments is not None:
            self.segment_analytics = SegmentDownloadShares(
                self.store.segments.names
            )
        self.data_metrics = (
            data_metrics if data_metrics is not None else MetricsRegistry()
        )
        self._traffic = get_registry()
        self.clients = [
            AsyncCrawlClient(
                name=f"client-{index}",
                api=self.api,
                proxy_pool=self.proxy_pool,
                requests_per_second=requests_per_second,
                retry_policy=retry_policy,
                fault_injector=self.fault_injector,
                seed=derive_seed(base_seed, "crawler-retry", index),
                metrics=self._traffic,
            )
            for index in range(n_clients)
        ]
        self.worker_restarts = 0
        self.peak_queue_depth = 0
        self._warmed_up = False
        self.first_crawl_day: Optional[int] = None
        self.last_crawl_day: Optional[int] = None

    @property
    def n_clients(self) -> int:
        """Number of concurrent crawler clients."""
        return len(self.clients)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self, days: Optional[int] = None) -> ServiceReport:
        """Run a bounded number of daily ticks on a fresh virtual clock.

        Defaults to the profile's ``crawl_days``.  Task leaks and
        deadlocks inside the service surface as errors, not hangs --
        that is the virtual loop's contract.
        """
        return run_virtual(self.serve(days=days))

    async def serve(self, days: Optional[int] = None) -> ServiceReport:
        """The service main loop, awaitable on any event loop."""
        days = self.profile.crawl_days if days is None else int(days)
        if days < 1:
            raise ValueError("days must be >= 1")
        if not self._warmed_up:
            # Warmup: the store lives unobserved, accumulating the
            # pre-crawl download history, exactly like the batch phase.
            self.store.advance_days(self.profile.warmup_days)
            self._warmed_up = True
            self.first_crawl_day = self.store.day
        for _ in range(days):
            await self.tick()
        return self.report()

    async def tick(self) -> int:
        """Advance one store day and serve its crawl; returns apps seen.

        The daily barrier: the store advances, then holds still while
        the client fleet crawls the closed day's statistics.  A crashed
        worker aborts the whole fan-out and the day is re-run (writes
        are deferred to commit time, so a re-run is invisible in the
        data).
        """
        if not self._warmed_up:
            self.store.advance_days(self.profile.warmup_days)
            self._warmed_up = True
            self.first_crawl_day = self.store.day
        loop = asyncio.get_running_loop()
        self.store.advance_day()
        observed_day = self.store.day - 1
        while True:
            try:
                with self._traffic.span(
                    "service/crawl_day", clock=loop.time
                ):
                    observations = await self._crawl_day_once(observed_day)
                break
            except WorkerCrashed as crash:
                self.worker_restarts += 1
                self._traffic.counter("service.worker_restarts").add(1)
                if self.worker_restarts > self.max_worker_restarts:
                    raise ResilienceError(
                        f"crawl worker crashed {self.worker_restarts} times "
                        f"(limit {self.max_worker_restarts}); giving up on "
                        f"day {observed_day}"
                    ) from crash
        self._commit_day(observed_day, observations)
        self.last_crawl_day = observed_day
        data = self.data_metrics
        data.counter("service.days_crawled").add(1)
        data.gauge("service.store_day").set(float(self.store.day))
        data.gauge("service.apps_listed").set(
            float(len(self.store.listed_app_ids()))
        )
        self.analytics.export(data)
        if self.segment_analytics is not None:
            self.segment_analytics.observe_matrix(
                self.store.segment_download_counts()
            )
            self.segment_analytics.export(data)
        return len(observations)

    def report(self) -> ServiceReport:
        """Summarize everything served so far (fingerprint included)."""
        if self.first_crawl_day is None or self.last_crawl_day is None:
            raise RuntimeError("the service has not crawled any day yet")
        data = self.data_metrics
        return ServiceReport(
            store_name=self.store.name,
            days_crawled=int(data.counter("service.days_crawled").value),
            first_crawl_day=self.first_crawl_day,
            last_crawl_day=self.last_crawl_day,
            n_clients=self.n_clients,
            snapshots_committed=int(
                data.counter("service.snapshots_committed").value
            ),
            apks_archived=int(data.counter("service.apks_archived").value),
            comments_ingested=int(
                data.counter("service.comments_ingested").value
            ),
            worker_restarts=self.worker_restarts,
            fingerprint=self.database.fingerprint(),
            client_stats={
                client.name: client.stats for client in self.clients
            },
        )

    # ------------------------------------------------------------------
    # One day's fan-out
    # ------------------------------------------------------------------

    async def _crawl_day_once(
        self, observed_day: int
    ) -> List[Tuple[int, AppObservation]]:
        """Discover the day's listing and fan it out over the fleet.

        Returns ``(listing_index, observation)`` pairs in completion
        order; the commit step re-sorts by index.  Any worker failure
        cancels the surviving siblings before propagating, so a crashed
        day leaves no stray tasks behind.
        """
        loop = asyncio.get_running_loop()
        discoverer = self.clients[0]
        n_pages = await discoverer.request(self.api.n_pages)
        app_ids: List[int] = []
        for page in range(n_pages):
            app_ids.extend(await discoverer.request(self.api.list_page, page))

        # The APK-archive state each worker consults is pinned at the
        # start of the day, as in the batch crawler, so the fetch-once
        # decision is independent of intra-day commit order.
        known_apks = self.database.latest_apk_per_app(self.store.name)

        queue: "asyncio.Queue[Tuple[int, int]]" = asyncio.Queue()
        for pair in enumerate(app_ids):
            queue.put_nowait(pair)
        self.peak_queue_depth = max(self.peak_queue_depth, queue.qsize())

        results: List[Tuple[int, AppObservation]] = []
        tasks = [
            loop.create_task(
                self._worker(client, queue, observed_day, known_apks, results),
                name=f"{client.name}/day-{observed_day}",
            )
            for client in self.clients
        ]
        try:
            await asyncio.gather(*tasks)
        except BaseException:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        if not queue.empty():
            raise RuntimeError(
                "day fan-out finished with work still queued "
                f"({queue.qsize()} item(s)) -- worker accounting bug"
            )
        return results

    async def _worker(
        self,
        client: AsyncCrawlClient,
        queue: "asyncio.Queue[Tuple[int, int]]",
        observed_day: int,
        known_apks: Dict[int, ApkRecord],
        results: List[Tuple[int, AppObservation]],
    ) -> None:
        """Drain the day's work queue through one client."""
        while True:
            try:
                index, app_id = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            observation = await client.process_app(
                app_id,
                observed_day,
                known_apks,
                fetch_comments=self.fetch_comments,
            )
            results.append((index, observation))

    def _commit_day(
        self, observed_day: int, observations: List[Tuple[int, AppObservation]]
    ) -> None:
        """Land one completed day: database writes plus analytics.

        Commits run in listing order regardless of which client finished
        first, which keeps the write stream -- and everything derived
        from it -- identical across client counts.
        """
        data = self.data_metrics
        store_name = self.store.name
        for _, observation in sorted(observations, key=lambda pair: pair[0]):
            page = observation.page
            self.database.add_snapshot(
                AppSnapshot(
                    store=store_name,
                    day=observed_day,
                    app_id=page.app_id,
                    name=page.name,
                    category=page.category,
                    developer_id=page.developer_id,
                    price=page.price,
                    declares_ads=page.declares_ads,
                    total_downloads=page.statistics.total_downloads,
                    rating_count=page.statistics.rating_count,
                    average_rating=page.statistics.average_rating,
                    comment_count=page.statistics.comment_count,
                    version_name=page.statistics.version_name,
                )
            )
            data.counter("service.snapshots_committed").add(1)
            self.analytics.observe_snapshot(
                page.app_id, observed_day, page.statistics.total_downloads
            )
            if observation.apk is not None:
                apk = observation.apk
                stored = self.database.add_apk(
                    ApkRecord(
                        store=store_name,
                        app_id=apk.app_id,
                        version_name=apk.version_name,
                        package_name=apk.package_name,
                        size_mb=apk.size_mb,
                        embedded_libraries=apk.embedded_libraries,
                    )
                )
                if stored:
                    data.counter("service.apks_archived").add(1)
            if observation.comments is not None:
                self.database.add_comments(store_name, observation.comments)
                data.counter("service.comments_ingested").add(
                    len(observation.comments)
                )
