"""Async crawler clients: the service's live load generators.

Each client wraps one :class:`~repro.crawler.requesting.RequestEngine`
-- its own pacer, retry RNG, and per-proxy circuit breakers, exactly
like one batch :class:`~repro.crawler.crawler.StoreCrawler` -- and
drives the engine's sans-IO step generators with ``asyncio.sleep`` on
the event loop's clock.  On the virtual-clock loop
(:mod:`repro.service.virtualtime`) those sleeps are instantaneous and
deterministic; on a real loop they would pace actual wall time.  The
engine neither knows nor cares.

Clients fetch; they do not write.  Every observation is returned to the
:class:`~repro.service.service.EcosystemService`, which commits them in
listing order so the database and analytics stream are independent of
how many clients raced to produce them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crawler.crawler import CrawlStats
from repro.crawler.database import ApkRecord
from repro.crawler.proxies import ProxyPool
from repro.crawler.requesting import RequestEngine
from repro.crawler.webapi import ApkDownload, AppPage, StoreWebApi
from repro.marketplace.entities import Comment
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.stats.rng import SeedLike, make_rng

__all__ = ["AppObservation", "AsyncCrawlClient", "REQUEST_LATENCY_METRIC"]

#: Histogram of end-to-end request latency in *simulated* seconds
#: (retries and backoff included), recorded per completed request.
REQUEST_LATENCY_METRIC = "service.request_seconds"


@dataclass(frozen=True)
class AppObservation:
    """Everything one client fetched about one app on one day.

    ``apk`` is None when the version was already archived; ``comments``
    is None when comment collection was off or the app had none.
    """

    page: AppPage
    apk: Optional[ApkDownload]
    comments: Optional[List[Comment]]


class AsyncCrawlClient:
    """One concurrent crawler identity hammering a store's web API.

    Parameters mirror the batch crawler's: the client builds its own
    :class:`RequestEngine` so its pacing, breaker state, and retry
    jitter are independent of its siblings -- K clients behave like K
    separate crawler processes sharing a proxy fleet, which is the
    paper's actual collection setup.
    """

    def __init__(
        self,
        name: str,
        api: StoreWebApi,
        proxy_pool: ProxyPool,
        requests_per_second: float = 8.0,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_factory=None,
        fault_injector: Optional[FaultInjector] = None,
        seed: SeedLike = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name
        self.stats = CrawlStats()
        self._api = api
        self._metrics = metrics if metrics is not None else get_registry()
        self._engine = RequestEngine(
            api=api,
            proxy_pool=proxy_pool,
            requests_per_second=requests_per_second,
            retry_policy=(
                retry_policy if retry_policy is not None else RetryPolicy()
            ),
            breaker_factory=(
                breaker_factory if breaker_factory is not None else CircuitBreaker
            ),
            fault_injector=fault_injector,
            retry_rng=make_rng(seed),
            stats=self.stats,
            metrics=self._metrics,
        )

    @property
    def engine(self) -> RequestEngine:
        """The sans-IO request pipeline this client drives."""
        return self._engine

    async def request(self, endpoint, *args):
        """Issue one request, sleeping whenever the engine asks.

        Each attempt yields at least once (the pacer wait, even when
        zero), so a chain of instantly-admitted requests can never
        starve sibling clients of the event loop.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        steps = self._engine.request_steps(endpoint, args, start)
        try:
            delay = next(steps)
            while True:
                await asyncio.sleep(delay)
                delay = steps.send(loop.time())
        except StopIteration as done:
            self._metrics.histogram(REQUEST_LATENCY_METRIC).observe(
                loop.time() - start
            )
            return done.value

    async def process_app(
        self,
        app_id: int,
        observed_day: int,
        known_apks: Dict[int, ApkRecord],
        fetch_comments: bool = True,
    ) -> AppObservation:
        """Fetch one app's page, new APK version, and comments.

        The request sequence per app is the batch crawler's: statistics
        page, then the APK only when ``known_apks`` (the archive state
        at the start of the day) lacks this version, then comments only
        when the page advertises any.  ``observed_day`` is not used for
        fetching -- the store serves its current day -- but is part of
        the contract: callers must hold the store on that day while
        workers run.
        """
        page = await self.request(self._api.app_page, app_id)
        self.stats.apps_crawled += 1

        apk: Optional[ApkDownload] = None
        known = known_apks.get(app_id)
        if known is None or known.version_name != page.statistics.version_name:
            apk = await self.request(self._api.download_apk, app_id)

        comments: Optional[List[Comment]] = None
        if fetch_comments and page.statistics.comment_count > 0:
            comments = await self.request(self._api.app_comments, app_id)
        return AppObservation(page=page, apk=apk, comments=comments)
