"""Post-install app usage model.

Generates, per install, the number of active days and daily sessions a
user spends in an app.  The shape follows well-known mobile engagement
regularities: retention decays geometrically day over day, and session
counts are heavier for some app categories (games) than others
(wallpapers are opened once and forgotten).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.stats.rng import SeedLike, make_rng

# Relative engagement per category: expected sessions multiplier.  Values
# chosen so the category ordering mirrors the intuition the paper uses in
# Section 6.3 ("for many apps, where users are expected to spend some
# time using the application, the ad-based revenue strategy seems more
# promising").
_CATEGORY_ENGAGEMENT: Dict[str, float] = {
    "fun/games": 2.0,
    "communications": 2.5,
    "social": 2.2,
    "music": 1.8,
    "entertainment": 1.5,
    "news": 1.6,
    "utilities": 0.8,
    "productivity": 1.0,
    "e-books": 1.2,
    "wallpapers": 0.1,
    "developer": 0.4,
}
_DEFAULT_ENGAGEMENT = 1.0


@dataclass(frozen=True)
class UsageModel:
    """Per-install usage generator.

    Parameters
    ----------
    daily_retention:
        Probability a user who was active on day ``t`` returns on day
        ``t + 1`` (geometric retention).
    sessions_per_active_day:
        Mean sessions on an active day, before the category multiplier.
    max_days:
        Hard cap on simulated active days per install.
    """

    daily_retention: float = 0.7
    sessions_per_active_day: float = 2.0
    max_days: int = 90

    def __post_init__(self) -> None:
        if not 0.0 <= self.daily_retention <= 1.0:
            raise ValueError("daily_retention must be in [0, 1]")
        if self.sessions_per_active_day <= 0:
            raise ValueError("sessions_per_active_day must be positive")
        if self.max_days < 1:
            raise ValueError("max_days must be >= 1")

    def engagement_multiplier(self, category: str) -> float:
        """Relative engagement of a category (1.0 = baseline)."""
        return _CATEGORY_ENGAGEMENT.get(category, _DEFAULT_ENGAGEMENT)

    def expected_active_days(self) -> float:
        """Mean active days per install under geometric retention."""
        # 1 + r + r^2 + ... truncated at max_days.  At r = 1 the
        # geometric sum degenerates to its closed-form limit, max_days
        # terms of 1 -- the naive ratio would divide by zero.
        r = self.daily_retention
        if r >= 1.0:
            return float(self.max_days)
        return float((1 - r**self.max_days) / (1 - r))

    def expected_sessions(self, category: str) -> float:
        """Mean lifetime sessions per install for a category."""
        return (
            self.expected_active_days()
            * self.sessions_per_active_day
            * self.engagement_multiplier(category)
        )

    def sample_sessions(
        self, category: str, n_installs: int, seed: SeedLike = None
    ) -> np.ndarray:
        """Lifetime session counts for ``n_installs`` users of one app.

        Active-day counts are geometric (truncated); sessions per active
        day are Poisson with the category-adjusted mean.
        """
        if n_installs < 0:
            raise ValueError("n_installs must be non-negative")
        rng = make_rng(seed)
        if n_installs == 0:
            return np.zeros(0, dtype=np.int64)
        if self.daily_retention >= 1.0:
            # Perfect retention: every install stays the full window
            # (rng.geometric rejects p = 0).
            active_days = np.full(n_installs, self.max_days, dtype=np.int64)
        else:
            active_days = rng.geometric(
                1.0 - self.daily_retention, size=n_installs
            )
            active_days = np.minimum(active_days, self.max_days)
        rate = self.sessions_per_active_day * self.engagement_multiplier(category)
        sessions = rng.poisson(rate * active_days)
        # Every install opens the app at least once.
        return np.maximum(sessions, 1)
