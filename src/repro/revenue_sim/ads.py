"""Ad monetization: impressions, clicks, and income per install.

Converts the usage model's session counts into developer income through
the standard mobile advertising funnel: impressions per session, a
click-through rate, cost-per-click revenue plus an impression-based eCPM
component.  The resulting *income per download* is the quantity the
paper's Equation 7 bounds from the paid side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.revenue_sim.usage import UsageModel
from repro.stats.rng import SeedLike, make_rng


@dataclass(frozen=True)
class AdMonetization:
    """Ad funnel parameters.

    Parameters
    ----------
    impressions_per_session:
        Mean banner/interstitial impressions shown per session.
    click_through_rate:
        Probability an impression is clicked.
    revenue_per_click:
        Developer revenue per click, dollars.
    ecpm:
        Impression-based revenue per 1000 impressions, dollars (paid on
        top of clicks).
    """

    impressions_per_session: float = 3.0
    click_through_rate: float = 0.01
    revenue_per_click: float = 0.05
    ecpm: float = 0.5

    def __post_init__(self) -> None:
        if self.impressions_per_session <= 0:
            raise ValueError("impressions_per_session must be positive")
        if not 0.0 <= self.click_through_rate <= 1.0:
            raise ValueError("click_through_rate must be in [0, 1]")
        if self.revenue_per_click < 0 or self.ecpm < 0:
            raise ValueError("revenue rates must be non-negative")

    def expected_income_per_download(
        self, usage: UsageModel, category: str
    ) -> float:
        """Closed-form expected developer income per install."""
        sessions = usage.expected_sessions(category)
        impressions = sessions * self.impressions_per_session
        click_income = impressions * self.click_through_rate * self.revenue_per_click
        impression_income = impressions / 1000.0 * self.ecpm
        return click_income + impression_income

    def simulate_income(
        self,
        usage: UsageModel,
        category: str,
        n_installs: int,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Per-install realized income for ``n_installs`` users.

        Session counts come from the usage model; impressions are Poisson
        per session; clicks are binomial over impressions.
        """
        rng = make_rng(seed)
        sessions = usage.sample_sessions(category, n_installs, seed=rng)
        if sessions.size == 0:
            return np.zeros(0, dtype=np.float64)
        impressions = rng.poisson(self.impressions_per_session * sessions)
        clicks = rng.binomial(impressions, self.click_through_rate)
        return (
            clicks * self.revenue_per_click
            + impressions / 1000.0 * self.ecpm
        )
