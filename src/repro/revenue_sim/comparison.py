"""Strategy comparison: simulated ad income vs. the Equation-7 threshold.

The paper estimates the per-download ad income a free app *needs*
(break-even); this harness simulates the per-download ad income a free
app *gets* under an explicit usage/monetization model, and reports which
side of the threshold each category lands on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.revenue import (
    BreakEvenOutcome,
    FreeAppRecord,
    PaidAppRecord,
    break_even_outcomes_by_category,
)
from repro.revenue_sim.ads import AdMonetization
from repro.revenue_sim.usage import UsageModel
from repro.stats.rng import SeedLike, make_rng, make_seed_sequence


@dataclass(frozen=True)
class CategoryOutcome:
    """Comparison of earned vs needed ad income for one category."""

    category: str
    break_even_income: float
    simulated_income: float

    @property
    def free_strategy_wins(self) -> bool:
        """Whether simulated ad income clears the break-even threshold."""
        return self.simulated_income >= self.break_even_income

    @property
    def margin(self) -> float:
        """Earned minus needed income per download."""
        return self.simulated_income - self.break_even_income


@dataclass(frozen=True)
class StrategyComparison:
    """Ex-post validation of the free-with-ads strategy, per category.

    ``undefined`` lists the categories where the comparison has no
    threshold (only paid or only free apps) -- common once populations
    are sliced per persona segment.  They are reported, never silently
    dropped, and never counted in ``win_fraction``.
    """

    outcomes: List[CategoryOutcome]
    undefined: List[BreakEvenOutcome] = field(default_factory=list)

    @property
    def categories_where_free_wins(self) -> List[str]:
        """Categories whose simulated ad income beats the threshold."""
        return [o.category for o in self.outcomes if o.free_strategy_wins]

    @property
    def undefined_categories(self) -> List[str]:
        """Categories with an explicit no-threshold outcome."""
        return [o.category for o in self.undefined]

    @property
    def win_fraction(self) -> float:
        """Fraction of compared categories where free-with-ads wins."""
        if not self.outcomes:
            return 0.0
        return len(self.categories_where_free_wins) / len(self.outcomes)

    def describe(self) -> str:
        """One summary line."""
        line = (
            f"free-with-ads beats the paid strategy in "
            f"{len(self.categories_where_free_wins)}/{len(self.outcomes)} "
            f"categories under the simulated ad funnel"
        )
        if self.undefined:
            line += (
                f" ({len(self.undefined)} categories without a defined "
                f"threshold)"
            )
        return line


def compare_strategies(
    paid_apps: Sequence[PaidAppRecord],
    free_apps: Sequence[FreeAppRecord],
    usage: Optional[UsageModel] = None,
    monetization: Optional[AdMonetization] = None,
    installs_per_category: int = 2000,
    seed: SeedLike = None,
) -> StrategyComparison:
    """Compare earned vs needed ad income per category.

    For every category with both paid and free apps, computes the
    Equation-7 break-even threshold from the records, simulates
    ``installs_per_category`` installs through the usage + ad funnel,
    and reports which side of the threshold the realized income lands on.
    """
    if installs_per_category < 1:
        raise ValueError("installs_per_category must be >= 1")
    usage = usage or UsageModel()
    monetization = monetization or AdMonetization()
    rng = make_rng(seed)

    thresholds = break_even_outcomes_by_category(paid_apps, free_apps)
    outcomes: List[CategoryOutcome] = []
    undefined: List[BreakEvenOutcome] = []
    for outcome in thresholds:
        if not outcome.defined:
            # One-sided categories (only paid or only free apps) carry
            # no threshold; surface them instead of simulating against
            # a meaningless number or crashing.
            undefined.append(outcome)
            continue
        incomes = monetization.simulate_income(
            usage, outcome.category, installs_per_category, seed=rng
        )
        simulated = float(incomes.mean()) if incomes.size else 0.0
        outcomes.append(
            CategoryOutcome(
                category=outcome.category,
                break_even_income=outcome.threshold,
                simulated_income=simulated,
            )
        )
    return StrategyComparison(outcomes=outcomes, undefined=undefined)


@dataclass(frozen=True)
class SegmentRevenueRecords:
    """One persona segment's slice of the paid/free populations.

    ``engagement`` multiplies the usage model's sessions-per-active-day
    (the conjoint engagement draw); ``weight`` scales the simulated
    install volume, so small segments are compared at their actual
    traffic share.
    """

    name: str
    weight: float
    paid_apps: Tuple[PaidAppRecord, ...]
    free_apps: Tuple[FreeAppRecord, ...]
    engagement: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("segment name must be non-empty")
        if self.weight <= 0:
            raise ValueError("segment weight must be positive")
        if self.engagement <= 0:
            raise ValueError("engagement must be positive")


@dataclass(frozen=True)
class SegmentStrategyReport:
    """One segment's strategy comparison next to its traffic share."""

    segment: str
    weight: float
    comparison: StrategyComparison

    def describe(self) -> str:
        """One deterministic summary line."""
        return f"[{self.segment} w={self.weight:.2f}] {self.comparison.describe()}"


@dataclass(frozen=True)
class SegmentedStrategyComparison:
    """Global strategy comparison recomputed per persona segment."""

    overall: StrategyComparison
    per_segment: List[SegmentStrategyReport]

    def describe(self) -> str:
        """Global line followed by one line per segment."""
        lines = [f"[overall] {self.overall.describe()}"]
        lines.extend(report.describe() for report in self.per_segment)
        return "\n".join(lines)


def compare_strategies_by_segment(
    segments: Sequence[SegmentRevenueRecords],
    usage: Optional[UsageModel] = None,
    monetization: Optional[AdMonetization] = None,
    installs_per_category: int = 2000,
    seed: SeedLike = None,
) -> SegmentedStrategyComparison:
    """Run the ads-vs-paid comparison globally and per persona segment.

    The overall row pools every segment's records under the anchor usage
    model.  Each segment then re-runs the comparison over its own slice
    with engagement-scaled usage and weight-scaled install volume.  Seeds
    are spawned per segment (overall first), so adding or reordering
    trailing segments never changes earlier rows.
    """
    if not segments:
        raise ValueError("at least one segment is required")
    usage = usage or UsageModel()
    monetization = monetization or AdMonetization()
    children = make_seed_sequence(seed).spawn(len(segments) + 1)

    all_paid = [app for segment in segments for app in segment.paid_apps]
    all_free = [app for segment in segments for app in segment.free_apps]
    overall = compare_strategies(
        all_paid,
        all_free,
        usage=usage,
        monetization=monetization,
        installs_per_category=installs_per_category,
        seed=children[0],
    )

    total_weight = sum(segment.weight for segment in segments)
    reports: List[SegmentStrategyReport] = []
    for segment, child in zip(segments, children[1:]):
        share = segment.weight / total_weight
        scaled_usage = replace(
            usage,
            sessions_per_active_day=(
                usage.sessions_per_active_day * segment.engagement
            ),
        )
        comparison = compare_strategies(
            segment.paid_apps,
            segment.free_apps,
            usage=scaled_usage,
            monetization=monetization,
            installs_per_category=max(
                1, int(round(installs_per_category * share))
            ),
            seed=child,
        )
        reports.append(
            SegmentStrategyReport(
                segment=segment.name,
                weight=segment.weight,
                comparison=comparison,
            )
        )
    return SegmentedStrategyComparison(overall=overall, per_segment=reports)
