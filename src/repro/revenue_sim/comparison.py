"""Strategy comparison: simulated ad income vs. the Equation-7 threshold.

The paper estimates the per-download ad income a free app *needs*
(break-even); this harness simulates the per-download ad income a free
app *gets* under an explicit usage/monetization model, and reports which
side of the threshold each category lands on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.revenue import (
    FreeAppRecord,
    PaidAppRecord,
    break_even_by_category,
)
from repro.revenue_sim.ads import AdMonetization
from repro.revenue_sim.usage import UsageModel
from repro.stats.rng import SeedLike, make_rng


@dataclass(frozen=True)
class CategoryOutcome:
    """Comparison of earned vs needed ad income for one category."""

    category: str
    break_even_income: float
    simulated_income: float

    @property
    def free_strategy_wins(self) -> bool:
        """Whether simulated ad income clears the break-even threshold."""
        return self.simulated_income >= self.break_even_income

    @property
    def margin(self) -> float:
        """Earned minus needed income per download."""
        return self.simulated_income - self.break_even_income


@dataclass(frozen=True)
class StrategyComparison:
    """Ex-post validation of the free-with-ads strategy, per category."""

    outcomes: List[CategoryOutcome]

    @property
    def categories_where_free_wins(self) -> List[str]:
        """Categories whose simulated ad income beats the threshold."""
        return [o.category for o in self.outcomes if o.free_strategy_wins]

    @property
    def win_fraction(self) -> float:
        """Fraction of compared categories where free-with-ads wins."""
        if not self.outcomes:
            return 0.0
        return len(self.categories_where_free_wins) / len(self.outcomes)

    def describe(self) -> str:
        """One summary line."""
        return (
            f"free-with-ads beats the paid strategy in "
            f"{len(self.categories_where_free_wins)}/{len(self.outcomes)} "
            f"categories under the simulated ad funnel"
        )


def compare_strategies(
    paid_apps: Sequence[PaidAppRecord],
    free_apps: Sequence[FreeAppRecord],
    usage: Optional[UsageModel] = None,
    monetization: Optional[AdMonetization] = None,
    installs_per_category: int = 2000,
    seed: SeedLike = None,
) -> StrategyComparison:
    """Compare earned vs needed ad income per category.

    For every category with both paid and free apps, computes the
    Equation-7 break-even threshold from the records, simulates
    ``installs_per_category`` installs through the usage + ad funnel,
    and reports which side of the threshold the realized income lands on.
    """
    if installs_per_category < 1:
        raise ValueError("installs_per_category must be >= 1")
    usage = usage or UsageModel()
    monetization = monetization or AdMonetization()
    rng = make_rng(seed)

    thresholds = break_even_by_category(paid_apps, free_apps)
    outcomes: List[CategoryOutcome] = []
    for category in sorted(thresholds):
        incomes = monetization.simulate_income(
            usage, category, installs_per_category, seed=rng
        )
        simulated = float(incomes.mean()) if incomes.size else 0.0
        outcomes.append(
            CategoryOutcome(
                category=category,
                break_even_income=thresholds[category],
                simulated_income=simulated,
            )
        )
    return StrategyComparison(outcomes=outcomes)
