"""Ad-revenue simulation: closing the loop on Equation 7.

The paper compares paid and free-with-ads revenue strategies only through
the *break-even ad income per download*, because it has "no data about
the usage of free apps upon installation, i.e., clicks and impressions,
to approximate the actual income".  Our substrate can generate that
missing data: this package simulates post-install app usage sessions,
ad impressions and clicks, and the resulting developer income, so the
break-even threshold of Equation 7 can be validated ex post -- which
apps actually out-earn their paid counterparts, and at what effective
ad rates.

- :mod:`repro.revenue_sim.usage` -- post-install usage model (retention,
  sessions per day, session length).
- :mod:`repro.revenue_sim.ads` -- impression/click/eCPM income model.
- :mod:`repro.revenue_sim.comparison` -- strategy comparison harness.
"""

from repro.revenue_sim.ads import AdMonetization
from repro.revenue_sim.comparison import StrategyComparison, compare_strategies
from repro.revenue_sim.usage import UsageModel

__all__ = [
    "AdMonetization",
    "StrategyComparison",
    "UsageModel",
    "compare_strategies",
]
