"""repro -- a reproduction of "Rise of the Planet of the Apps" (IMC 2013).

The library rebuilds the paper's entire pipeline:

1. a synthetic appstore marketplace whose users exhibit fetch-at-most-once
   and the clustering effect (:mod:`repro.marketplace`);
2. the crawling architecture that collects daily per-app statistics,
   comments, and APKs from those stores (:mod:`repro.crawler`);
3. the paper's measurement study over the crawled data
   (:mod:`repro.analysis`);
4. the paper's primary contribution -- the temporal affinity metric and
   the APP-CLUSTERING download model with its validation machinery
   (:mod:`repro.core`);
5. the implications experiments: app-delivery caching
   (:mod:`repro.cache`), recommendation (:mod:`repro.recommend`), and
   reusable workload generation (:mod:`repro.workload`).

Quickstart
----------
>>> from repro import run_crawl_campaign, demo_profile, pareto_summary
>>> campaign = run_crawl_campaign(demo_profile(), seed=42)
>>> downloads = campaign.database.download_vector(
...     campaign.store_name, campaign.last_crawl_day)
>>> summary = pareto_summary(downloads[downloads > 0])
>>> 0.0 < summary.share_top_10pct <= 1.0
True
"""

from repro.core import (
    AppClusteringModel,
    AppClusteringParams,
    FitResult,
    ModelKind,
    ZipfAtMostOnceModel,
    ZipfModel,
    break_even_ad_income,
    expected_downloads,
    fit_model,
    mean_relative_error,
    pareto_summary,
    random_walk_affinity,
    simulate_downloads,
    temporal_affinity,
)
from repro.crawler import SnapshotDatabase, run_crawl_campaign
from repro.crawler.scheduler import run_multi_store_campaign
from repro.marketplace import AppStore, build_store
from repro.marketplace.profiles import (
    StoreProfile,
    demo_profile,
    paper_profile,
    paper_profiles,
    scaled_profile,
)

__version__ = "1.0.0"

__all__ = [
    "AppClusteringModel",
    "AppClusteringParams",
    "AppStore",
    "FitResult",
    "ModelKind",
    "SnapshotDatabase",
    "StoreProfile",
    "ZipfAtMostOnceModel",
    "ZipfModel",
    "__version__",
    "break_even_ad_income",
    "build_store",
    "demo_profile",
    "expected_downloads",
    "fit_model",
    "mean_relative_error",
    "paper_profile",
    "paper_profiles",
    "pareto_summary",
    "random_walk_affinity",
    "run_crawl_campaign",
    "run_multi_store_campaign",
    "scaled_profile",
    "simulate_downloads",
    "temporal_affinity",
]
