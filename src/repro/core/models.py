"""Monte Carlo appstore workload models (Section 5).

The paper validates its clustering hypothesis with three simulators:

- **ZIPF** -- every download is an independent draw from the global Zipf
  law ``ZG``.
- **ZIPF-at-most-once** -- downloads are drawn from ``ZG``, but no user
  ever downloads the same app twice (the fetch-at-most-once property of
  peer-to-peer workloads).
- **APP-CLUSTERING** -- the paper's model: the first download of a user
  comes from ``ZG``; each subsequent download comes, with probability
  ``p``, from the cluster of a previously downloaded app (uniformly chosen
  among visited clusters, app drawn from the cluster's internal Zipf law
  ``Zc``), otherwise from ``ZG``; fetch-at-most-once always holds.

All three expose the same interface: ``simulate`` returns per-app download
counts indexed by global appeal rank (index 0 = rank 1), ``iter_batches``
yields the event stream as vectorized :class:`~repro.core.engine.EventBatch`
chunks (the hot path, backed by :mod:`repro.core.engine`), and
``iter_events`` yields individual (user, app) download events for
consumers that need per-event objects (a thin adapter over the batches).
``iter_events_legacy`` keeps the original per-event reference
implementation around -- it is the baseline the statistical-equivalence
tests and the throughput benchmark compare against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MEMORY_BUDGET,
    DownloadEvent,
    EventBatch,
    app_clustering_event_batches,
    counts_from_batches,
    events_from_batches,
    interleaved_user_order,
    per_user_budgets,
    zipf_amo_event_batches,
    zipf_event_batches,
)
from repro.devtools.flow import pure
from repro.stats.rng import SeedLike, make_rng
from repro.stats.sampling import AliasSampler, HeadTailSampler
from repro.stats.zipf import zipf_weights

__all__ = [
    "AppClusteringModel",
    "AppClusteringParams",
    "DownloadEvent",
    "EventBatch",
    "ModelKind",
    "ZipfAtMostOnceModel",
    "ZipfModel",
    "simulate_downloads",
]

# Backwards-compatible aliases: these helpers grew up here and moved to
# the engine when the batched pipeline landed.
_per_user_budgets = per_user_budgets
_interleaved_user_order = interleaved_user_order


class ModelKind(str, enum.Enum):
    """The three workload models compared throughout the paper."""

    ZIPF = "ZIPF"
    ZIPF_AT_MOST_ONCE = "ZIPF-at-most-once"
    APP_CLUSTERING = "APP-CLUSTERING"


@dataclass(frozen=True)
class AppClusteringParams:
    """Parameters of the APP-CLUSTERING model (the paper's Table 2).

    Attributes
    ----------
    n_apps:
        ``A`` -- number of apps.
    n_users:
        ``U`` -- number of users.
    total_downloads:
        ``D`` -- total downloads to simulate; the per-user budget ``d`` is
        ``D / U`` (distributed as evenly as possible).
    zr:
        Zipf exponent of the overall app ranking (``ZG``).
    zc:
        Zipf exponent of each cluster's internal ranking (``Zc``).
    p:
        Probability that a download is clustering-driven.
    n_clusters:
        ``C`` -- number of clusters; apps are assigned to clusters
        round-robin by rank so every cluster contains apps of all
        popularity levels and sizes are equal (the paper's analytical
        simplification).
    cluster_of:
        Optional explicit cluster assignment (length ``n_apps``); overrides
        the round-robin default, letting callers plug in a store's real
        category map.
    """

    n_apps: int
    n_users: int
    total_downloads: int
    zr: float = 1.5
    zc: float = 1.4
    p: float = 0.9
    n_clusters: int = 30
    cluster_of: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.n_apps < 1:
            raise ValueError("n_apps must be positive")
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        if self.total_downloads < 0:
            raise ValueError("total_downloads must be non-negative")
        if self.zr < 0 or self.zc < 0:
            raise ValueError("Zipf exponents must be non-negative")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if self.cluster_of is not None and len(self.cluster_of) != self.n_apps:
            raise ValueError("cluster_of must have one entry per app")

    @property
    def downloads_per_user(self) -> float:
        """The paper's ``d``: average downloads per user."""
        return self.total_downloads / self.n_users

    @pure
    def cluster_assignment(self) -> np.ndarray:
        """Cluster index of each app (0-based ranks)."""
        if self.cluster_of is not None:
            return np.asarray(self.cluster_of, dtype=np.int64)
        return np.arange(self.n_apps, dtype=np.int64) % self.n_clusters


class ZipfModel:
    """Pure ZIPF workload: every download is i.i.d. from ``ZG``."""

    kind = ModelKind.ZIPF

    def __init__(self, n_apps: int, zr: float) -> None:
        if n_apps < 1:
            raise ValueError("n_apps must be positive")
        self.n_apps = n_apps
        self.zr = zr
        self._sampler = AliasSampler(zipf_weights(n_apps, zr))

    def simulate(
        self, n_users: int, total_downloads: int, seed: SeedLike = None
    ) -> np.ndarray:
        """Per-app download counts after ``total_downloads`` draws."""
        return counts_from_batches(
            self.iter_batches(n_users, total_downloads, seed=seed), self.n_apps
        )

    def iter_batches(
        self,
        n_users: int,
        total_downloads: int,
        seed: SeedLike = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[EventBatch]:
        """The event stream as vectorized chunks."""
        rng = make_rng(seed)
        return zipf_event_batches(
            self._sampler, n_users, total_downloads, rng, batch_size
        )

    def iter_events(
        self, n_users: int, total_downloads: int, seed: SeedLike = None
    ) -> Iterator[DownloadEvent]:
        """Yield the individual download events in simulation order."""
        return events_from_batches(
            self.iter_batches(n_users, total_downloads, seed=seed)
        )

    def iter_events_legacy(
        self, n_users: int, total_downloads: int, seed: SeedLike = None
    ) -> Iterator[DownloadEvent]:
        """Reference per-event implementation (benchmark baseline)."""
        rng = make_rng(seed)
        budgets = per_user_budgets(total_downloads, n_users, rng)
        order = interleaved_user_order(budgets, rng)
        draws = self._sampler.sample(total_downloads, seed=rng)
        for user_id, app_index in zip(order, draws):
            yield DownloadEvent(user_id=int(user_id), app_index=int(app_index))


class ZipfAtMostOnceModel:
    """ZIPF with the fetch-at-most-once constraint per user."""

    kind = ModelKind.ZIPF_AT_MOST_ONCE

    def __init__(self, n_apps: int, zr: float, max_rejections: int = 256) -> None:
        if n_apps < 1:
            raise ValueError("n_apps must be positive")
        if max_rejections < 1:
            raise ValueError("max_rejections must be >= 1")
        self.n_apps = n_apps
        self.zr = zr
        self.max_rejections = max_rejections
        weights = zipf_weights(n_apps, zr)
        self._sampler = AliasSampler(weights)
        # Built once so block-sharded campaigns that stream many small
        # populations through one model instance skip the per-stream
        # argsort + alias construction.
        self._head_tail = HeadTailSampler(weights)

    def simulate(
        self, n_users: int, total_downloads: int, seed: SeedLike = None
    ) -> np.ndarray:
        """Per-app download counts honouring fetch-at-most-once."""
        return counts_from_batches(
            self.iter_batches(n_users, total_downloads, seed=seed), self.n_apps
        )

    def iter_batches(
        self,
        n_users: int,
        total_downloads: int,
        seed: SeedLike = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        ledger_mode: Optional[str] = None,
    ) -> Iterator[EventBatch]:
        """The event stream as vectorized chunks."""
        rng = make_rng(seed)
        return zipf_amo_event_batches(
            self._sampler,
            n_users,
            total_downloads,
            rng,
            batch_size=batch_size,
            max_rejections=self.max_rejections,
            memory_budget_bytes=memory_budget_bytes,
            ledger_mode=ledger_mode,
            head_tail=self._head_tail,
        )

    def iter_events(
        self, n_users: int, total_downloads: int, seed: SeedLike = None
    ) -> Iterator[DownloadEvent]:
        """Yield download events; saturated users stop early."""
        return events_from_batches(
            self.iter_batches(n_users, total_downloads, seed=seed)
        )

    def _draw_new(self, downloaded: set, rng: np.random.Generator) -> Optional[int]:
        for _ in range(self.max_rejections):
            candidate = self._sampler.sample_one(rng)
            if candidate not in downloaded:
                return candidate
        return None

    def iter_events_legacy(
        self, n_users: int, total_downloads: int, seed: SeedLike = None
    ) -> Iterator[DownloadEvent]:
        """Reference per-event implementation (benchmark baseline)."""
        rng = make_rng(seed)
        budgets = per_user_budgets(total_downloads, n_users, rng)
        downloaded: List[set] = [set() for _ in range(n_users)]
        order = interleaved_user_order(budgets, rng)
        for user_id in order:
            user_downloads = downloaded[user_id]
            if len(user_downloads) >= self.n_apps:
                continue
            candidate = self._draw_new(user_downloads, rng)
            if candidate is None:
                continue
            user_downloads.add(candidate)
            yield DownloadEvent(user_id=int(user_id), app_index=int(candidate))


class AppClusteringModel:
    """The paper's APP-CLUSTERING workload model."""

    kind = ModelKind.APP_CLUSTERING

    def __init__(self, params: AppClusteringParams, max_rejections: int = 64) -> None:
        if max_rejections < 1:
            raise ValueError("max_rejections must be >= 1")
        self.params = params
        self.max_rejections = max_rejections
        self._clusters = params.cluster_assignment()
        self._global_sampler = AliasSampler(zipf_weights(params.n_apps, params.zr))
        # Only clusters that actually contain apps get members/samplers;
        # empty cluster ids (possible with an explicit ``cluster_of`` map)
        # are skipped cleanly and can never be sampled, because a cluster
        # only becomes "visited" through a download of one of its apps.
        self._members: Dict[int, np.ndarray] = {}
        self._cluster_samplers: Dict[int, AliasSampler] = {}
        self._cluster_head_tails: Dict[int, HeadTailSampler] = {}
        for cluster_index in np.unique(self._clusters):  # repro: noqa=RPL020 -- construction-time, once per cluster
            members = np.flatnonzero(self._clusters == cluster_index)
            weights = zipf_weights(members.size, params.zc)
            self._members[int(cluster_index)] = members
            self._cluster_samplers[int(cluster_index)] = AliasSampler(weights)
            self._cluster_head_tails[int(cluster_index)] = HeadTailSampler(
                weights, outcomes=members
            )
        self._global_head_tail = HeadTailSampler(
            zipf_weights(params.n_apps, params.zr)
        )

    @property
    def n_apps(self) -> int:
        """Number of apps."""
        return self.params.n_apps

    def cluster_of(self, app_index: int) -> int:
        """Cluster index of an app."""
        return int(self._clusters[app_index])

    def simulate(
        self,
        seed: SeedLike = None,
        n_users: Optional[int] = None,
        total_downloads: Optional[int] = None,
    ) -> np.ndarray:
        """Per-app download counts for the configured population.

        ``n_users`` / ``total_downloads`` optionally override the baked
        parameters: the sharded campaign runner streams many user blocks
        through a single model instance, reusing its alias tables.
        """
        return counts_from_batches(
            self.iter_batches(
                seed=seed, n_users=n_users, total_downloads=total_downloads
            ),
            self.n_apps,
        )

    def iter_batches(
        self,
        seed: SeedLike = None,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        ledger_mode: Optional[str] = None,
        n_users: Optional[int] = None,
        total_downloads: Optional[int] = None,
    ) -> Iterator[EventBatch]:
        """The event stream as vectorized chunks (one batch per round)."""
        params = self.params
        rng = make_rng(seed)
        return app_clustering_event_batches(
            params.n_users if n_users is None else n_users,
            params.total_downloads if total_downloads is None else total_downloads,
            params.p,
            self._global_sampler,
            self._cluster_samplers,
            self._members,
            self._clusters,
            rng,
            max_rejections=self.max_rejections,
            memory_budget_bytes=memory_budget_bytes,
            ledger_mode=ledger_mode,
            global_head_tail=self._global_head_tail,
            cluster_head_tails=self._cluster_head_tails,
        )

    def iter_events(self, seed: SeedLike = None) -> Iterator[DownloadEvent]:
        """Yield download events following the Section 5.1 user process."""
        return events_from_batches(self.iter_batches(seed=seed))

    def _draw_global(
        self, downloaded: set, rng: np.random.Generator
    ) -> Optional[int]:
        for _ in range(self.max_rejections):
            candidate = self._global_sampler.sample_one(rng)
            if candidate not in downloaded:
                return candidate
        return None

    def _draw_clustered(
        self,
        downloaded: set,
        visited_clusters: List[int],
        rng: np.random.Generator,
    ) -> Optional[int]:
        cluster = visited_clusters[int(rng.integers(0, len(visited_clusters)))]
        sampler = self._cluster_samplers.get(cluster)
        if sampler is None:
            return None
        members = self._members[cluster]
        for _ in range(self.max_rejections):
            candidate = int(members[sampler.sample_one(rng)])
            if candidate not in downloaded:
                return candidate
        return None

    def iter_events_legacy(self, seed: SeedLike = None) -> Iterator[DownloadEvent]:
        """Reference per-event implementation (benchmark baseline)."""
        params = self.params
        rng = make_rng(seed)
        budgets = per_user_budgets(params.total_downloads, params.n_users, rng)
        downloaded: List[set] = [set() for _ in range(params.n_users)]
        visited: List[List[int]] = [[] for _ in range(params.n_users)]
        order = interleaved_user_order(budgets, rng)
        for user_id in order:
            user_downloads = downloaded[user_id]
            if len(user_downloads) >= self.n_apps:
                continue
            user_clusters = visited[user_id]
            candidate: Optional[int] = None
            if user_clusters and rng.random() < params.p:
                candidate = self._draw_clustered(user_downloads, user_clusters, rng)
            if candidate is None:
                candidate = self._draw_global(user_downloads, rng)
            if candidate is None:
                continue
            user_downloads.add(candidate)
            cluster = self.cluster_of(candidate)
            if cluster not in user_clusters:
                user_clusters.append(cluster)
            yield DownloadEvent(user_id=int(user_id), app_index=int(candidate))


def simulate_downloads(
    kind: ModelKind,
    n_apps: int,
    n_users: int,
    total_downloads: int,
    zr: float,
    zc: float = 1.4,
    p: float = 0.9,
    n_clusters: int = 30,
    cluster_of: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Convenience dispatcher: per-app download counts under any model."""
    if kind == ModelKind.ZIPF:
        return ZipfModel(n_apps, zr).simulate(n_users, total_downloads, seed=seed)
    if kind == ModelKind.ZIPF_AT_MOST_ONCE:
        return ZipfAtMostOnceModel(n_apps, zr).simulate(
            n_users, total_downloads, seed=seed
        )
    if kind == ModelKind.APP_CLUSTERING:
        params = AppClusteringParams(
            n_apps=n_apps,
            n_users=n_users,
            total_downloads=total_downloads,
            zr=zr,
            zc=zc,
            p=p,
            n_clusters=n_clusters,
            cluster_of=tuple(cluster_of) if cluster_of is not None else None,
        )
        return AppClusteringModel(params).simulate(seed=seed)
    raise ValueError(f"unknown model kind: {kind!r}")
