"""The paper's primary contribution.

- :mod:`repro.core.affinity` -- the temporal affinity metric over category
  strings (Section 4.2, Equations 1 and 3) and the random-walk baselines
  (Equations 2 and 4).
- :mod:`repro.core.models` -- Monte Carlo appstore workload simulators for
  the ZIPF, ZIPF-at-most-once, and APP-CLUSTERING models (Section 5).
- :mod:`repro.core.analytical` -- the closed-form expected downloads
  ``D(i, j)`` of Equation 5.
- :mod:`repro.core.fitting` -- the mean-relative-error distance (Equation 6)
  and grid-search parameter fitting used to produce Figures 8-10.
- :mod:`repro.core.pareto` -- Pareto-effect summaries (Section 3.1).
- :mod:`repro.core.powerlaw` -- Zipf-trunk fitting and truncation detection
  (Section 3.2).
- :mod:`repro.core.revenue` -- developer income and the break-even ad
  income of Equation 7 (Section 6).
"""

from repro.core.affinity import (
    category_string,
    collapse_repeats,
    random_walk_affinity,
    temporal_affinity,
)
from repro.core.analytical import expected_downloads
from repro.core.fitting import FitResult, fit_model, mean_relative_error
from repro.core.models import (
    AppClusteringModel,
    AppClusteringParams,
    ModelKind,
    ZipfAtMostOnceModel,
    ZipfModel,
    simulate_downloads,
)
from repro.core.pareto import ParetoSummary, pareto_summary
from repro.core.powerlaw import TruncationReport, analyze_rank_distribution
from repro.core.revenue import break_even_ad_income, developer_incomes

__all__ = [
    "AppClusteringModel",
    "AppClusteringParams",
    "FitResult",
    "ModelKind",
    "ParetoSummary",
    "TruncationReport",
    "ZipfAtMostOnceModel",
    "ZipfModel",
    "analyze_rank_distribution",
    "break_even_ad_income",
    "category_string",
    "collapse_repeats",
    "developer_incomes",
    "expected_downloads",
    "fit_model",
    "mean_relative_error",
    "pareto_summary",
    "random_walk_affinity",
    "simulate_downloads",
    "temporal_affinity",
]
