"""Zipf-trunk fitting and truncation detection (Section 3.2).

Figure 3 of the paper plots per-app downloads against app rank in log-log
space: each store shows a straight Zipf "trunk" with bends at both ends --
a flattened head (fetch-at-most-once caps popular apps near the user
count) and a drooping tail (the clustering effect starves unpopular apps).
This module fits the trunk slope and quantifies both truncations so the
analysis pipeline can report them the way the paper annotates its plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.stats.distributions import rank_sizes
from repro.stats.loglog import LogLogFit, fit_loglog_slope, trunk_bounds


@dataclass(frozen=True)
class TruncationReport:
    """Quantified deviations of a rank curve from its Zipf trunk.

    ``head_flatness`` is the ratio of the observed top-rank downloads to
    the trunk extrapolation at rank 1: values well below 1 mean the head
    is flattened (fetch-at-most-once).  ``tail_droop`` is the analogous
    ratio at the last rank: values well below 1 mean the tail falls under
    the trunk line (clustering effect).
    """

    trunk: LogLogFit
    head_flatness: float
    tail_droop: float
    n_apps: int

    @property
    def has_head_truncation(self) -> bool:
        """Whether the head is visibly flattened (>= 2x below the trunk)."""
        return self.head_flatness < 0.5

    @property
    def has_tail_truncation(self) -> bool:
        """Whether the tail visibly droops (>= 2x below the trunk)."""
        return self.tail_droop < 0.5

    def describe(self) -> str:
        """A Figure-3 style annotation line."""
        flags = []
        if self.has_head_truncation:
            flags.append("head truncated (fetch-at-most-once)")
        if self.has_tail_truncation:
            flags.append("tail truncated (clustering effect)")
        suffix = "; ".join(flags) if flags else "no significant truncation"
        return (
            f"Zipf trunk slope {self.trunk.slope:.2f} "
            f"(R^2 {self.trunk.r_squared:.3f}); {suffix}"
        )


def analyze_rank_distribution(
    downloads,
    head_fraction: float = 0.01,
    tail_fraction: float = 0.5,
) -> TruncationReport:
    """Fit the Zipf trunk and measure both truncations of a rank curve.

    ``downloads`` is the per-app download vector (any order).  The trunk is
    fitted on ranks between ``head_fraction * n`` and ``tail_fraction * n``
    and extrapolated to both ends; the report compares observation against
    extrapolation there.
    """
    ranked = rank_sizes(downloads)
    positive = ranked[ranked > 0]
    if positive.size < 8:
        raise ValueError("need at least 8 apps with positive downloads")
    n = positive.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    low, high = trunk_bounds(n, head_fraction, tail_fraction)
    trunk = fit_loglog_slope(ranks, positive, x_range=(low, high))

    head_prediction = float(trunk.predict(np.array([1.0]))[0])
    tail_prediction = float(trunk.predict(np.array([float(n)]))[0])
    head_flatness = float(positive[0]) / head_prediction if head_prediction > 0 else 1.0
    tail_droop = float(positive[-1]) / tail_prediction if tail_prediction > 0 else 1.0
    return TruncationReport(
        trunk=trunk,
        head_flatness=head_flatness,
        tail_droop=tail_droop,
        n_apps=n,
    )


def rank_curve(downloads, max_points: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
    """(rank, downloads) series for a Figure-3 style log-log plot.

    With ``max_points`` set, the series is thinned to approximately
    log-spaced ranks, which is what the textual figure renderers print.
    """
    ranked = rank_sizes(downloads)
    positive = ranked[ranked > 0]
    if positive.size == 0:
        raise ValueError("no apps with positive downloads")
    ranks = np.arange(1, positive.size + 1, dtype=np.float64)
    if max_points is not None and positive.size > max_points:
        from repro.stats.distributions import log_spaced_ranks

        keep = log_spaced_ranks(positive.size, max_points) - 1
        return ranks[keep], positive[keep]
    return ranks, positive
