"""Developer income and break-even ad income (Section 6).

The paper estimates each developer's income as the sum over their paid
apps of downloads times average price, then compares two revenue
strategies: selling paid apps vs. giving the app away and monetizing with
advertisements.  The comparison is the *break-even ad income per download*
(Equation 7): the per-download ad revenue a free app needs in order to
match the income of an average paid app,

    AdIncome = (sum_i Downloads_paid(i) * Price(i) / N_paid)
               / (sum_j Downloads_free(j) / N_free)

i.e. average paid-app revenue divided by average free-app downloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PaidAppRecord:
    """What the revenue analysis needs to know about one paid app."""

    app_id: int
    developer_id: int
    category: str
    price: float
    downloads: int

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise ValueError("paid apps must have a positive price")
        if self.downloads < 0:
            raise ValueError("downloads must be non-negative")

    @property
    def revenue(self) -> float:
        """Gross revenue = downloads (purchases) times average price."""
        return self.downloads * self.price


@dataclass(frozen=True)
class FreeAppRecord:
    """What the revenue analysis needs to know about one free app."""

    app_id: int
    developer_id: int
    category: str
    downloads: int
    has_ads: bool = True

    def __post_init__(self) -> None:
        if self.downloads < 0:
            raise ValueError("downloads must be non-negative")


def developer_incomes(
    paid_apps: Sequence[PaidAppRecord],
    commission: float = 0.0,
) -> Dict[int, float]:
    """Total income per developer from their paid apps.

    ``commission`` is the store's cut (SlideMe takes 5%; the paper's
    analysis assumes developers keep the full amount, i.e. commission 0).
    Developers with paid apps but zero purchases appear with income 0.
    """
    if not 0.0 <= commission < 1.0:
        raise ValueError("commission must be in [0, 1)")
    incomes: Dict[int, float] = {}
    for app in paid_apps:
        incomes[app.developer_id] = incomes.get(app.developer_id, 0.0) + (
            app.revenue * (1.0 - commission)
        )
    return incomes


def revenue_by_category(
    paid_apps: Sequence[PaidAppRecord],
) -> Dict[str, float]:
    """Gross paid-app revenue per category (the Figure-15 numerator)."""
    revenue: Dict[str, float] = {}
    for app in paid_apps:
        revenue[app.category] = revenue.get(app.category, 0.0) + app.revenue
    return revenue


def category_breakdown(
    paid_apps: Sequence[PaidAppRecord],
) -> List[Tuple[str, float, float, float]]:
    """Figure 15 rows: (category, revenue %, apps %, developers %).

    Percentages are over the paid-app population; categories are sorted by
    descending revenue share.
    """
    if not paid_apps:
        raise ValueError("no paid apps to analyze")
    revenue = revenue_by_category(paid_apps)
    total_revenue = sum(revenue.values())
    apps_per_category: Dict[str, int] = {}
    developers_per_category: Dict[str, set] = {}
    for app in paid_apps:
        apps_per_category[app.category] = apps_per_category.get(app.category, 0) + 1
        developers_per_category.setdefault(app.category, set()).add(app.developer_id)
    total_apps = len(paid_apps)
    all_developers = {app.developer_id for app in paid_apps}
    rows = []
    for category in revenue:
        revenue_pct = (
            100.0 * revenue[category] / total_revenue if total_revenue > 0 else 0.0
        )
        apps_pct = 100.0 * apps_per_category[category] / total_apps
        developers_pct = (
            100.0 * len(developers_per_category[category]) / len(all_developers)
        )
        rows.append((category, revenue_pct, apps_pct, developers_pct))
    rows.sort(key=lambda row: row[1], reverse=True)
    return rows


def break_even_ad_income(
    paid_apps: Sequence[PaidAppRecord],
    free_apps: Sequence[FreeAppRecord],
    ads_only: bool = True,
) -> float:
    """Equation 7: per-download ad revenue a free app needs to match paid.

    Parameters
    ----------
    paid_apps, free_apps:
        The two populations being compared.
    ads_only:
        Restrict the free population to apps that actually embed ads, as
        the paper does ("We consider only free apps with ads in this
        analysis").
    """
    if not paid_apps:
        raise ValueError("no paid apps to compare against")
    free_pool = [app for app in free_apps if app.has_ads] if ads_only else list(free_apps)
    if not free_pool:
        raise ValueError("no free apps (with ads) to compare")
    average_paid_revenue = sum(app.revenue for app in paid_apps) / len(paid_apps)
    average_free_downloads = sum(app.downloads for app in free_pool) / len(free_pool)
    if average_free_downloads <= 0:
        return float("inf")
    return average_paid_revenue / average_free_downloads


def break_even_by_popularity_tier(
    paid_apps: Sequence[PaidAppRecord],
    free_apps: Sequence[FreeAppRecord],
    tiers: Sequence[Tuple[str, float, float]] = (
        ("most popular", 0.0, 0.2),
        ("medium popularity", 0.2, 0.7),
        ("unpopular", 0.7, 1.0),
    ),
) -> Dict[str, float]:
    """Figure 17's tier view: break-even income per free-app popularity tier.

    ``tiers`` are (name, start_fraction, end_fraction) slices of the free
    apps ranked by downloads (0.0 = most popular).  The paper's tiers are
    top 20%, next 50%, bottom 30%.
    """
    free_pool = [app for app in free_apps if app.has_ads]
    if not free_pool:
        raise ValueError("no free apps with ads")
    ranked = sorted(free_pool, key=lambda app: app.downloads, reverse=True)
    results: Dict[str, float] = {}
    n = len(ranked)
    for name, start, end in tiers:
        if not 0.0 <= start < end <= 1.0:
            raise ValueError(f"invalid tier bounds: {name} [{start}, {end})")
        slice_apps = ranked[int(start * n) : max(int(start * n) + 1, int(end * n))]
        results[name] = break_even_ad_income(paid_apps, slice_apps, ads_only=True)
    return results


@dataclass(frozen=True)
class BreakEvenOutcome:
    """Per-category break-even result, defined or explicitly not.

    Per-segment slicing routinely produces categories holding only paid
    or only free apps; those are legitimate "no threshold" outcomes of
    the Figure-18 analysis, not errors.  ``status`` is one of ``"ok"``,
    ``"no-paid-apps"``, or ``"no-free-apps"``; ``threshold`` is ``None``
    unless the status is ``"ok"``.
    """

    category: str
    threshold: Optional[float]
    status: str
    n_paid: int
    n_free: int

    @property
    def defined(self) -> bool:
        """Whether the comparison produced a numeric threshold."""
        return self.threshold is not None

    def describe(self) -> str:
        """One deterministic summary line."""
        if self.threshold is not None:
            value = f"${self.threshold:.4f}/download"
        else:
            value = f"no threshold ({self.status})"
        return (
            f"{self.category}: {value} "
            f"[{self.n_paid} paid, {self.n_free} free]"
        )


def break_even_outcomes_by_category(
    paid_apps: Sequence[PaidAppRecord],
    free_apps: Sequence[FreeAppRecord],
    ads_only: bool = True,
) -> List[BreakEvenOutcome]:
    """Figure 18 over the *union* of categories, degrading gracefully.

    Unlike :func:`break_even_by_category` (which silently skips),
    every category present in either population gets a row; one-sided
    categories come back with an explicit no-threshold status.  Rows are
    sorted by category name for deterministic output.
    """
    paid_by_category: Dict[str, List[PaidAppRecord]] = {}
    for app in paid_apps:
        paid_by_category.setdefault(app.category, []).append(app)
    free_by_category: Dict[str, List[FreeAppRecord]] = {}
    for app in free_apps:
        if app.has_ads or not ads_only:
            free_by_category.setdefault(app.category, []).append(app)
    outcomes: List[BreakEvenOutcome] = []
    for category in sorted(set(paid_by_category) | set(free_by_category)):
        paid_group = paid_by_category.get(category, [])
        free_group = free_by_category.get(category, [])
        if not paid_group:
            status, threshold = "no-paid-apps", None
        elif not free_group:
            status, threshold = "no-free-apps", None
        else:
            status = "ok"
            threshold = break_even_ad_income(
                paid_group, free_group, ads_only=ads_only
            )
        outcomes.append(
            BreakEvenOutcome(
                category=category,
                threshold=threshold,
                status=status,
                n_paid=len(paid_group),
                n_free=len(free_group),
            )
        )
    return outcomes


def break_even_by_category(
    paid_apps: Sequence[PaidAppRecord],
    free_apps: Sequence[FreeAppRecord],
) -> Dict[str, float]:
    """Figure 18: break-even ad income computed per category.

    Categories missing either paid or free apps are skipped (the
    comparison is undefined there); use
    :func:`break_even_outcomes_by_category` when the skips themselves
    matter.  Insertion order follows the paid-app sequence, as before.
    """
    paid_by_category: Dict[str, List[PaidAppRecord]] = {}
    for app in paid_apps:
        paid_by_category.setdefault(app.category, []).append(app)
    free_by_category: Dict[str, List[FreeAppRecord]] = {}
    for app in free_apps:
        if app.has_ads:
            free_by_category.setdefault(app.category, []).append(app)
    results: Dict[str, float] = {}
    for category, paid_group in paid_by_category.items():
        free_group = free_by_category.get(category)
        if not free_group:
            continue
        results[category] = break_even_ad_income(paid_group, free_group)
    return results


def income_quantity_correlation(
    paid_apps: Sequence[PaidAppRecord],
) -> Tuple[np.ndarray, np.ndarray]:
    """Figure 14's data: (apps per developer, income per developer) arrays.

    Returns parallel arrays over developers; feed them to
    :func:`repro.stats.correlation.pearson` to get the paper's
    quality-over-quantity coefficient (~0.008).
    """
    apps_per_developer: Dict[int, int] = {}
    for app in paid_apps:
        apps_per_developer[app.developer_id] = (
            apps_per_developer.get(app.developer_id, 0) + 1
        )
    incomes = developer_incomes(paid_apps)
    developer_ids = sorted(apps_per_developer)
    counts = np.array([apps_per_developer[d] for d in developer_ids], dtype=np.float64)
    totals = np.array([incomes.get(d, 0.0) for d in developer_ids], dtype=np.float64)
    return counts, totals
