"""Closed-form expected downloads under APP-CLUSTERING (Equation 5).

Section 5.1 of the paper derives the expected number of downloads for an
app with overall rank ``i`` and within-cluster rank ``j``.  Each user makes
``d`` downloads, of which ``(1 - p) * d`` are global-Zipf selections and
``p * d`` are cluster-Zipf selections; the probability that one user ends
up downloading the app is one minus the probability of missing it in all
of those selections:

    D(i, j) = U * [ 1 - (1 - P_G(i))^((1-p)*d) * (1 - P_c(j))^(p*d) ]

where ``P_G(i)`` is the global Zipf mass of rank ``i`` over ``A`` apps and
``P_c(j)`` the cluster Zipf mass of rank ``j`` over a cluster of size
``S_C`` (all clusters equal-sized in the analysis).  The per-user miss
probability treats selections as independent draws -- exactly the paper's
approximation; fetch-at-most-once appears through the "did the user ever
pick it" framing, which caps downloads at ``U``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.models import AppClusteringParams
from repro.stats.zipf import generalized_harmonic


def expected_downloads(
    params: AppClusteringParams,
    overall_rank,
    cluster_rank,
    cluster_size: Optional[int] = None,
) -> np.ndarray:
    """Expected downloads ``D(i, j)`` of Equation 5.

    Parameters
    ----------
    params:
        The model parameters (``U``, ``A``, ``D``, ``zr``, ``zc``, ``p``,
        ``C``).
    overall_rank:
        Overall rank ``i`` (1-based); scalar or array.
    cluster_rank:
        Within-cluster rank ``j`` (1-based); scalar or array broadcastable
        against ``overall_rank``.
    cluster_size:
        ``S_C``; defaults to the equal-size assumption ``A / C`` (rounded
        up so every cluster rank stays valid).

    Returns
    -------
    Expected download counts, clipped implicitly below ``U`` by the model
    structure.
    """
    i = np.asarray(overall_rank, dtype=np.float64)
    j = np.asarray(cluster_rank, dtype=np.float64)
    if np.any(i < 1) or np.any(i > params.n_apps):
        raise ValueError(f"overall ranks must lie in [1, {params.n_apps}]")

    if cluster_size is None:
        cluster_size = int(np.ceil(params.n_apps / params.n_clusters))
    if cluster_size < 1:
        raise ValueError("cluster_size must be positive")
    if np.any(j < 1) or np.any(j > cluster_size):
        raise ValueError(f"cluster ranks must lie in [1, {cluster_size}]")

    d = params.downloads_per_user
    global_mass = (i**-params.zr) / generalized_harmonic(params.n_apps, params.zr)
    cluster_mass = (j**-params.zc) / generalized_harmonic(cluster_size, params.zc)

    miss_global = (1.0 - global_mass) ** ((1.0 - params.p) * d)
    miss_cluster = (1.0 - cluster_mass) ** (params.p * d)
    hit_probability = 1.0 - miss_global * miss_cluster
    return params.n_users * hit_probability


def _cluster_rank_layout(params: AppClusteringParams):
    """Within-cluster ranks and cluster sizes from the cluster assignment."""
    clusters = params.cluster_assignment()
    n_apps = params.n_apps
    cluster_ranks = np.zeros(n_apps, dtype=np.int64)
    sizes = np.zeros(int(clusters.max()) + 1, dtype=np.int64)
    for app_index in range(n_apps):
        cluster = clusters[app_index]
        sizes[cluster] += 1
        cluster_ranks[app_index] = sizes[cluster]
    return clusters, cluster_ranks, sizes


def expected_download_curve(
    params: AppClusteringParams, cluster_size: Optional[int] = None
) -> np.ndarray:
    """Expected downloads for every app, ordered by overall rank (Eq. 5).

    Uses the model's cluster assignment to derive each app's within-cluster
    rank (apps of a cluster ordered by their overall rank), then evaluates
    :func:`expected_downloads` vectorized over all apps.  This is the
    paper's formula verbatim; see
    :func:`expected_download_curve_corrected` for the variant that also
    accounts for which cluster a clustered draw targets.
    """
    _, cluster_ranks, sizes = _cluster_rank_layout(params)
    if cluster_size is None:
        cluster_size = int(sizes.max())
    overall_ranks = np.arange(1, params.n_apps + 1)
    return expected_downloads(
        params, overall_ranks, cluster_ranks, cluster_size=cluster_size
    )


def distinct_draw_hit_probabilities(pmf: np.ndarray, budget: float) -> np.ndarray:
    """Per-item inclusion probability of ``budget`` distinct weighted draws.

    Models sampling *without replacement*: drawing until ``budget``
    distinct items have been collected from a categorical distribution
    ``pmf`` (which is what the simulators' rejection loops implement).
    Uses the standard Poissonization approximation: item ``j`` is included
    with probability ``1 - exp(-pmf_j * T)`` where ``T`` solves
    ``sum_j (1 - exp(-pmf_j * T)) = budget``.  ``T`` is found by bisection
    (the left side is strictly increasing in ``T``).
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    if pmf.ndim != 1 or pmf.size == 0:
        raise ValueError("pmf must be a non-empty 1-D array")
    if budget < 0:
        raise ValueError("budget must be non-negative")
    n = pmf.size
    if budget <= 0:
        return np.zeros(n)
    if budget >= n:
        return np.ones(n)

    def expected_distinct(t: float) -> float:
        return float(-np.expm1(-pmf * t).sum())

    low, high = 0.0, 1.0
    while expected_distinct(high) < budget:
        high *= 2.0
        if high > 1e18:
            break
    for _ in range(100):
        mid = (low + high) / 2.0
        if expected_distinct(mid) < budget:
            low = mid
        else:
            high = mid
    t_solution = (low + high) / 2.0
    return -np.expm1(-pmf * t_solution)


def expected_download_curve_corrected(
    params: AppClusteringParams,
) -> np.ndarray:
    """Mean-field expected downloads with cluster-visit correction.

    Equation 5 treats all ``p * d`` clustered selections of a user as
    independent draws from the *target app's own* cluster.  In the actual
    process (Section 5.1) two things differ: the cluster is chosen
    uniformly among the clusters the user has previously *visited* (so
    only visitors of cluster ``c`` ever draw from ``Zc``, splitting their
    clustered budget across visited clusters), and fetch-at-most-once
    turns every draw into a *distinct* selection (rejected repeats are
    resampled).  The paper compensates by fitting through simulation; this
    corrected closed form tracks the Monte Carlo output closely and makes
    grid-search fitting cheap.

    The construction, per user with ``d`` downloads:

    - global selections: ``g = 1 + (1 - p) * (d - 1)`` distinct draws from
      ``ZG`` (the first download plus the non-clustered remainder), with
      per-app hit probabilities from
      :func:`distinct_draw_hit_probabilities`;
    - cluster visits: under the same Poissonized global process, cluster
      ``c`` is visited with probability ``v_c = 1 - exp(-Q_c * T)`` where
      ``Q_c`` is the cluster's global-mass share of the solved intensity;
    - clustered selections: the ``p * (d - 1)`` clustered draws split
      evenly over the ``m = sum_c v_c`` expected visited clusters, giving
      ``k = p * (d - 1) / m`` distinct within-cluster draws for each
      visited cluster;
    - an app ``(i, j)`` in cluster ``c`` is downloaded unless it is missed
      both globally and in its cluster:
      ``P = 1 - (1 - hit_G(i)) * (1 - v_c * hit_c(j))``.
    """
    clusters, cluster_ranks, sizes = _cluster_rank_layout(params)
    n_apps = params.n_apps
    d = params.downloads_per_user

    ranks = np.arange(1, n_apps + 1, dtype=np.float64)
    global_mass = ranks**-params.zr / generalized_harmonic(n_apps, params.zr)

    global_budget = min(float(n_apps), 1.0 + (1.0 - params.p) * max(d - 1.0, 0.0))
    hit_global = distinct_draw_hit_probabilities(global_mass, global_budget)

    # Visit probability per cluster: 1 - prod over members of their global
    # miss probabilities (exact under the Poissonized process).
    n_clusters = sizes.size
    log_miss = np.log(np.clip(1.0 - hit_global, 1e-300, 1.0))
    cluster_log_miss = np.zeros(n_clusters, dtype=np.float64)
    np.add.at(cluster_log_miss, clusters, log_miss)
    visit_probability = 1.0 - np.exp(cluster_log_miss)
    expected_visited = max(float(visit_probability.sum()), 1.0)

    cluster_budget_total = params.p * max(d - 1.0, 0.0)
    per_cluster_budget = cluster_budget_total / expected_visited

    hit_cluster = np.zeros(n_apps, dtype=np.float64)
    for cluster_index in range(n_clusters):
        members = np.flatnonzero(clusters == cluster_index)
        if members.size == 0:
            continue
        member_ranks = cluster_ranks[members].astype(np.float64)
        pmf = member_ranks**-params.zc
        pmf /= pmf.sum()
        budget = min(float(members.size), per_cluster_budget)
        hit_cluster[members] = distinct_draw_hit_probabilities(pmf, budget)

    v = visit_probability[clusters]
    hit_probability = 1.0 - (1.0 - hit_global) * (1.0 - v * hit_cluster)
    return params.n_users * hit_probability


def expected_zipf_at_most_once(
    n_apps: int, n_users: int, total_downloads: int, zr: float
) -> np.ndarray:
    """Expected downloads per rank under ZIPF-at-most-once.

    The same hit-probability argument with ``p = 0``: a user making ``d``
    global draws downloads rank ``i`` with probability
    ``1 - (1 - P_G(i))**d``, and downloads saturate at ``U``.  This is the
    Gummadi-style fetch-at-most-once curve the paper compares against.
    """
    if n_apps < 1 or n_users < 1:
        raise ValueError("n_apps and n_users must be positive")
    if total_downloads < 0:
        raise ValueError("total_downloads must be non-negative")
    d = total_downloads / n_users
    ranks = np.arange(1, n_apps + 1, dtype=np.float64)
    mass = ranks**-zr / generalized_harmonic(n_apps, zr)
    return n_users * (1.0 - (1.0 - mass) ** d)


def expected_zipf(n_apps: int, total_downloads: int, zr: float) -> np.ndarray:
    """Expected downloads per rank under the unconstrained ZIPF model."""
    if n_apps < 1:
        raise ValueError("n_apps must be positive")
    if total_downloads < 0:
        raise ValueError("total_downloads must be non-negative")
    ranks = np.arange(1, n_apps + 1, dtype=np.float64)
    mass = ranks**-zr / generalized_harmonic(n_apps, zr)
    return total_downloads * mass
