"""The rival hypothesis: recommender-feedback (information filtering).

Section 3.2 of the paper discusses the competing explanation for
power-law truncation in user-generated content: "search engines and
recommendation systems tend to favor the most popular content, due to
information filtering, which results to the observed truncation of power
law" (citing Cho & Roy and Mossa et al.).  The paper argues the
clustering effect is the more general mechanism.

This module makes that debate testable by implementing the rival
mechanism as a fourth workload model:

- **RECOMMENDER-FEEDBACK** -- with probability ``q`` a user's next
  download comes from the store's top-``N`` recommendation list (ranked
  by *current* download counts, so popularity feeds back on itself);
  otherwise from the global Zipf law.  Fetch-at-most-once holds.

The two mechanisms leave different fingerprints, which the ablation
bench checks: feedback steepens the head and *sharpens* the boundary at
rank ``N`` (apps inside the list absorb everything, apps outside starve
uniformly), while clustering bends the tail smoothly and keeps
within-category favorites alive at every global rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.core.models import DownloadEvent, _per_user_budgets, _interleaved_user_order
from repro.stats.rng import SeedLike, make_rng
from repro.stats.sampling import AliasSampler
from repro.stats.zipf import zipf_weights


@dataclass(frozen=True)
class RecommenderFeedbackParams:
    """Parameters of the feedback model.

    Attributes
    ----------
    n_apps, n_users, total_downloads:
        Population sizes, as in :class:`AppClusteringParams`.
    zr:
        Zipf exponent of the organic (non-recommended) selections.
    q:
        Probability a download is recommendation-driven.
    list_size:
        ``N`` -- length of the store's "most popular" list.
    refresh_every:
        Downloads between recommendation-list refreshes (the store
        recomputes its charts periodically, not per download).
    """

    n_apps: int
    n_users: int
    total_downloads: int
    zr: float = 1.5
    q: float = 0.9
    list_size: int = 50
    refresh_every: int = 500

    def __post_init__(self) -> None:
        if self.n_apps < 1 or self.n_users < 1:
            raise ValueError("n_apps and n_users must be positive")
        if self.total_downloads < 0:
            raise ValueError("total_downloads must be non-negative")
        if self.zr < 0:
            raise ValueError("zr must be non-negative")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.list_size < 1:
            raise ValueError("list_size must be >= 1")
        if self.refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")


class RecommenderFeedbackModel:
    """Monte Carlo simulator of popularity-feedback downloads."""

    kind = "RECOMMENDER-FEEDBACK"

    def __init__(
        self, params: RecommenderFeedbackParams, max_rejections: int = 64
    ) -> None:
        if max_rejections < 1:
            raise ValueError("max_rejections must be >= 1")
        self.params = params
        self.max_rejections = max_rejections
        self._organic = AliasSampler(zipf_weights(params.n_apps, params.zr))

    @property
    def n_apps(self) -> int:
        """Number of apps."""
        return self.params.n_apps

    def simulate(self, seed: SeedLike = None) -> np.ndarray:
        """Per-app download counts after the full population runs."""
        counts = np.zeros(self.n_apps, dtype=np.int64)
        for event in self.iter_events(seed=seed):
            counts[event.app_index] += 1
        return counts

    def iter_events(self, seed: SeedLike = None) -> Iterator[DownloadEvent]:
        """Yield download events under the feedback process."""
        params = self.params
        rng = make_rng(seed)
        budgets = _per_user_budgets(params.total_downloads, params.n_users, rng)
        order = _interleaved_user_order(budgets, rng)
        downloaded: List[set] = [set() for _ in range(params.n_users)]
        counts = np.zeros(self.n_apps, dtype=np.int64)

        # The chart starts from the organic appeal ranking (ranks 1..N)
        # and refreshes from realized counts as downloads accumulate.
        chart = np.arange(min(params.list_size, self.n_apps), dtype=np.int64)
        since_refresh = 0

        for user_id in order:
            user_downloads = downloaded[user_id]
            if len(user_downloads) >= self.n_apps:
                continue

            if since_refresh >= params.refresh_every:
                top = np.argsort(counts)[::-1][: params.list_size]
                chart = top.astype(np.int64)
                since_refresh = 0

            candidate: Optional[int] = None
            if rng.random() < params.q:
                # Recommendation-driven: uniform pick from the chart (the
                # user scrolls the "top apps" page).
                for _ in range(self.max_rejections):
                    pick = int(chart[int(rng.integers(0, chart.size))])
                    if pick not in user_downloads:
                        candidate = pick
                        break
            if candidate is None:
                for _ in range(self.max_rejections):
                    pick = self._organic.sample_one(rng)
                    if pick not in user_downloads:
                        candidate = pick
                        break
            if candidate is None:
                continue
            user_downloads.add(candidate)
            counts[candidate] += 1
            since_refresh += 1
            yield DownloadEvent(user_id=int(user_id), app_index=int(candidate))
