"""The rival hypothesis: recommender-feedback (information filtering).

Section 3.2 of the paper discusses the competing explanation for
power-law truncation in user-generated content: "search engines and
recommendation systems tend to favor the most popular content, due to
information filtering, which results to the observed truncation of power
law" (citing Cho & Roy and Mossa et al.).  The paper argues the
clustering effect is the more general mechanism.

This module makes that debate testable by implementing the rival
mechanism as a fourth workload model:

- **RECOMMENDER-FEEDBACK** -- with probability ``q`` a user's next
  download comes from the store's top-``N`` recommendation list (ranked
  by *current* download counts, so popularity feeds back on itself);
  otherwise from the global Zipf law.  Fetch-at-most-once holds.

The two mechanisms leave different fingerprints, which the ablation
bench checks: feedback steepens the head and *sharpens* the boundary at
rank ``N`` (apps inside the list absorb everything, apps outside starve
uniformly), while clustering bends the tail smoothly and keeps
within-category favorites alive at every global rank.

The simulation batches on the chart-refresh boundary: between refreshes
the recommendation list is frozen, so every download slot of a refresh
window can be resolved in one vectorized pass through the shared
rejection kernel of :mod:`repro.core.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set

import numpy as np

from repro.core.engine import (
    DEFAULT_MEMORY_BUDGET,
    DownloadEvent,
    DownloadLedger,
    EventBatch,
    counts_from_batches,
    events_from_batches,
    interleaved_user_order,
    per_user_budgets,
    sample_new_apps,
)
from repro.stats.rng import SeedLike, make_rng
from repro.stats.sampling import AliasSampler
from repro.stats.zipf import zipf_weights


@dataclass(frozen=True)
class RecommenderFeedbackParams:
    """Parameters of the feedback model.

    Attributes
    ----------
    n_apps, n_users, total_downloads:
        Population sizes, as in :class:`AppClusteringParams`.
    zr:
        Zipf exponent of the organic (non-recommended) selections.
    q:
        Probability a download is recommendation-driven.
    list_size:
        ``N`` -- length of the store's "most popular" list.
    refresh_every:
        Downloads between recommendation-list refreshes (the store
        recomputes its charts periodically, not per download).
    """

    n_apps: int
    n_users: int
    total_downloads: int
    zr: float = 1.5
    q: float = 0.9
    list_size: int = 50
    refresh_every: int = 500

    def __post_init__(self) -> None:
        if self.n_apps < 1 or self.n_users < 1:
            raise ValueError("n_apps and n_users must be positive")
        if self.total_downloads < 0:
            raise ValueError("total_downloads must be non-negative")
        if self.zr < 0:
            raise ValueError("zr must be non-negative")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.list_size < 1:
            raise ValueError("list_size must be >= 1")
        if self.refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")


class RecommenderFeedbackModel:
    """Monte Carlo simulator of popularity-feedback downloads."""

    kind = "RECOMMENDER-FEEDBACK"

    def __init__(
        self, params: RecommenderFeedbackParams, max_rejections: int = 64
    ) -> None:
        if max_rejections < 1:
            raise ValueError("max_rejections must be >= 1")
        self.params = params
        self.max_rejections = max_rejections
        self._organic = AliasSampler(zipf_weights(params.n_apps, params.zr))

    @property
    def n_apps(self) -> int:
        """Number of apps."""
        return self.params.n_apps

    def simulate(self, seed: SeedLike = None) -> np.ndarray:
        """Per-app download counts after the full population runs."""
        return counts_from_batches(self.iter_batches(seed=seed), self.n_apps)

    def iter_batches(
        self,
        seed: SeedLike = None,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        ledger_mode: Optional[str] = None,
    ) -> Iterator[EventBatch]:
        """The event stream as one vectorized batch per refresh window.

        The chart is frozen between refreshes, which is exactly what makes
        the window batchable: every slot sees the same recommendation
        list, and fetch-at-most-once (including duplicates *within* the
        window) is enforced by the engine's rejection kernel.
        """
        params = self.params
        rng = make_rng(seed)
        budgets = per_user_budgets(params.total_downloads, params.n_users, rng)
        order = interleaved_user_order(budgets, rng)
        ledger = DownloadLedger(
            params.n_users,
            params.n_apps,
            memory_budget_bytes,
            mode=ledger_mode,
        )
        counts = np.zeros(params.n_apps, dtype=np.int64)

        # The chart starts from the organic appeal ranking (ranks 1..N)
        # and refreshes from realized counts as downloads accumulate.
        chart = np.arange(min(params.list_size, params.n_apps), dtype=np.int64)

        for start in range(0, order.size, params.refresh_every):
            if start > 0:
                top = np.argsort(counts)[::-1][: params.list_size]
                chart = top.astype(np.int64)
            window = order[start : start + params.refresh_every]
            apps = np.full(window.size, -1, dtype=np.int64)

            recommended = np.flatnonzero(rng.random(window.size) < params.q)
            if recommended.size:
                # Recommendation-driven: uniform pick from the chart (the
                # user scrolls the "top apps" page).
                apps[recommended] = sample_new_apps(
                    lambda size: chart[rng.integers(0, chart.size, size=size)],
                    window[recommended],
                    ledger,
                    rng,
                    self.max_rejections,
                )
            organic = np.flatnonzero(apps < 0)
            if organic.size:
                apps[organic] = sample_new_apps(
                    lambda size: self._organic.sample(size, seed=rng),
                    window[organic],
                    ledger,
                    rng,
                    self.max_rejections,
                )
            done = apps >= 0
            if not np.any(done):
                continue
            counts += np.bincount(apps[done], minlength=params.n_apps)
            yield EventBatch(window[done], apps[done])

    def iter_events(self, seed: SeedLike = None) -> Iterator[DownloadEvent]:
        """Yield download events under the feedback process."""
        return events_from_batches(self.iter_batches(seed=seed))

    def _draw_recommended(
        self, downloaded: Set[int], chart: np.ndarray, rng
    ) -> Optional[int]:
        for _ in range(self.max_rejections):
            candidate = int(chart[int(rng.integers(0, chart.size))])
            if candidate not in downloaded:
                return candidate
        return None

    def _draw_organic(self, downloaded: Set[int], rng) -> Optional[int]:
        for _ in range(self.max_rejections):
            candidate = int(self._organic.sample(1, seed=rng)[0])
            if candidate not in downloaded:
                return candidate
        return None

    def iter_events_legacy(self, seed: SeedLike = None) -> Iterator[DownloadEvent]:
        """Reference per-event implementation (benchmark baseline).

        Same process as :meth:`iter_batches` -- the chart freezes for
        ``refresh_every`` download slots and a failed recommendation
        falls through to the organic law -- resolved one event at a
        time.
        """
        params = self.params
        rng = make_rng(seed)
        budgets = per_user_budgets(params.total_downloads, params.n_users, rng)
        order = interleaved_user_order(budgets, rng)
        downloaded: List[Set[int]] = [set() for _ in range(params.n_users)]
        counts = np.zeros(params.n_apps, dtype=np.int64)
        chart = np.arange(min(params.list_size, params.n_apps), dtype=np.int64)
        for slot, user_id in enumerate(order):
            if slot > 0 and slot % params.refresh_every == 0:
                top = np.argsort(counts)[::-1][: params.list_size]
                chart = top.astype(np.int64)
            user_downloads = downloaded[user_id]
            if len(user_downloads) >= params.n_apps:
                continue
            candidate: Optional[int] = None
            if rng.random() < params.q:
                candidate = self._draw_recommended(user_downloads, chart, rng)
            if candidate is None:
                candidate = self._draw_organic(user_downloads, rng)
            if candidate is None:
                continue
            user_downloads.add(candidate)
            counts[candidate] += 1
            yield DownloadEvent(user_id=int(user_id), app_index=int(candidate))
