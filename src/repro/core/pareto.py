"""Pareto-effect summaries (Section 3.1).

Figure 2 of the paper shows that a small share of apps carries most of the
downloads: roughly 10% of apps account for 70-90% of downloads across the
four stores, with the top 1% alone responsible for 30-70%.  This module
computes those headline statistics plus the full CDF curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.stats.distributions import cumulative_share, pareto_curve


@dataclass(frozen=True)
class ParetoSummary:
    """Headline concentration statistics of a download distribution."""

    n_apps: int
    total_downloads: int
    share_top_1pct: float
    share_top_10pct: float
    share_top_20pct: float
    gini: float

    def describe(self) -> str:
        """A one-line Figure-2 style caption."""
        return (
            f"top 1% of apps -> {self.share_top_1pct * 100:.1f}% of downloads; "
            f"top 10% -> {self.share_top_10pct * 100:.1f}%; "
            f"top 20% -> {self.share_top_20pct * 100:.1f}% "
            f"(Gini {self.gini:.3f})"
        )


def gini_coefficient(values) -> float:
    """Gini coefficient of a non-negative distribution.

    Not in the paper, but the standard single-number summary of the
    concentration Figure 2 visualizes; used by the ablation benches.
    """
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if np.any(values < 0):
        raise ValueError("values must be non-negative")
    total = values.sum()
    if total <= 0:
        raise ValueError("values must have a positive sum")
    n = values.size
    index = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (index * values).sum() / (n * total)) - (n + 1.0) / n)


def pareto_summary(downloads) -> ParetoSummary:
    """Compute the Figure-2 headline statistics for a download vector."""
    downloads = np.asarray(downloads, dtype=np.float64)
    shares = cumulative_share(downloads, [0.01, 0.10, 0.20])
    return ParetoSummary(
        n_apps=int(downloads.size),
        total_downloads=int(downloads.sum()),
        share_top_1pct=float(shares[0]),
        share_top_10pct=float(shares[1]),
        share_top_20pct=float(shares[2]),
        gini=gini_coefficient(downloads),
    )


def pareto_curves(
    downloads_by_store: Dict[str, Sequence[float]], points: int = 100
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """The full Figure-2 CDF curve per store.

    Returns ``store -> (x, y)`` with x the percentage of apps (most popular
    first) and y the cumulative percentage of downloads.
    """
    return {
        store: pareto_curve(downloads, points=points)
        for store, downloads in downloads_by_store.items()
    }
