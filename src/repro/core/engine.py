"""Chunked, vectorized Monte Carlo engine for the workload models.

The paper's headline experiments (Figures 8-10 and 19) replay millions of
fetch-at-most-once downloads.  A per-event Python loop -- one
``AliasSampler.sample_one`` call plus one ``set`` membership check per
download -- runs at interpreter speed and wastes the O(1) batched draws
the alias method was chosen for.  This module batches the inner loop:

- :class:`EventBatch` -- a structured chunk of downloads (parallel
  ``user_ids`` / ``app_indices`` arrays) that replaces per-event objects
  on the hot path;
- :class:`DownloadLedger` -- the fetch-at-most-once membership structure,
  vectorized: a dense ``(n_users, n_apps)`` boolean matrix when it fits
  the memory budget, a packed bitmap at one bit per cell when that fits,
  and a per-user ``set`` fallback otherwise;
- :func:`sample_new_apps` -- the shared rejection kernel: draw candidate
  apps for a whole batch of user slots, reject already-downloaded (and
  intra-batch duplicate) picks vectorized, retry up to ``max_rejections``
  times;
- ``*_event_batches`` generators -- the three models of
  :mod:`repro.core.models` expressed as chunked batch streams.

The per-user decision process is untouched: every user still runs the
exact Markov chain of Section 5.1, so the batched streams are
statistically equivalent to the legacy per-event paths (the test suite
asserts this); only the interleaving of *independent* users differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Mapping, Optional, Set

import numpy as np

from repro.obs.metrics import get_registry
from repro.stats.sampling import AliasSampler

#: Default number of download slots processed per vectorized chunk.
DEFAULT_BATCH_SIZE = 65_536

#: Default ceiling on the ledger's membership structure, in bytes.  A
#: dense boolean matrix is used when ``n_users * n_apps`` fits; a packed
#: bitmap when an eighth of that fits; otherwise per-user sets.
DEFAULT_MEMORY_BUDGET = 1 << 30


@dataclass(frozen=True, slots=True)
class DownloadEvent:
    """One simulated download: which user fetched which app."""

    user_id: int
    app_index: int


class EventBatch:
    """A chunk of download events as parallel arrays.

    The batched pipeline moves ``(user, app)`` pairs around as ``int64``
    arrays instead of one frozen dataclass per event; consumers that need
    objects call :meth:`iter_events`.
    """

    __slots__ = ("user_ids", "app_indices")

    def __init__(self, user_ids, app_indices) -> None:
        self.user_ids = np.asarray(user_ids, dtype=np.int64)
        self.app_indices = np.asarray(app_indices, dtype=np.int64)
        if self.user_ids.shape != self.app_indices.shape:
            raise ValueError(
                f"user_ids and app_indices must align, got "
                f"{self.user_ids.shape} vs {self.app_indices.shape}"
            )
        if self.user_ids.ndim != 1:
            raise ValueError("EventBatch arrays must be 1-D")

    def __len__(self) -> int:
        return self.user_ids.size

    def __repr__(self) -> str:
        return f"EventBatch(n_events={len(self)})"

    def iter_events(self) -> Iterator[DownloadEvent]:
        """Yield the batch as per-event objects (compatibility path)."""
        for user_id, app_index in zip(
            self.user_ids.tolist(), self.app_indices.tolist()
        ):
            yield DownloadEvent(user_id=user_id, app_index=app_index)

    @staticmethod
    def concatenate(batches: List["EventBatch"]) -> "EventBatch":
        """Merge several batches into one, preserving order."""
        if not batches:
            return EventBatch(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        return EventBatch(
            np.concatenate([batch.user_ids for batch in batches]),
            np.concatenate([batch.app_indices for batch in batches]),
        )


class DownloadLedger:
    """Vectorized fetch-at-most-once bookkeeping for a user population.

    Three storage modes, picked by memory footprint against
    ``memory_budget_bytes`` (or forced via ``mode=`` for testing):

    - ``"dense"`` -- ``(n_users, n_apps)`` boolean matrix, one byte per
      cell; fastest lookups.
    - ``"packed"`` -- ``(n_users, ceil(n_apps / 8))`` ``uint8`` bitmap,
      one *bit* per cell; an eighth of the memory for a couple of extra
      shifts per lookup.  This is what the paper-scale reference store
      (60k apps x 100k users) lands on under the default 1 GiB budget.
    - ``"sets"`` -- one Python ``set`` per user; O(events) memory, used
      when even the bitmap would not fit.

    All modes consume no randomness and implement identical semantics, so
    simulation output is bit-for-bit identical across modes (tested).
    """

    _MODES = ("dense", "packed", "sets")

    def __init__(
        self,
        n_users: int,
        n_apps: int,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        mode: Optional[str] = None,
    ) -> None:
        if n_users < 1 or n_apps < 1:
            raise ValueError("n_users and n_apps must be positive")
        if mode is None:
            cells = n_users * n_apps
            if cells <= memory_budget_bytes:
                mode = "dense"
            elif cells // 8 <= memory_budget_bytes:
                mode = "packed"
            else:
                mode = "sets"
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        self.n_users = n_users
        self.n_apps = n_apps
        self.mode = mode
        #: Number of distinct apps each user has downloaded.
        self.counts = np.zeros(n_users, dtype=np.int64)
        self._dense: Optional[np.ndarray] = None
        self._packed: Optional[np.ndarray] = None
        self._sets: Optional[List[Set[int]]] = None
        if mode == "dense":
            self._dense = np.zeros((n_users, n_apps), dtype=bool)
        elif mode == "packed":
            self._packed = np.zeros((n_users, (n_apps + 7) // 8), dtype=np.uint8)
        else:
            self._sets = [set() for _ in range(n_users)]

    def contains(self, users: np.ndarray, apps: np.ndarray) -> np.ndarray:
        """Boolean mask: has ``users[i]`` already downloaded ``apps[i]``?"""
        if self._dense is not None:
            return self._dense[users, apps]
        if self._packed is not None:
            bytes_ = self._packed[users, apps >> 3]
            return ((bytes_ >> (apps & 7).astype(np.uint8)) & 1).astype(bool)
        sets = self._sets
        assert sets is not None
        return np.fromiter(
            (app in sets[user] for user, app in zip(users.tolist(), apps.tolist())),
            dtype=bool,
            count=users.size,
        )

    def add(self, users: np.ndarray, apps: np.ndarray) -> None:
        """Record downloads.  Pairs must be new and free of duplicates."""
        if users.size == 0:
            return
        np.add.at(self.counts, users, 1)
        if self._dense is not None:
            self._dense[users, apps] = True
        elif self._packed is not None:
            bits = (np.uint8(1) << (apps & 7).astype(np.uint8)).astype(np.uint8)
            np.bitwise_or.at(self._packed, (users, apps >> 3), bits)
        else:
            sets = self._sets
            assert sets is not None
            for user, app in zip(users.tolist(), apps.tolist()):
                sets[user].add(app)

    def saturated(self, users: np.ndarray) -> np.ndarray:
        """Mask of users that have already downloaded every app."""
        return self.counts[users] >= self.n_apps


def per_user_budgets(
    total_downloads: int, n_users: int, rng: np.random.Generator
) -> np.ndarray:
    """Split ``total_downloads`` into per-user budgets, as even as possible.

    Every user gets ``floor(D / U)`` downloads, and the remainder is
    assigned to a random subset of users, matching the paper's "each user
    downloads d apps" with integer budgets.
    """
    base = total_downloads // n_users
    budgets = np.full(n_users, base, dtype=np.int64)
    remainder = total_downloads - base * n_users
    if remainder > 0:
        lucky = rng.choice(n_users, size=remainder, replace=False)
        budgets[lucky] += 1
    return budgets


def interleaved_user_order(
    budgets: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Shuffle user download slots so the event stream interleaves users.

    Each user ``u`` appears ``budgets[u]`` times.  A global shuffle models
    users downloading concurrently over the measurement period rather than
    one user finishing before the next starts, which matters to consumers
    of the *event order* (the LRU cache experiment).
    """
    order = np.repeat(np.arange(budgets.size, dtype=np.int64), budgets)
    rng.shuffle(order)
    return order


def sample_new_apps(
    draw: Callable[[int], np.ndarray],
    users: np.ndarray,
    ledger: DownloadLedger,
    rng: np.random.Generator,
    max_rejections: int,
    available: Optional[np.ndarray] = None,
    accept_probability: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Draw one not-yet-downloaded app per user slot, vectorized.

    ``draw(size)`` produces candidate app indices (e.g. an alias-sampler
    batch, or uniform picks from a chart).  ``users`` may repeat a user id
    (several pending slots of the same user); intra-batch duplicates are
    rejected alongside ledger hits, so fetch-at-most-once holds exactly.
    Accepted pairs are recorded into the ledger immediately.

    ``available`` (boolean per app) rejects draws of unlisted apps;
    ``accept_probability`` (float per app) thins accepted draws, modelling
    selective uptake (e.g. paid apps skipped during casual browsing).

    Returns an ``int64`` array aligned with ``users``; ``-1`` marks slots
    for which no new app was found within ``max_rejections`` attempts.
    """
    metrics = get_registry()
    retry_counter = metrics.counter("engine.rejection_retries")
    apps = np.full(users.size, -1, dtype=np.int64)
    pending = np.flatnonzero(~ledger.saturated(users))
    for round_index in range(max_rejections):
        if pending.size == 0:
            break
        if round_index:
            # Redraw rounds only: the first draw of a batch is not a retry.
            retry_counter.add(1)
        draws = draw(pending.size)
        ok = ~ledger.contains(users[pending], draws)
        if available is not None:
            ok &= available[draws]
        if accept_probability is not None:
            probs = accept_probability[draws]
            thin = probs < 1.0
            if np.any(thin & ok):
                ok &= (~thin) | (rng.random(pending.size) < probs)
        # Reject intra-batch duplicates: among slots surviving so far,
        # only the first occurrence of each (user, app) pair may commit.
        keys = users[pending] * np.int64(ledger.n_apps) + draws
        _, first_positions = np.unique(keys, return_index=True)
        first = np.zeros(pending.size, dtype=bool)
        first[first_positions] = True
        ok &= first
        accepted = pending[ok]
        if accepted.size:
            apps[accepted] = draws[ok]
            ledger.add(users[accepted], draws[ok])
        pending = pending[~ok]
        if pending.size:
            pending = pending[~ledger.saturated(users[pending])]
    if pending.size:
        metrics.counter("engine.slots_unfilled").add(int(pending.size))
    return apps


def sample_clustered_new_apps(
    slots: np.ndarray,
    users: np.ndarray,
    chosen_clusters: np.ndarray,
    cluster_samplers: Mapping[int, AliasSampler],
    cluster_members: Mapping[int, np.ndarray],
    ledger: DownloadLedger,
    rng: np.random.Generator,
    max_rejections: int,
    out: np.ndarray,
    available: Optional[np.ndarray] = None,
    accept_probability: Optional[np.ndarray] = None,
) -> None:
    """Clustered draws for a batch of slots, grouped by chosen cluster.

    ``slots`` indexes into ``out`` (and aligns with ``users`` /
    ``chosen_clusters``).  Each slot draws from its cluster's internal
    Zipf law via the shared rejection kernel; failures stay ``-1`` in
    ``out`` and the caller decides the fallback (the models fall back to
    the global law, per Section 5.1).
    """
    # One iteration per *cluster*, not per event: the distinct-cluster
    # count is tiny next to the batch the kernel vectorizes over.
    for cluster in np.unique(chosen_clusters):  # repro: noqa=RPL020 -- grouped dispatch, O(n_clusters) not O(n_events)
        sampler = cluster_samplers.get(int(cluster))
        if sampler is None:  # empty cluster: nothing to draw
            continue
        members = cluster_members[int(cluster)]
        group = chosen_clusters == cluster
        group_slots = slots[group]
        drawn = sample_new_apps(
            lambda size: members[sampler.sample(size, seed=rng)],
            users[group],
            ledger,
            rng,
            max_rejections,
            available=available,
            accept_probability=accept_probability,
        )
        out[group_slots] = drawn


class VisitedClusters:
    """Per-user visited-cluster lists, vectorized.

    The APP-CLUSTERING process picks uniformly among the clusters a user
    has already downloaded from.  Lists are stored as a fixed-width
    ``(n_users, width)`` matrix plus a fill count; the width is bounded by
    ``min(n_clusters, max downloads per user)`` since a user cannot visit
    more clusters than apps they download.
    """

    def __init__(self, n_users: int, n_clusters: int, max_per_user: int) -> None:
        width = max(1, min(n_clusters, max_per_user))
        self._lists = np.zeros((n_users, width), dtype=np.int64)
        self._count = np.zeros(n_users, dtype=np.int64)
        self._width = width

    @property
    def counts(self) -> np.ndarray:
        """Visited-cluster count per user (a view; do not mutate)."""
        return self._count

    def choose(self, users: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Uniformly pick one visited cluster per user (counts must be > 0)."""
        counts = self._count[users]
        picks = (rng.random(users.size) * counts).astype(np.int64)
        np.minimum(picks, counts - 1, out=picks)  # guard the r == 1.0 edge
        return self._lists[users, picks]

    def record(self, users: np.ndarray, clusters: np.ndarray) -> None:
        """Append clusters not yet in each user's list (users unique)."""
        if users.size == 0:
            return
        rows = self._lists[users]
        positions = np.arange(self._width, dtype=np.int64)[None, :]
        filled = positions < self._count[users, None]
        already = np.any(filled & (rows == clusters[:, None]), axis=1)
        fresh = ~already
        if np.any(fresh):
            fresh_users = users[fresh]
            self._lists[fresh_users, self._count[fresh_users]] = clusters[fresh]
            self._count[fresh_users] += 1


def _chunks(order: np.ndarray, batch_size: int) -> Iterator[np.ndarray]:
    for start in range(0, order.size, batch_size):
        yield order[start : start + batch_size]


def zipf_event_batches(
    sampler: AliasSampler,
    n_users: int,
    total_downloads: int,
    rng: np.random.Generator,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[EventBatch]:
    """Pure ZIPF downloads as a chunked batch stream."""
    metrics = get_registry()
    batch_counter = metrics.counter("engine.batches")
    event_counter = metrics.counter("engine.events")
    budgets = per_user_budgets(total_downloads, n_users, rng)
    order = interleaved_user_order(budgets, rng)
    for chunk in _chunks(order, batch_size):
        batch_counter.add(1)
        event_counter.add(int(chunk.size))
        yield EventBatch(chunk, sampler.sample(chunk.size, seed=rng))


def zipf_amo_event_batches(
    sampler: AliasSampler,
    n_users: int,
    total_downloads: int,
    rng: np.random.Generator,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_rejections: int = 256,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    ledger_mode: Optional[str] = None,
) -> Iterator[EventBatch]:
    """ZIPF-at-most-once downloads as a chunked batch stream.

    Each chunk of the interleaved slot order is resolved with the
    vectorized rejection kernel; slots that fail ``max_rejections``
    attempts are dropped, exactly like the legacy per-event path.
    """
    metrics = get_registry()
    batch_counter = metrics.counter("engine.batches")
    event_counter = metrics.counter("engine.events")
    ledger = DownloadLedger(
        n_users, sampler.n_outcomes, memory_budget_bytes, mode=ledger_mode
    )
    budgets = per_user_budgets(total_downloads, n_users, rng)
    order = interleaved_user_order(budgets, rng)
    for chunk in _chunks(order, batch_size):
        apps = sample_new_apps(
            lambda size: sampler.sample(size, seed=rng),
            chunk,
            ledger,
            rng,
            max_rejections,
        )
        done = apps >= 0
        batch_counter.add(1)
        event_counter.add(int(np.count_nonzero(done)))
        yield EventBatch(chunk[done], apps[done])


def app_clustering_event_batches(
    n_users: int,
    total_downloads: int,
    p: float,
    global_sampler: AliasSampler,
    cluster_samplers: Mapping[int, AliasSampler],
    cluster_members: Mapping[int, np.ndarray],
    cluster_of: np.ndarray,
    rng: np.random.Generator,
    max_rejections: int = 64,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    ledger_mode: Optional[str] = None,
) -> Iterator[EventBatch]:
    """APP-CLUSTERING downloads as a round-vectorized batch stream.

    Round ``k`` processes the ``k``-th download of every user that still
    has budget, vectorized across the whole population: clustered slots
    draw per visited cluster (grouped), failures and non-clustered slots
    fall back to the global law -- the exact per-user process of
    Section 5.1.  Users are independent, so vectorizing across them (and
    shuffling within each round) changes only the interleaving of the
    event stream, not its statistics.  One batch is emitted per round.
    """
    metrics = get_registry()
    batch_counter = metrics.counter("engine.batches")
    event_counter = metrics.counter("engine.events")
    n_apps = cluster_of.size
    ledger = DownloadLedger(
        n_users, n_apps, memory_budget_bytes, mode=ledger_mode
    )
    budgets = per_user_budgets(total_downloads, n_users, rng)
    n_clusters = int(cluster_of.max()) + 1 if n_apps else 1
    max_budget = int(budgets.max()) if budgets.size else 0
    visited = VisitedClusters(n_users, n_clusters, max_budget)
    remaining = budgets.copy()

    while True:
        holders = np.flatnonzero(remaining > 0)
        if holders.size == 0:
            break
        remaining[holders] -= 1
        active = holders[~ledger.saturated(holders)]
        if active.size == 0:
            continue
        rng.shuffle(active)

        apps = np.full(active.size, -1, dtype=np.int64)
        clustered = (visited.counts[active] > 0) & (rng.random(active.size) < p)
        slots = np.flatnonzero(clustered)
        if slots.size:
            chosen = visited.choose(active[slots], rng)
            sample_clustered_new_apps(
                slots,
                active[slots],
                chosen,
                cluster_samplers,
                cluster_members,
                ledger,
                rng,
                max_rejections,
                out=apps,
            )
        fallback = np.flatnonzero(apps < 0)
        if fallback.size:
            apps[fallback] = sample_new_apps(
                lambda size: global_sampler.sample(size, seed=rng),
                active[fallback],
                ledger,
                rng,
                max_rejections,
            )
        done = np.flatnonzero(apps >= 0)
        if done.size == 0:
            continue
        done_users = active[done]
        done_apps = apps[done]
        visited.record(done_users, cluster_of[done_apps])
        batch_counter.add(1)
        event_counter.add(int(done.size))
        yield EventBatch(done_users, done_apps)


def counts_from_batches(
    batches: Iterator[EventBatch], n_apps: int
) -> np.ndarray:
    """Accumulate per-app download counts over a batch stream."""
    counts = np.zeros(n_apps, dtype=np.int64)
    for batch in batches:
        counts += np.bincount(batch.app_indices, minlength=n_apps)
    return counts


def events_from_batches(
    batches: Iterator[EventBatch],
) -> Iterator[DownloadEvent]:
    """Flatten a batch stream into per-event objects (compat adapter)."""
    for batch in batches:
        yield from batch.iter_events()
