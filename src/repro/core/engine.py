"""Chunked, vectorized Monte Carlo engine for the workload models.

The paper's headline experiments (Figures 8-10 and 19) replay millions of
fetch-at-most-once downloads.  A per-event Python loop -- one
``AliasSampler.sample_one`` call plus one ``set`` membership check per
download -- runs at interpreter speed and wastes the O(1) batched draws
the alias method was chosen for.  This module batches the inner loop:

- :class:`EventBatch` -- a structured chunk of downloads (parallel
  ``user_ids`` / ``app_indices`` arrays) that replaces per-event objects
  on the hot path;
- :class:`DownloadLedger` -- the fetch-at-most-once membership structure,
  vectorized: a dense ``(n_users, n_apps)`` boolean matrix when it fits
  the memory budget, a packed bitmap at one bit per cell when that fits,
  and a per-user ``set`` fallback otherwise;
- :func:`masked_head_tail_draw` -- the near-rejection-free sampling
  kernel: the top-``K`` head of the distribution is renormalized exactly
  against each user's ownership bits (one packed-ledger byte), and tail
  picks from the alias table are thinned against the ledger -- a
  near-certain accept, so redraw loops all but disappear;
- :func:`sample_new_apps` -- the legacy rejection kernel, kept for
  callers that need ``available`` masks or acceptance thinning (the
  feedback and behavior models): draw candidate apps for a whole batch
  of user slots, reject already-downloaded (and intra-batch duplicate)
  picks vectorized, retry up to ``max_rejections`` times;
- ``*_event_batches`` generators -- the three models of
  :mod:`repro.core.models` expressed as chunked batch streams.  The
  fetch-at-most-once streams are round-vectorized: round ``k`` serves
  the ``k``-th download of every user with budget left, so user slots
  within a kernel call are unique by construction (the batch-level dedup
  happens before any ledger lookup, not after a collision).

The per-user decision process is untouched: every user still runs the
exact Markov chain of Section 5.1, so the batched streams are
statistically equivalent to the legacy per-event paths (the test suite
asserts this); only the interleaving of *independent* users differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Mapping, Optional, Set

import numpy as np

from repro.devtools.flow import pure
from repro.obs.metrics import get_registry
from repro.stats.sampling import AliasSampler, HeadTailSampler

#: Default number of download slots processed per vectorized chunk.
DEFAULT_BATCH_SIZE = 65_536

#: Default ceiling on the ledger's membership structure, in bytes.  A
#: dense boolean matrix is used when ``n_users * n_apps`` fits; a packed
#: bitmap when an eighth of that fits; otherwise per-user sets.
DEFAULT_MEMORY_BUDGET = 1 << 30


@dataclass(frozen=True, slots=True)
class DownloadEvent:
    """One simulated download: which user fetched which app."""

    user_id: int
    app_index: int


class EventBatch:
    """A chunk of download events as parallel arrays.

    The batched pipeline moves ``(user, app)`` pairs around as ``int64``
    arrays instead of one frozen dataclass per event; consumers that need
    objects call :meth:`iter_events`.
    """

    __slots__ = ("user_ids", "app_indices")

    def __init__(self, user_ids, app_indices) -> None:
        self.user_ids = np.asarray(user_ids, dtype=np.int64)
        self.app_indices = np.asarray(app_indices, dtype=np.int64)
        if self.user_ids.shape != self.app_indices.shape:
            raise ValueError(
                f"user_ids and app_indices must align, got "
                f"{self.user_ids.shape} vs {self.app_indices.shape}"
            )
        if self.user_ids.ndim != 1:
            raise ValueError("EventBatch arrays must be 1-D")

    def __len__(self) -> int:
        return self.user_ids.size

    def __repr__(self) -> str:
        return f"EventBatch(n_events={len(self)})"

    def iter_events(self) -> Iterator[DownloadEvent]:
        """Yield the batch as per-event objects (compatibility path)."""
        for user_id, app_index in zip(
            self.user_ids.tolist(), self.app_indices.tolist()
        ):
            yield DownloadEvent(user_id=user_id, app_index=app_index)

    @staticmethod
    def concatenate(batches: List["EventBatch"]) -> "EventBatch":
        """Merge several batches into one, preserving order."""
        if not batches:
            return EventBatch(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        return EventBatch(
            np.concatenate([batch.user_ids for batch in batches]),
            np.concatenate([batch.app_indices for batch in batches]),
        )


class DownloadLedger:
    """Vectorized fetch-at-most-once bookkeeping for a user population.

    Three storage modes, picked by memory footprint against
    ``memory_budget_bytes`` (or forced via ``mode=`` for testing):

    - ``"dense"`` -- ``(n_users, n_apps)`` boolean matrix, one byte per
      cell; fastest lookups.
    - ``"packed"`` -- ``(n_users, ceil(n_apps / 8))`` ``uint8`` bitmap,
      one *bit* per cell; an eighth of the memory for a couple of extra
      shifts per lookup.  This is what the paper-scale reference store
      (60k apps x 100k users) lands on under the default 1 GiB budget.
    - ``"compact"`` -- a ``(n_users, capacity)`` ``int32`` matrix of each
      user's downloaded app ids (``-1`` padded), available when the
      caller knows an upper bound on downloads per user (the budgeted
      streams always do).  At paper scale this is a few MB against the
      bitmap's hundreds -- the whole structure stays cache-resident, and
      sparse tail downloads stop page-faulting across a giant address
      space.  Head-ownership bitmasks for registered top-``K`` app lists
      (see :meth:`head_bits`) are maintained as contiguous per-head rows.
    - ``"sets"`` -- one Python ``set`` per user; O(events) memory, used
      when even the bitmap would not fit.

    All modes consume no randomness and implement identical semantics, so
    simulation output is bit-for-bit identical across modes (tested).
    """

    _MODES = ("dense", "packed", "compact", "sets")

    def __init__(
        self,
        n_users: int,
        n_apps: int,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        mode: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if n_users < 1 or n_apps < 1:
            raise ValueError("n_users and n_apps must be positive")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive when given")
        if mode is None:
            mode = self._select_mode(
                n_users, n_apps, memory_budget_bytes, capacity
            )
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        if mode == "compact" and capacity is None:
            raise ValueError("compact mode requires a per-user capacity")
        self.n_users = n_users
        self.n_apps = n_apps
        self.mode = mode
        self.capacity = capacity
        #: Number of distinct apps each user has downloaded.
        self.counts = np.zeros(n_users, dtype=np.int64)
        #: Total recorded downloads (drives the late-registration rebuild).
        self._n_events = 0
        self._dense: Optional[np.ndarray] = None
        self._packed: Optional[np.ndarray] = None
        self._owned: Optional[np.ndarray] = None
        self._sets: Optional[List[Set[int]]] = None
        # Registered head lists (compact mode): per-head uint8 mask rows
        # plus app -> (head row, bit) tables so adds keep masks current.
        self._head_rows: dict = {}
        self._grouped_rows: dict = {}
        self._head_masks: Optional[np.ndarray] = None
        self._head_slot_row: Optional[np.ndarray] = None
        self._head_slot_bit: Optional[np.ndarray] = None
        if mode == "dense":
            self._dense = np.zeros((n_users, n_apps), dtype=bool)
        elif mode == "compact":
            assert capacity is not None
            self._owned = np.full((n_users, capacity), -1, dtype=np.int32)
        elif mode == "packed":
            # Byte-column major: row ``b`` holds bit-byte ``b`` of every
            # user.  Apps are Zipf-popular, so almost all lookups hit the
            # first few hundred byte columns; this layout keeps that hot
            # set contiguous (a few dozen MB at paper scale) instead of
            # strided across the whole bitmap, and makes the head
            # kernel's byte-0 gather a sequential read.
            self._packed = np.zeros(((n_apps + 7) // 8, n_users), dtype=np.uint8)
        else:
            self._sets = [set() for _ in range(n_users)]

    @classmethod
    def _select_mode(
        cls,
        n_users: int,
        n_apps: int,
        memory_budget_bytes: int,
        capacity: Optional[int],
    ) -> str:
        """Pick the backend from actual footprints against the budget.

        Dense wins while it fits (fastest lookups).  Otherwise, of the
        two sub-dense array backends that fit -- the packed bitmap and,
        when a per-user ``capacity`` is known, the compact owned-apps
        matrix -- the smaller one wins; at paper scale compact is
        hundreds of times smaller and entirely cache-resident.  Sets are
        the last resort.
        """
        if cls.backend_bytes("dense", n_users, n_apps) <= memory_budget_bytes:
            return "dense"
        candidates = []
        packed_bytes = cls.backend_bytes("packed", n_users, n_apps)
        if packed_bytes <= memory_budget_bytes:
            candidates.append((packed_bytes, "packed"))
        if capacity is not None:
            compact_bytes = cls.backend_bytes(
                "compact", n_users, n_apps, capacity
            )
            if compact_bytes <= memory_budget_bytes:
                candidates.append((compact_bytes, "compact"))
        if candidates:
            return min(candidates)[1]
        return "sets"

    @staticmethod
    def backend_bytes(
        mode: str, n_users: int, n_apps: int, capacity: Optional[int] = None
    ) -> int:
        """Exact allocation of a membership backend, in bytes.

        Mode selection used to estimate the packed bitmap as
        ``n_users * n_apps // 8``, which undercounts the per-row byte
        padding: the bitmap really allocates ``ceil(n_apps / 8)`` bytes
        per user.  The ``counts`` vector is excluded -- every mode
        carries it, so it cannot change which backend fits a budget.
        For ``"sets"`` this is the empty-structure baseline (one empty
        ``set`` per user); set storage grows with recorded events, which
        :meth:`footprint_bytes` accounts for.
        """
        if mode == "dense":
            return n_users * n_apps
        if mode == "packed":
            return n_users * ((n_apps + 7) // 8)
        if mode == "compact":
            if capacity is None:
                raise ValueError("compact footprint requires a capacity")
            return n_users * capacity * 4
        if mode == "sets":
            import sys

            return n_users * sys.getsizeof(set())
        raise ValueError(f"unknown ledger mode: {mode!r}")

    def footprint_bytes(self) -> int:
        """Actual current footprint of the membership structure, in bytes."""
        if self._dense is not None:
            return self._dense.nbytes
        if self._packed is not None:
            return self._packed.nbytes
        if self._owned is not None:
            masks = 0 if self._head_masks is None else self._head_masks.nbytes
            return self._owned.nbytes + masks
        sets = self._sets
        assert sets is not None
        import sys

        return sum(sys.getsizeof(entries) for entries in sets)

    def contains(self, users: np.ndarray, apps: np.ndarray) -> np.ndarray:
        """Boolean mask: has ``users[i]`` already downloaded ``apps[i]``?"""
        if self._dense is not None:
            return self._dense[users, apps]
        if self._packed is not None:
            bytes_ = self._packed[apps >> 3, users]
            return ((bytes_ >> (apps & 7).astype(np.uint8)) & 1).astype(bool)
        if self._owned is not None:
            rows = self._owned[users]
            # asarray is a no-copy view when callers already pass int32
            # (the fused kernel's tail draws do).
            return (rows == np.asarray(apps, dtype=np.int32)[:, None]).any(
                axis=1
            )
        sets = self._sets
        assert sets is not None
        return np.fromiter(
            (app in sets[user] for user, app in zip(users.tolist(), apps.tolist())),
            dtype=bool,
            count=users.size,
        )

    def add(self, users: np.ndarray, apps: np.ndarray) -> None:
        """Record downloads.  Pairs must be new and free of duplicates."""
        if users.size == 0:
            return
        if self._owned is not None:
            if np.unique(users).size == users.size:
                self.add_unique(users, apps)
            else:
                # Repeated users need sequential slot assignment; this is
                # the compatibility path, the budgeted streams never
                # repeat a user within a call.
                owned = self._owned
                for user, app in zip(users.tolist(), apps.tolist()):
                    self._check_capacity_one(user)
                    owned[user, self.counts[user]] = app
                    self.counts[user] += 1
                self._n_events += users.size
                self._update_head_masks(users, apps)
            return
        self._n_events += users.size
        np.add.at(self.counts, users, 1)
        if self._dense is not None:
            self._dense[users, apps] = True
        elif self._packed is not None:
            bits = (np.uint8(1) << (apps & 7).astype(np.uint8)).astype(np.uint8)
            np.bitwise_or.at(self._packed, (apps >> 3, users), bits)
        else:
            sets = self._sets
            assert sets is not None
            for user, app in zip(users.tolist(), apps.tolist()):
                sets[user].add(app)

    def add_unique(self, users: np.ndarray, apps: np.ndarray) -> None:
        """Record downloads for *distinct* users (one pair per user).

        The round-vectorized streams serve at most one download per user
        per kernel call, so ``users`` carries no duplicates and the
        scatter can be a direct fancy-index store instead of the
        ``np.add.at`` / ``np.bitwise_or.at`` unbuffered loops -- the
        difference is a few milliseconds per 65k-slot round.
        """
        if users.size == 0:
            return
        self._n_events += users.size
        if self._owned is not None:
            slots = self.counts[users]
            if int(slots.max()) >= self._owned.shape[1]:
                raise ValueError(
                    "compact ledger capacity exceeded; construct with a "
                    "larger per-user capacity"
                )
            self._owned[users, slots] = apps
            self.counts[users] = slots + 1
            self._update_head_masks(users, apps)
            return
        self.counts[users] += 1
        if self._dense is not None:
            self._dense[users, apps] = True
        elif self._packed is not None:
            columns = apps >> 3
            bits = (np.uint8(1) << (apps & 7).astype(np.uint8)).astype(np.uint8)
            self._packed[columns, users] |= bits
        else:
            sets = self._sets
            assert sets is not None
            for user, app in zip(users.tolist(), apps.tolist()):
                sets[user].add(app)

    def _check_capacity_one(self, user: int) -> None:
        assert self._owned is not None
        if self.counts[user] >= self._owned.shape[1]:
            raise ValueError(
                "compact ledger capacity exceeded; construct with a "
                "larger per-user capacity"
            )

    def _register_head(self, apps: np.ndarray) -> int:
        """Register a head app list and return its mask row index.

        Each registered head gets one contiguous ``(n_users,)`` uint8
        mask row: bit ``j`` of ``masks[row, u]`` says user ``u`` owns
        ``apps[j]``.  Adds keep the masks current through per-app
        ``(row, bit)`` tables; registration after downloads were already
        recorded rebuilds the row from the owned matrix.  An app can sit
        in at most two heads (its global top-``K`` slot and its
        cluster's) -- a third registration of the same app raises.
        """
        assert self._owned is not None
        if apps.size > 8:
            raise ValueError("a head mask row holds at most 8 apps")
        row = len(self._head_rows)
        if self._head_slot_row is None:
            self._head_slot_row = np.full((2, self.n_apps), -1, dtype=np.int16)
            self._head_slot_bit = np.zeros((2, self.n_apps), dtype=np.uint8)
            self._head_masks = np.zeros((8, self.n_users), dtype=np.uint8)
        assert self._head_masks is not None
        if row >= self._head_masks.shape[0]:
            # Grow by doubling; per-registration concatenation would copy
            # the whole mask block once per registered head.
            grown = np.zeros(
                (2 * self._head_masks.shape[0], self.n_users), dtype=np.uint8
            )
            grown[: self._head_masks.shape[0]] = self._head_masks
            self._head_masks = grown
        assert self._head_slot_bit is not None and self._head_masks is not None
        for j, app in enumerate(apps.tolist()):
            if self._head_slot_row[0, app] < 0:
                level = 0
            elif self._head_slot_row[1, app] < 0:
                level = 1
            else:
                raise ValueError(
                    f"app {app} already belongs to two registered heads"
                )
            self._head_slot_row[level, app] = row
            self._head_slot_bit[level, app] = np.uint8(1 << j)
        if self._n_events:
            # Late registration: rebuild ownership bits from the owned
            # matrix.  Streams register heads on an empty ledger, where
            # this scan is skipped entirely (rows are pre-zeroed).
            mask = np.zeros(self.n_users, dtype=np.uint8)
            for j, app in enumerate(apps.tolist()):
                mask |= (
                    (self._owned == app).any(axis=1).astype(np.uint8)
                    << np.uint8(j)
                )
            self._head_masks[row] = mask
        self._head_rows[apps.tobytes()] = row
        return row

    def prepare_head(self, apps: np.ndarray) -> None:
        """Pre-register a head app list (compact mode; no-op otherwise).

        Registration is cheapest while the ledger is empty; the kernels
        auto-register on first use, but a stream that knows its heads
        up front should call this right after construction.
        """
        if self._owned is None:
            return
        key = apps.tobytes()
        if key not in self._head_rows:
            self._register_head(apps)

    def _update_head_masks(self, users: np.ndarray, apps: np.ndarray) -> None:
        if self._head_slot_row is None:
            return
        assert self._head_slot_bit is not None and self._head_masks is not None
        # Level 0 hits are common (head mass dominates Zipf draws), so the
        # unconditional scatter wins: non-head apps carry bit 0, and
        # clamping their row to 0 makes the OR a no-op -- cheaper than
        # materializing a hit mask and filtering three arrays.  Level 1
        # only holds apps registered in *two* heads, so there filtering
        # to the few hits first is cheaper.
        rows = self._head_slot_row[0, apps]
        self._head_masks[np.maximum(rows, 0), users] |= self._head_slot_bit[
            0, apps
        ]
        rows = self._head_slot_row[1, apps]
        hit = np.flatnonzero(rows >= 0)
        if hit.size:
            self._head_masks[rows[hit], users[hit]] |= self._head_slot_bit[
                1, apps[hit]
            ]

    def head_bits(self, users: np.ndarray, apps: np.ndarray) -> np.ndarray:
        """Ownership bits for a fixed app list: ``out[k, i]`` is 1 when
        ``users[i]`` already downloaded ``apps[k]``.

        This is the gather the masked head kernel leans on.  In packed
        mode, when every head app falls in the same bitmap byte (true for
        a contiguous top-``K <= 8`` head), the whole matrix comes from a
        single byte-per-user gather plus shifts.
        """
        n = users.size
        k = apps.size
        out = np.empty((k, n), dtype=np.uint8)
        if self._packed is not None:
            columns = apps >> 3
            shifts = (apps & 7).astype(np.uint8)
            if k and np.all(columns == columns[0]):
                chunk = self._packed[columns[0], users]
                for j in range(k):
                    out[j] = (chunk >> shifts[j]) & 1
            else:
                for j in range(k):
                    out[j] = (self._packed[columns[j], users] >> shifts[j]) & 1
            return out
        if self._dense is not None:
            for j in range(k):
                out[j] = self._dense[users, apps[j]]
            return out
        if self._owned is not None:
            row = self._head_rows.get(apps.tobytes())
            if row is None:
                row = self._register_head(apps)
            assert self._head_masks is not None
            chunk = self._head_masks[row, users]
            for j in range(k):
                out[j] = (chunk >> np.uint8(j)) & 1
            return out
        sets = self._sets
        assert sets is not None
        apps_list = apps.tolist()
        for i, user in enumerate(users.tolist()):
            owned = sets[user]
            for j, app in enumerate(apps_list):
                out[j, i] = app in owned
        return out

    def head_bits_grouped(
        self,
        users: np.ndarray,
        head_apps: np.ndarray,
        group_ids: np.ndarray,
    ) -> np.ndarray:
        """Ownership bits when each user draws from its *own* head list.

        ``head_apps`` is a ``(n_groups, k)`` matrix of app ids -- one head
        list per group -- and ``group_ids[i]`` names the group of
        ``users[i]``.  Returns the same ``(k, n)`` layout as
        :meth:`head_bits`.  This is the gather behind the fused clustered
        kernel: one call covers every cluster in a round instead of one
        :meth:`head_bits` call per cluster.  All storage modes answer
        identically (compact reads one registered mask row per group;
        the others gather per head slot), so output stays bit-identical
        across modes.
        """
        n = users.size
        n_groups, k = head_apps.shape
        out = np.empty((k, n), dtype=np.uint8)
        if self._owned is not None:
            chunk = self.head_bytes_grouped(users, head_apps, group_ids)
            assert chunk is not None
            for j in range(k):
                out[j] = (chunk >> np.uint8(j)) & 1
            return out
        if self._dense is not None:
            for j in range(k):
                out[j] = self._dense[users, head_apps[group_ids, j]]
            return out
        if self._packed is not None:
            for j in range(k):
                apps_j = head_apps[group_ids, j]
                out[j] = (
                    self._packed[apps_j >> 3, users]
                    >> (apps_j & 7).astype(np.uint8)
                ) & 1
            return out
        sets = self._sets
        assert sets is not None
        groups_list = group_ids.tolist()
        for i, user in enumerate(users.tolist()):
            owned = sets[user]
            group = groups_list[i]
            for j in range(k):
                out[j, i] = int(head_apps[group, j]) in owned
        return out

    def head_bytes(
        self, users: np.ndarray, apps: np.ndarray
    ) -> Optional[np.ndarray]:
        """Per-user ownership byte for one head list, or ``None``.

        Bit ``j`` of ``out[i]`` says ``users[i]`` owns ``apps[j]`` --
        :meth:`head_bits` packed into one ``uint8``.  Available when the
        backend already stores the byte (compact mask rows; the packed
        bitmap when the whole head shares a byte column); other layouts
        return ``None`` and the caller packs :meth:`head_bits` itself,
        which yields the same byte, so streams stay identical across
        modes.
        """
        if self._owned is not None:
            row = self._head_rows.get(apps.tobytes())
            if row is None:
                row = self._register_head(apps)
            assert self._head_masks is not None
            return self._head_masks[row, users]
        if self._packed is not None and apps.size:
            columns = apps >> 3
            if np.all(columns == columns[0]) and np.array_equal(
                apps & 7, np.arange(apps.size, dtype=apps.dtype)
            ):
                return self._packed[columns[0], users]
        return None

    def head_bytes_grouped(
        self,
        users: np.ndarray,
        head_apps: np.ndarray,
        group_ids: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Per-user ownership *byte* for per-group head lists, or ``None``.

        Same semantics as :meth:`head_bits_grouped` with the ``k`` bits
        packed into one ``uint8`` per user (bit ``j`` = owns
        ``head_apps[group_ids[i], j]``).  Only the compact backend keeps
        head ownership pre-packed; other modes return ``None`` and the
        caller unpacks via :meth:`head_bits_grouped` -- the resulting
        arithmetic is identical either way, so streams stay bit-identical
        across modes.
        """
        if self._owned is None:
            return None
        n_groups = head_apps.shape[0]
        key = head_apps.tobytes()
        rows = self._grouped_rows.get(key)
        if rows is None:
            rows = np.empty(n_groups, dtype=np.int64)
            for g in range(n_groups):  # repro: noqa=RPL020 -- one-time registration, O(n_groups)
                group_head = np.ascontiguousarray(head_apps[g])
                row = self._head_rows.get(group_head.tobytes())
                if row is None:
                    row = self._register_head(group_head)
                rows[g] = row
            self._grouped_rows[key] = rows
        assert self._head_masks is not None
        return self._head_masks[rows[group_ids], users]

    def saturated(self, users: np.ndarray) -> np.ndarray:
        """Mask of users that have already downloaded every app."""
        return self.counts[users] >= self.n_apps


@pure
def _budget_capacity(total_downloads: int, n_users: int) -> int:
    """Largest per-user budget :func:`per_user_budgets` can assign --
    the compact ledger's capacity, known before any randomness."""
    base = total_downloads // n_users
    return max(1, base + (1 if total_downloads % n_users else 0))


@pure
def per_user_budgets(
    total_downloads: int, n_users: int, rng: np.random.Generator
) -> np.ndarray:
    """Split ``total_downloads`` into per-user budgets, as even as possible.

    Every user gets ``floor(D / U)`` downloads, and the remainder is
    assigned to a random subset of users, matching the paper's "each user
    downloads d apps" with integer budgets.
    """
    base = total_downloads // n_users
    budgets = np.full(n_users, base, dtype=np.int64)
    remainder = total_downloads - base * n_users
    if remainder > 0:
        lucky = rng.choice(n_users, size=remainder, replace=False)
        budgets[lucky] += 1
    return budgets


@pure
def interleaved_user_order(
    budgets: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Shuffle user download slots so the event stream interleaves users.

    Each user ``u`` appears ``budgets[u]`` times.  A global shuffle models
    users downloading concurrently over the measurement period rather than
    one user finishing before the next starts, which matters to consumers
    of the *event order* (the LRU cache experiment).
    """
    order = np.repeat(np.arange(budgets.size, dtype=np.int64), budgets)
    rng.shuffle(order)
    return order


@pure
def partition_by_blocks(
    values: np.ndarray, boundaries: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group values into the contiguous blocks a boundary vector defines.

    ``boundaries`` is an ascending ``int64`` vector ``[b_0, ..., b_K]``
    where block ``k`` owns the half-open range ``[b_k, b_{k+1})`` --
    exactly the layout persona segments and sharded user blocks use.
    Returns ``(block_ids, order, starts)``:

    - ``block_ids[i]`` -- block index of ``values[i]``;
    - ``order`` -- a *stable* permutation sorting values by block, so
      relative order inside each block is preserved;
    - ``starts`` -- length ``K + 1``; block ``k``'s members sit at
      ``order[starts[k]:starts[k+1]]``.

    One call replaces a per-element membership loop: downstream code
    touches each block with a single slice (one kernel invocation per
    block, the RPL023 contract).
    """
    values = np.asarray(values, dtype=np.int64)
    bounds = np.asarray(boundaries, dtype=np.int64)
    if bounds.ndim != 1 or bounds.size < 2:
        raise ValueError("boundaries must hold at least [start, stop]")
    n_blocks = bounds.size - 1
    block_ids = np.searchsorted(bounds[1:], values, side="right").astype(
        np.int64
    )
    if values.size and (block_ids.max() >= n_blocks or values.min() < bounds[0]):
        raise ValueError("values fall outside the boundary range")
    order = np.argsort(block_ids, kind="stable")
    starts = np.searchsorted(
        block_ids[order], np.arange(n_blocks + 1, dtype=np.int64)
    )
    return block_ids, order, starts


def sample_new_apps(
    draw: Callable[[int], np.ndarray],
    users: np.ndarray,
    ledger: DownloadLedger,
    rng: np.random.Generator,
    max_rejections: int,
    available: Optional[np.ndarray] = None,
    accept_probability: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Draw one not-yet-downloaded app per user slot, vectorized.

    ``draw(size)`` produces candidate app indices (e.g. an alias-sampler
    batch, or uniform picks from a chart).  ``users`` may repeat a user id
    (several pending slots of the same user); intra-batch duplicates are
    rejected alongside ledger hits, so fetch-at-most-once holds exactly.
    Accepted pairs are recorded into the ledger immediately.

    ``available`` (boolean per app) rejects draws of unlisted apps;
    ``accept_probability`` (float per app) thins accepted draws, modelling
    selective uptake (e.g. paid apps skipped during casual browsing).

    Returns an ``int64`` array aligned with ``users``; ``-1`` marks slots
    for which no new app was found within ``max_rejections`` attempts.
    """
    metrics = get_registry()
    retry_counter = metrics.counter("engine.rejection_retries")
    apps = np.full(users.size, -1, dtype=np.int64)
    pending = np.flatnonzero(~ledger.saturated(users))
    for round_index in range(max_rejections):
        if pending.size == 0:
            break
        if round_index:
            # Redraw rounds only: the first draw of a batch is not a retry.
            retry_counter.add(1)
        draws = draw(pending.size)
        ok = ~ledger.contains(users[pending], draws)
        if available is not None:
            ok &= available[draws]
        if accept_probability is not None:
            probs = accept_probability[draws]
            thin = probs < 1.0
            if np.any(thin & ok):
                ok &= (~thin) | (rng.random(pending.size) < probs)
        # Reject intra-batch duplicates: among slots surviving so far,
        # only the first occurrence of each (user, app) pair may commit.
        keys = users[pending] * np.int64(ledger.n_apps) + draws
        _, first_positions = np.unique(keys, return_index=True)
        first = np.zeros(pending.size, dtype=bool)
        first[first_positions] = True
        ok &= first
        accepted = pending[ok]
        if accepted.size:
            apps[accepted] = draws[ok]
            ledger.add(users[accepted], draws[ok])
        pending = pending[~ok]
        if pending.size:
            pending = pending[~ledger.saturated(users[pending])]
    if pending.size:
        metrics.counter("engine.slots_unfilled").add(int(pending.size))
    unfilled = int(np.count_nonzero(apps < 0))
    if unfilled:
        # Every -1 sentinel is a download that silently never happened --
        # rejection-cap failures *and* pre-saturated slots.  Count them
        # all so saturation is visible in campaign stats.
        metrics.counter("engine.events_unfilled").add(unfilled)
    return apps


def masked_head_tail_draw(
    sampler: HeadTailSampler,
    users: np.ndarray,
    ledger: DownloadLedger,
    rng: np.random.Generator,
    max_rejections: int,
) -> np.ndarray:
    """Draw one not-yet-downloaded app per user, near-rejection-free.

    ``users`` must be **unique** (the round-vectorized streams guarantee
    it: one slot per user per round), so accepted picks cannot collide
    within a call and nothing here mutates the ledger -- the caller
    commits accepted pairs afterwards with :meth:`DownloadLedger.add_unique`.

    The draw is exact, not approximate.  Per user, the target law is the
    input distribution renormalized over apps the user does not own.
    The head (top-``K``) part is materialized: ownership bits from the
    ledger zero out owned head weights, and a single uniform over
    ``masked_head_mass + tail_mass`` both routes the draw and picks the
    head slot (owned slots have zero width in the cumulative sum, so
    they are skipped for free).  Draws routed to the tail sample the
    alias table and are thinned against the ledger; a rejected tail pick
    re-enters the *whole* mixture draw, which is classic rejection
    sampling of the renormalized law with acceptance probability
    ``1 - owned_tail_mass / (masked_head_mass + tail_mass)`` -- near one
    for Zipf-shaped inputs, where ownership concentrates in the head.

    Ledger storage modes consume no randomness and return identical
    bits, so output is bit-identical across modes.  Returns ``-1`` for
    users with nothing left to draw (or, pathologically, users that
    exhaust ``max_rejections`` while owning almost the whole tail);
    failures are counted under ``engine.events_unfilled`` by the stream.
    """
    metrics = get_registry()
    redraw_counter = metrics.counter("engine.tail_redraws")
    n = users.size
    apps = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return apps
    head = sampler.head
    k = head.size
    # Per-user renormalization collapses to table lookups: the masked
    # cumulative head weights depend only on the user's 8-bit ownership
    # byte (see HeadTailSampler.head_byte_tables).  Backends that store
    # the byte hand it over directly; others pack it from the bit
    # matrix -- the same byte either way, so streams stay bit-identical
    # across ledger modes.
    cum_table, avail_table = sampler.head_byte_tables()
    chunk = ledger.head_bytes(users, head)
    if chunk is None:
        bits = ledger.head_bits(users, head)
        chunk = bits[0].copy()
        for j in range(1, k):
            chunk |= bits[j] << np.uint8(j)
    head_avail = avail_table[chunk]
    total = head_avail + np.float32(sampler.tail_weight)
    if sampler.has_tail:
        # Positive tail mass keeps every total positive: all users pend.
        pending = np.arange(n, dtype=np.int64)
        full = True
    else:
        # Users with no head mass left and no tail have nothing to draw.
        pending = np.flatnonzero(total > 0)
        full = pending.size == n
    for attempt in range(max_rejections):
        if pending.size == 0:
            break
        if attempt:
            redraw_counter.add(int(pending.size))
        if full and attempt == 0:
            total_p, avail_p = total, head_avail
        else:
            total_p, avail_p = total[pending], head_avail[pending]
        r = rng.random(pending.size, dtype=np.float32) * total_p
        in_head = r < avail_p
        head_rows = pending[in_head]
        if head_rows.size:
            picks = (cum_table[chunk[head_rows]] <= r[in_head, None]).sum(
                axis=1
            )
            apps[head_rows] = head[picks]
        tail_rows = pending[~in_head]
        if tail_rows.size == 0:
            pending = tail_rows
            continue
        if not sampler.has_tail:
            # r == head_avail exactly (only possible at head_avail == 0
            # boundaries): nothing outside the head to fall back to.
            pending = tail_rows
            continue
        draws = sampler.sample_tail(tail_rows.size, rng)
        fresh = ~ledger.contains(users[tail_rows], draws)
        accepted = tail_rows[fresh]
        apps[accepted] = draws[fresh]
        pending = tail_rows[~fresh]
    return apps


def masked_head_tail_draw_grouped(
    rank_sampler: HeadTailSampler,
    users: np.ndarray,
    group_ids: np.ndarray,
    tail_members: np.ndarray,
    head_apps: np.ndarray,
    ledger: DownloadLedger,
    rng: np.random.Generator,
    max_rejections: int,
) -> np.ndarray:
    """Fused masked draw when every group shares one rank-space law.

    The paper's clustering assigns apps to equal-size clusters with a
    common internal Zipf exponent, so every cluster's distribution is the
    *same* distribution over local popularity ranks -- only the rank ->
    app mapping differs.  That makes one kernel call cover all clusters
    in a round: ``rank_sampler`` holds the shared rank-space head/tail
    split, ``tail_members[g, i]`` maps group ``g``'s ``i``-th tail
    outcome (alias-table order) to a global app id, and
    ``head_apps[g, j]`` is group ``g``'s ``j``-th head app.  Compared to
    one :func:`masked_head_tail_draw` per cluster this trades ~30 small
    dispatches per round for one big one, which is where the clustered
    model's throughput comes from.

    Semantics are identical to grouping by cluster and calling the
    per-cluster kernel -- same masking, same thinning -- though the
    random-number consumption order differs (draws interleave across
    clusters), so the two paths produce different but equally valid
    streams.  ``users`` must be unique, as in the base kernel.
    """
    metrics = get_registry()
    redraw_counter = metrics.counter("engine.tail_redraws")
    n = users.size
    apps = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return apps
    k = rank_sampler.head_size
    # Shared rank-space weights mean the masked renormalization depends
    # only on each user's 8-bit ownership byte -- two table gathers
    # replace the per-user cumulative loop (see
    # HeadTailSampler.head_byte_tables).  Compact ledgers hand the byte
    # over directly; other modes pack it from the bit matrix, producing
    # the same byte, so streams stay bit-identical across storage modes.
    cum_table, avail_table = rank_sampler.head_byte_tables()
    chunk = ledger.head_bytes_grouped(users, head_apps, group_ids)
    if chunk is None:
        bits = ledger.head_bits_grouped(users, head_apps, group_ids)
        chunk = bits[0].copy()
        for j in range(1, k):
            chunk |= bits[j] << np.uint8(j)
    head_avail = avail_table[chunk]
    total = head_avail + np.float32(rank_sampler.tail_weight)
    if rank_sampler.has_tail:
        pending = np.arange(n, dtype=np.int64)
        full = True
    else:
        pending = np.flatnonzero(total > 0)
        full = pending.size == n
    for attempt in range(max_rejections):
        if pending.size == 0:
            break
        if attempt:
            redraw_counter.add(int(pending.size))
        if full and attempt == 0:
            total_p, avail_p = total, head_avail
        else:
            total_p, avail_p = total[pending], head_avail[pending]
        r = rng.random(pending.size, dtype=np.float32) * total_p
        in_head = r < avail_p
        head_rows = pending[in_head]
        if head_rows.size:
            picks = (cum_table[chunk[head_rows]] <= r[in_head, None]).sum(
                axis=1
            )
            apps[head_rows] = head_apps[group_ids[head_rows], picks]
        tail_rows = pending[~in_head]
        if tail_rows.size == 0:
            pending = tail_rows
            continue
        if not rank_sampler.has_tail:
            pending = tail_rows
            continue
        ranks = rank_sampler.sample_tail_indices(tail_rows.size, rng)
        draws = tail_members[group_ids[tail_rows], ranks]
        fresh = ~ledger.contains(users[tail_rows], draws)
        accepted = tail_rows[fresh]
        apps[accepted] = draws[fresh]
        pending = tail_rows[~fresh]
    return apps


def _shared_cluster_structure(
    cluster_samplers: Mapping[int, AliasSampler],
    cluster_members: Mapping[int, np.ndarray],
    n_clusters: int,
):
    """Detect when all clusters share one rank-space distribution.

    Returns ``(rank_sampler, members_matrix, head_apps)`` for the fused
    kernel, or ``None`` when clusters differ in size or weights (an
    explicit ``cluster_of`` map can produce that), in which case the
    stream falls back to per-cluster grouped dispatch.
    """
    if n_clusters == 0 or len(cluster_samplers) != n_clusters:
        return None
    if set(cluster_samplers) != set(range(n_clusters)):
        return None
    reference = cluster_samplers[0].probabilities
    for cluster in range(n_clusters):  # repro: noqa=RPL020 -- construction-time, once per cluster
        members = cluster_members.get(cluster)
        if members is None or members.size != reference.size:
            return None
        if cluster and not np.array_equal(
            cluster_samplers[cluster].probabilities, reference
        ):
            return None
    members_matrix = np.stack(
        [cluster_members[cluster] for cluster in range(n_clusters)]
    )
    rank_sampler = HeadTailSampler(reference)
    # Head lists stay int64: their raw bytes key the ledger's head-mask
    # registration, matching the lists the per-cluster samplers register.
    head_apps = np.ascontiguousarray(members_matrix[:, rank_sampler.head])
    # Tail draws only feed gathers and ledger compares -- int32 halves
    # that traffic (app ids fit comfortably).  Pre-composing the
    # rank -> member mapping with alias-table order lets tail draws go
    # straight from alias indices to app ids, one gather instead of two.
    tail_members = np.ascontiguousarray(
        members_matrix[:, rank_sampler.tail_outcomes].astype(np.int32)
    )
    return rank_sampler, tail_members, head_apps


def sample_clustered_new_apps(
    slots: np.ndarray,
    users: np.ndarray,
    chosen_clusters: np.ndarray,
    cluster_samplers: Mapping[int, AliasSampler],
    cluster_members: Mapping[int, np.ndarray],
    ledger: DownloadLedger,
    rng: np.random.Generator,
    max_rejections: int,
    out: np.ndarray,
    available: Optional[np.ndarray] = None,
    accept_probability: Optional[np.ndarray] = None,
) -> None:
    """Clustered draws for a batch of slots, grouped by chosen cluster.

    ``slots`` indexes into ``out`` (and aligns with ``users`` /
    ``chosen_clusters``).  Each slot draws from its cluster's internal
    Zipf law via the shared rejection kernel; failures stay ``-1`` in
    ``out`` and the caller decides the fallback (the models fall back to
    the global law, per Section 5.1).
    """
    # One iteration per *cluster*, not per event: the distinct-cluster
    # count is tiny next to the batch the kernel vectorizes over.
    for cluster in np.unique(chosen_clusters):  # repro: noqa=RPL020 -- grouped dispatch, O(n_clusters) not O(n_events)
        sampler = cluster_samplers.get(int(cluster))
        if sampler is None:  # empty cluster: nothing to draw
            continue
        members = cluster_members[int(cluster)]
        group = chosen_clusters == cluster
        group_slots = slots[group]
        drawn = sample_new_apps(
            lambda size: members[sampler.sample(size, seed=rng)],
            users[group],
            ledger,
            rng,
            max_rejections,
            available=available,
            accept_probability=accept_probability,
        )
        out[group_slots] = drawn


class VisitedClusters:
    """Per-user visited-cluster lists, vectorized.

    The APP-CLUSTERING process picks uniformly among the clusters a user
    has already downloaded from.  Lists are stored as a fixed-width
    ``(n_users, width)`` matrix plus a fill count; the width is bounded by
    ``min(n_clusters, max downloads per user)`` since a user cannot visit
    more clusters than apps they download.
    """

    def __init__(self, n_users: int, n_clusters: int, max_per_user: int) -> None:
        width = max(1, min(n_clusters, max_per_user))
        # Narrow ids keep the per-round gathers cache-light; cluster
        # counts overflowing int16 fall back to int64.
        dtype = np.int16 if n_clusters <= np.iinfo(np.int16).max else np.int64
        self._lists = np.zeros((n_users, width), dtype=dtype)
        self._count = np.zeros(n_users, dtype=np.int64)
        self._width = width
        # With <= 64 clusters, one uint64 per user answers "already
        # visited?" with a single gather instead of a row scan.
        self._bitmask = (
            np.zeros(n_users, dtype=np.uint64) if n_clusters <= 64 else None
        )
        self._bit_of = (
            np.uint64(1) << np.arange(n_clusters, dtype=np.uint64)
            if self._bitmask is not None
            else None
        )

    @property
    def counts(self) -> np.ndarray:
        """Visited-cluster count per user (a view; do not mutate)."""
        return self._count

    def choose(self, users: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Uniformly pick one visited cluster per user (counts must be > 0).

        Returns the lists' native narrow dtype; cluster ids index small
        per-cluster tables downstream, where narrow indices are cheaper.
        """
        counts = self._count[users]
        picks = (rng.random(users.size) * counts).astype(np.int64)
        np.minimum(picks, counts - 1, out=picks)  # guard the r == 1.0 edge
        return self._lists[users, picks]

    def choose_fast(
        self, users: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """:meth:`choose` with float32 uniforms -- cheaper to generate,
        same clamp guard, but a different (equally uniform) stream; the
        round-vectorized clustering stream uses it, while :meth:`choose`
        keeps the historical stream for existing callers."""
        counts = self._count[users]
        picks = (rng.random(users.size, dtype=np.float32) * counts).astype(
            np.int64
        )
        np.minimum(picks, counts - 1, out=picks)
        return self._lists[users, picks]

    def record(self, users: np.ndarray, clusters: np.ndarray) -> None:
        """Append clusters not yet in each user's list (users unique)."""
        if users.size == 0:
            return
        clusters = clusters.astype(self._lists.dtype)
        if self._bitmask is not None:
            bits = self._bit_of[clusters]
            seen = self._bitmask[users]
            fresh = np.flatnonzero((seen & bits) == 0)
            if fresh.size:
                fresh_users = users[fresh]
                self._bitmask[fresh_users] = seen[fresh] | bits[fresh]
                fills = self._count[fresh_users]
                self._lists[fresh_users, fills] = clusters[fresh]
                self._count[fresh_users] = fills + 1
            return
        rows = self._lists[users]
        positions = np.arange(self._width, dtype=np.int64)[None, :]
        filled = positions < self._count[users, None]
        already = np.any(filled & (rows == clusters[:, None]), axis=1)
        fresh = ~already
        if np.any(fresh):
            fresh_users = users[fresh]
            self._lists[fresh_users, self._count[fresh_users]] = clusters[fresh]
            self._count[fresh_users] += 1


@pure
def _chunks(order: np.ndarray, batch_size: int) -> Iterator[np.ndarray]:
    for start in range(0, order.size, batch_size):
        yield order[start : start + batch_size]


def zipf_event_batches(
    sampler: AliasSampler,
    n_users: int,
    total_downloads: int,
    rng: np.random.Generator,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[EventBatch]:
    """Pure ZIPF downloads as a chunked batch stream."""
    metrics = get_registry()
    batch_counter = metrics.counter("engine.batches")
    event_counter = metrics.counter("engine.events")
    budgets = per_user_budgets(total_downloads, n_users, rng)
    order = interleaved_user_order(budgets, rng)
    for chunk in _chunks(order, batch_size):
        batch_counter.add(1)
        event_counter.add(int(chunk.size))
        yield EventBatch(chunk, sampler.sample(chunk.size, seed=rng))


def zipf_amo_event_batches(
    sampler: AliasSampler,
    n_users: int,
    total_downloads: int,
    rng: np.random.Generator,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_rejections: int = 256,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    ledger_mode: Optional[str] = None,
    head_tail: Optional[HeadTailSampler] = None,
) -> Iterator[EventBatch]:
    """ZIPF-at-most-once downloads as a round-vectorized batch stream.

    Round ``k`` serves the ``k``-th download of every user with budget
    left, in ascending user order: user slots within a round are unique
    by construction, so the masked head/tail kernel needs no intra-batch
    dedup and ledger commits are direct fancy-index stores.  Ascending
    order also keeps the per-round gathers and scatters sequential in
    memory, which is where most of the throughput comes from.  The event
    stream still interleaves users -- every user appears once per round --
    just deterministically instead of shuffled.  Users whose draw fails
    (``-1``) are counted under ``engine.events_unfilled`` and dropped.
    """
    metrics = get_registry()
    batch_counter = metrics.counter("engine.batches")
    event_counter = metrics.counter("engine.events")
    unfilled_counter = metrics.counter("engine.events_unfilled")
    ledger = DownloadLedger(
        n_users,
        sampler.n_outcomes,
        memory_budget_bytes,
        mode=ledger_mode,
        capacity=_budget_capacity(total_downloads, n_users),
    )
    if head_tail is None:
        head_tail = HeadTailSampler(sampler.probabilities)
    ledger.prepare_head(head_tail.head)
    budgets = per_user_budgets(total_downloads, n_users, rng)
    # Budgets take exactly two values (base and base + 1), so the round
    # structure is analytic: every user holds budget for the first
    # ``base`` rounds, then only the remainder users for one more --
    # no per-round budget scan needed.  And when the per-user capacity
    # cannot reach ``n_apps``, no user can ever saturate, so the
    # saturation filter is settled once up front.
    base = total_downloads // n_users
    everyone = np.arange(n_users, dtype=np.int64)
    rounds = [everyone] * base
    if total_downloads % n_users:
        rounds.append(np.flatnonzero(budgets > base))
    can_saturate = (
        _budget_capacity(total_downloads, n_users) >= sampler.n_outcomes
    )
    for holders in rounds:
        if holders.size == 0:
            continue
        if can_saturate:
            active = holders[~ledger.saturated(holders)]
            # Saturated users' download slots vanish before the kernel
            # ever sees them -- count them, same as a failed draw, so
            # campaign stats show every slot that produced no event.
            if active.size < holders.size:
                unfilled_counter.add(holders.size - active.size)
        else:
            active = holders
        if active.size == 0:
            continue
        apps = masked_head_tail_draw(
            head_tail, active, ledger, rng, max_rejections
        )
        done = apps >= 0
        n_unfilled = active.size - int(np.count_nonzero(done))
        if n_unfilled:
            unfilled_counter.add(n_unfilled)
            done_users = active[done]
            done_apps = apps[done]
        else:  # every slot filled: skip two full-round gathers
            done_users, done_apps = active, apps
        ledger.add_unique(done_users, done_apps)
        for start in range(0, done_users.size, batch_size):
            stop = start + batch_size
            batch_counter.add(1)
            event_counter.add(int(done_users[start:stop].size))
            yield EventBatch(done_users[start:stop], done_apps[start:stop])


@pure
def _grouping_dtype(n_clusters: int) -> np.dtype:
    """Narrowest int dtype holding cluster ids -- NumPy's stable sort on
    narrow integers is a radix sort, an order of magnitude faster than
    the int64 merge sort at round sizes."""
    for candidate in (np.int8, np.int16, np.int32):
        if n_clusters <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    return np.dtype(np.int64)


def app_clustering_event_batches(
    n_users: int,
    total_downloads: int,
    p: float,
    global_sampler: AliasSampler,
    cluster_samplers: Mapping[int, AliasSampler],
    cluster_members: Mapping[int, np.ndarray],
    cluster_of: np.ndarray,
    rng: np.random.Generator,
    max_rejections: int = 64,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    ledger_mode: Optional[str] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    global_head_tail: Optional[HeadTailSampler] = None,
    cluster_head_tails: Optional[Mapping[int, HeadTailSampler]] = None,
) -> Iterator[EventBatch]:
    """APP-CLUSTERING downloads as a round-vectorized batch stream.

    Round ``k`` processes the ``k``-th download of every user that still
    has budget, in ascending user order: clustered slots draw per
    visited cluster (grouped by a radix sort on the chosen cluster),
    cluster-saturated and non-clustered slots fall back to the global
    law -- the exact per-user process of Section 5.1.  All draws go
    through the masked head/tail kernel, so users within a round are
    unique and commits are direct stores.  Users are independent, so
    vectorizing across them changes only the interleaving of the event
    stream, not its statistics.
    """
    metrics = get_registry()
    batch_counter = metrics.counter("engine.batches")
    event_counter = metrics.counter("engine.events")
    unfilled_counter = metrics.counter("engine.events_unfilled")
    n_apps = cluster_of.size
    ledger = DownloadLedger(
        n_users,
        n_apps,
        memory_budget_bytes,
        mode=ledger_mode,
        capacity=_budget_capacity(total_downloads, n_users),
    )
    budgets = per_user_budgets(total_downloads, n_users, rng)
    n_clusters = int(cluster_of.max()) + 1 if n_apps else 1
    max_budget = int(budgets.max()) if budgets.size else 0
    visited = VisitedClusters(n_users, n_clusters, max_budget)
    # Same analytic round structure as the AMO stream: all users for the
    # first ``base`` rounds, remainder users once more, saturation
    # impossible while per-user capacity stays below ``n_apps``.
    base = total_downloads // n_users
    everyone = np.arange(n_users, dtype=np.int64)
    rounds = [everyone] * base
    if total_downloads % n_users:
        rounds.append(np.flatnonzero(budgets > base))
    can_saturate = _budget_capacity(total_downloads, n_users) >= n_apps
    if global_head_tail is None:
        global_head_tail = HeadTailSampler(global_sampler.probabilities)
    if cluster_head_tails is None:
        cluster_head_tails = {
            cluster: HeadTailSampler(
                sampler.probabilities, outcomes=cluster_members[cluster]
            )
            for cluster, sampler in cluster_samplers.items()
        }
    group_dtype = _grouping_dtype(n_clusters)
    ledger.prepare_head(global_head_tail.head)
    for head_tail in cluster_head_tails.values():  # repro: noqa=RPL020 -- O(n_clusters) one-time registration
        ledger.prepare_head(head_tail.head)
    fused = _shared_cluster_structure(
        cluster_samplers, cluster_members, n_clusters
    )

    for holders in rounds:
        if holders.size == 0:
            continue
        if can_saturate:
            active = holders[~ledger.saturated(holders)]
            # As in the AMO stream: slots lost to saturation are counted
            # next to failed draws, never silently dropped.
            if active.size < holders.size:
                unfilled_counter.add(holders.size - active.size)
        else:
            active = holders
        if active.size == 0:
            continue

        apps = np.full(active.size, -1, dtype=np.int64)
        clustered = (visited.counts[active] > 0) & (
            rng.random(active.size, dtype=np.float32) < np.float32(p)
        )
        slots = np.flatnonzero(clustered)
        if slots.size and fused is not None:
            rank_sampler, tail_members, head_apps = fused
            chosen = visited.choose_fast(active[slots], rng)
            apps[slots] = masked_head_tail_draw_grouped(
                rank_sampler,
                active[slots],
                chosen,
                tail_members,
                head_apps,
                ledger,
                rng,
                max_rejections,
            )
        elif slots.size:
            chosen = visited.choose_fast(active[slots], rng)
            order = np.argsort(chosen.astype(group_dtype), kind="stable")
            grouped_slots = slots[order]
            grouped_users = active[grouped_slots]
            grouped_clusters = chosen[order]
            bounds = np.searchsorted(
                grouped_clusters, np.arange(n_clusters + 1)
            )
            occupied = np.flatnonzero(np.diff(bounds) > 0)
            for cluster in occupied:  # repro: noqa=RPL020 -- grouped dispatch, O(n_clusters) not O(n_events)
                head_tail = cluster_head_tails.get(int(cluster))
                if head_tail is None:  # empty cluster: nothing to draw
                    continue
                segment = slice(bounds[cluster], bounds[cluster + 1])
                apps[grouped_slots[segment]] = masked_head_tail_draw(
                    head_tail,
                    grouped_users[segment],
                    ledger,
                    rng,
                    max_rejections,
                )
        fallback = np.flatnonzero(apps < 0)
        if fallback.size:
            apps[fallback] = masked_head_tail_draw(
                global_head_tail,
                active[fallback],
                ledger,
                rng,
                max_rejections,
            )
        done = apps >= 0
        n_unfilled = active.size - int(np.count_nonzero(done))
        if n_unfilled:
            unfilled_counter.add(n_unfilled)
            done_users = active[done]
            done_apps = apps[done]
        else:  # every slot filled: skip two full-round gathers
            done_users, done_apps = active, apps
        if done_users.size == 0:
            continue
        ledger.add_unique(done_users, done_apps)
        visited.record(done_users, cluster_of[done_apps])
        for start in range(0, done_users.size, batch_size):
            stop = start + batch_size
            batch_counter.add(1)
            event_counter.add(int(done_users[start:stop].size))
            yield EventBatch(done_users[start:stop], done_apps[start:stop])


def counts_from_batches(
    batches: Iterator[EventBatch], n_apps: int
) -> np.ndarray:
    """Accumulate per-app download counts over a batch stream."""
    counts = np.zeros(n_apps, dtype=np.int64)
    for batch in batches:
        counts += np.bincount(batch.app_indices, minlength=n_apps)
    return counts


def events_from_batches(
    batches: Iterator[EventBatch],
) -> Iterator[DownloadEvent]:
    """Flatten a batch stream into per-event objects (compat adapter)."""
    for batch in batches:
        yield from batch.iter_events()
