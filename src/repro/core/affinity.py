"""Temporal affinity of user selections to app categories (Section 4.2).

The paper measures how strongly consecutive app selections of a user stay
inside the same category.  The data structure is the *category string*: the
chronological sequence of categories of the apps a user commented on, after
collapsing immediately repeated apps.

Two quantities are defined:

- :func:`temporal_affinity` -- Equations 1 (depth 1) and 3 (depth ``d``):
  the fraction of selections that share a category with at least one of
  their ``d`` predecessors.
- :func:`random_walk_affinity` -- Equations 2 (depth 1) and 4 (depth ``d``):
  the affinity a user would exhibit when wandering among apps uniformly at
  random, given the empirical distribution of apps over categories.  This
  is the base case the measured affinity is compared against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


def collapse_repeats(items: Sequence) -> List:
    """Suppress immediately repeated elements of a sequence.

    The paper builds *app strings* by suppressing successive comments of
    the same user on the same app: ``a1 a2 a3 a3 a1 a4`` becomes
    ``a1 a2 a3 a1 a4``.  (Non-adjacent repeats are kept.)
    """
    collapsed: List = []
    for item in items:
        if not collapsed or collapsed[-1] != item:
            collapsed.append(item)
    return collapsed


def category_string(
    app_string: Sequence, category_of: Dict
) -> List:
    """Map an app string to its category string via ``category_of``.

    ``category_of`` maps app identifiers to category identifiers.  Raises
    ``KeyError`` for apps with no known category.
    """
    return [category_of[app] for app in app_string]


def temporal_affinity(categories: Sequence, depth: int = 1) -> Optional[float]:
    """The affinity metric ``Aff`` of the paper, for a given depth.

    For a category string ``c1..cn``, this is the fraction of positions
    ``i`` (counting from ``i = depth``) whose category equals at least one
    of the ``depth`` preceding categories, i.e.::

        Aff = sum_{i=depth..n-1} 1[c_i in {c_{i-1}, ..., c_{i-depth}}]
              / (n - depth)

    (0-based indexing here; the paper writes the same sum 1-based.)
    Returns ``None`` when the string is too short to define the metric
    (``n <= depth``), mirroring the paper's exclusion of users with a
    single comment.

    Examples
    --------
    >>> temporal_affinity(["a", "a", "a", "a"])
    1.0
    >>> temporal_affinity(["a", "a", "a", "b"])  # 2 of 3 transitions match
    0.6666666666666666
    >>> temporal_affinity(["a", "b", "a", "b"])  # oscillation: zero at depth 1
    0.0
    >>> temporal_affinity(["a", "b", "a", "b"], depth=2)  # ...but full at 2
    1.0
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    n = len(categories)
    if n <= depth:
        return None
    matches = 0
    for i in range(depth, n):
        window = categories[i - depth : i]
        if categories[i] in window:
            matches += 1
    return matches / (n - depth)


def random_walk_affinity(category_sizes: Sequence[int], depth: int = 1) -> float:
    """Affinity of a uniform random walk over apps (Equations 2 and 4).

    ``category_sizes[i]`` is the number of apps in category ``i``.  For
    depth 1 this is the probability that two distinct uniformly random
    apps share a category::

        sum_i A_i * (A_i - 1) / (A * (A - 1))

    For depth ``d`` the paper generalizes to the probability that a
    selection shares a category with at least one of its ``d``
    predecessors under sampling without immediate repetition, Equation 4::

        sum_i A_i * (A_i - 1) * d * prod_{k=2..d}(A - k)
        / prod_{k=0..d}(A - k)

    which for small ``d`` is close to (but slightly below) the union bound
    ``d * Aff_1``.  Because Equation 4 is built from that union-style
    counting, it can exceed one for degenerate taxonomies (e.g. a single
    category at depth >= 2, where the true probability is exactly one);
    the result is clamped to [0, 1].
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    sizes = np.asarray(category_sizes, dtype=np.float64)
    if sizes.ndim != 1 or sizes.size == 0:
        raise ValueError("category_sizes must be a non-empty 1-D array")
    if np.any(sizes < 0):
        raise ValueError("category sizes must be non-negative")
    total = float(sizes.sum())
    if total < depth + 1:
        raise ValueError(
            f"need more than depth+1 = {depth + 1} apps, got {total:.0f}"
        )

    pair_count = float((sizes * (sizes - 1.0)).sum())
    if depth == 1:
        return pair_count / (total * (total - 1.0))

    numerator = pair_count * depth
    for k in range(2, depth + 1):
        numerator *= total - k
    denominator = 1.0
    for k in range(0, depth + 1):
        denominator *= total - k
    return min(1.0, numerator / denominator)


def affinity_by_group(
    strings: Sequence[Sequence],
    depth: int = 1,
    min_group_size: int = 10,
) -> Dict[int, List[float]]:
    """Group affinity values by category-string length (Figure 6).

    The paper groups users by their number of comments and averages the
    affinity within each group, dropping groups with fewer than
    ``min_group_size`` members (which also filters out spam users, whose
    comment counts are unique outliers).  Returns a mapping
    ``string_length -> list of affinities`` for groups that survive the
    size filter.
    """
    if min_group_size < 1:
        raise ValueError("min_group_size must be >= 1")
    groups: Dict[int, List[float]] = {}
    for string in strings:
        value = temporal_affinity(string, depth=depth)
        if value is None:
            continue
        groups.setdefault(len(string), []).append(value)
    return {
        length: values
        for length, values in groups.items()
        if len(values) >= min_group_size
    }
