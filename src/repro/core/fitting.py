"""Model-fit distance and grid-search parameter fitting (Section 5.2).

The paper tunes each model's parameters by simulating with every parameter
combination of a grid and keeping the combination whose simulated per-app
downloads lie closest to the measured downloads under the mean relative
error distance (Equation 6):

    distance = (1/A) * sum_i |D_o(i) - D_s(i)| / D_o(i)

where ``D_o(i)`` and ``D_s(i)`` are the observed and simulated downloads of
the app with overall rank ``i``.

Fitting on raw Monte Carlo output is noisy and slow, so :func:`fit_model`
fits against the analytical expectation curves (Equation 5 and its ZIPF /
ZIPF-at-most-once specializations) by default and optionally re-simulates
the winner for the final report, which is how the benchmarks regenerate
Figures 8-10 quickly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.analytical import (
    expected_download_curve_corrected,
    expected_zipf,
    expected_zipf_at_most_once,
)
from repro.core.models import (
    AppClusteringModel,
    AppClusteringParams,
    ModelKind,
    ZipfAtMostOnceModel,
    ZipfModel,
)
from repro.stats.rng import SeedLike


def mean_relative_error(observed, simulated) -> float:
    """The paper's distance metric (Equation 6).

    Apps with zero observed downloads are excluded from the average (the
    relative error is undefined there); the paper's rank curves never
    include zero-download observations because crawled totals grow from a
    positive history.
    """
    observed = np.asarray(observed, dtype=np.float64)
    simulated = np.asarray(simulated, dtype=np.float64)
    if observed.shape != simulated.shape:
        raise ValueError(
            f"shape mismatch: {observed.shape} vs {simulated.shape}"
        )
    if observed.ndim != 1 or observed.size == 0:
        raise ValueError("inputs must be non-empty 1-D arrays")
    if np.any(observed < 0) or np.any(simulated < 0):
        raise ValueError("download counts must be non-negative")
    mask = observed > 0
    if not mask.any():
        raise ValueError("observed downloads are all zero")
    relative_errors = np.abs(observed[mask] - simulated[mask]) / observed[mask]
    return float(relative_errors.mean())


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one model against an observed rank curve."""

    kind: ModelKind
    distance: float
    zr: float
    zc: Optional[float] = None
    p: Optional[float] = None
    predicted: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    def describe(self) -> str:
        """Short human-readable parameter summary, Figure-8 style."""
        parts = [f"zr={self.zr:g}"]
        if self.p is not None:
            parts.append(f"p={self.p:g}")
        if self.zc is not None:
            parts.append(f"zc={self.zc:g}")
        return f"{self.kind.value} ({', '.join(parts)}): distance={self.distance:.3f}"


# Default parameter grids, covering the ranges the paper reports as best
# fits (zr in 1.2-1.7, zc in 1.4-1.5, p in 0.9-0.95) with margin.
DEFAULT_ZR_GRID: Tuple[float, ...] = (
    0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 2.0,
)
DEFAULT_ZC_GRID: Tuple[float, ...] = (1.0, 1.2, 1.4, 1.5, 1.6, 1.8)
DEFAULT_P_GRID: Tuple[float, ...] = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99)


def _sorted_observed(observed) -> np.ndarray:
    observed = np.asarray(observed, dtype=np.float64)
    if observed.ndim != 1 or observed.size == 0:
        raise ValueError("observed must be a non-empty 1-D array")
    return np.sort(observed)[::-1]


def fit_model(
    kind: ModelKind,
    observed_downloads,
    n_users: int,
    n_clusters: int = 30,
    zr_grid: Sequence[float] = DEFAULT_ZR_GRID,
    zc_grid: Sequence[float] = DEFAULT_ZC_GRID,
    p_grid: Sequence[float] = DEFAULT_P_GRID,
) -> FitResult:
    """Grid-search the best parameters of one model for an observed curve.

    ``observed_downloads`` is the per-app total downloads (any order; it is
    rank-sorted internally).  ``n_users`` is the simulated population size;
    per Figure 10 a good default is the download count of the most popular
    app.  Returns the parameter combination minimizing Equation 6, with the
    winning predicted curve attached.
    """
    observed = _sorted_observed(observed_downloads)
    n_apps = observed.size
    total_downloads = int(observed.sum())
    if n_users < 1:
        raise ValueError("n_users must be positive")

    best: Optional[FitResult] = None
    if kind == ModelKind.ZIPF:
        for zr in zr_grid:
            predicted = expected_zipf(n_apps, total_downloads, zr)
            distance = mean_relative_error(observed, predicted)
            if best is None or distance < best.distance:
                best = FitResult(kind=kind, distance=distance, zr=zr, predicted=predicted)
    elif kind == ModelKind.ZIPF_AT_MOST_ONCE:
        for zr in zr_grid:
            predicted = expected_zipf_at_most_once(
                n_apps, n_users, total_downloads, zr
            )
            distance = mean_relative_error(observed, predicted)
            if best is None or distance < best.distance:
                best = FitResult(kind=kind, distance=distance, zr=zr, predicted=predicted)
    elif kind == ModelKind.APP_CLUSTERING:
        for zr, zc, p in itertools.product(zr_grid, zc_grid, p_grid):
            params = AppClusteringParams(
                n_apps=n_apps,
                n_users=n_users,
                total_downloads=total_downloads,
                zr=zr,
                zc=zc,
                p=p,
                n_clusters=n_clusters,
            )
            predicted = expected_download_curve_corrected(params)
            predicted = np.sort(predicted)[::-1]
            distance = mean_relative_error(observed, predicted)
            if best is None or distance < best.distance:
                best = FitResult(
                    kind=kind, distance=distance, zr=zr, zc=zc, p=p, predicted=predicted
                )
    else:
        raise ValueError(f"unknown model kind: {kind!r}")
    assert best is not None  # grids are non-empty
    return best


def fit_all_models(
    observed_downloads,
    n_users: int,
    n_clusters: int = 30,
    **grid_overrides,
) -> Dict[ModelKind, FitResult]:
    """Fit all three models; the Figure-9 comparison in one call."""
    return {
        kind: fit_model(
            kind, observed_downloads, n_users, n_clusters=n_clusters, **grid_overrides
        )
        for kind in ModelKind
    }


def simulate_fitted(
    fit: FitResult,
    n_apps: int,
    n_users: int,
    total_downloads: int,
    n_clusters: int = 30,
    seed: SeedLike = None,
) -> np.ndarray:
    """Run the Monte Carlo simulator at a fit's parameters.

    Used to confirm that the analytically fitted parameters reproduce the
    observed curve when actually simulated (the paper's validation loop).
    Returns rank-sorted simulated downloads.
    """
    if fit.kind == ModelKind.ZIPF:
        counts = ZipfModel(n_apps, fit.zr).simulate(n_users, total_downloads, seed=seed)
    elif fit.kind == ModelKind.ZIPF_AT_MOST_ONCE:
        counts = ZipfAtMostOnceModel(n_apps, fit.zr).simulate(
            n_users, total_downloads, seed=seed
        )
    else:
        params = AppClusteringParams(
            n_apps=n_apps,
            n_users=n_users,
            total_downloads=total_downloads,
            zr=fit.zr,
            zc=fit.zc if fit.zc is not None else 1.4,
            p=fit.p if fit.p is not None else 0.9,
            n_clusters=n_clusters,
        )
        counts = AppClusteringModel(params).simulate(seed=seed)
    return np.sort(counts.astype(np.float64))[::-1]


def user_count_sweep(
    observed_downloads,
    user_fractions: Sequence[float],
    n_clusters: int = 30,
    zr_grid: Sequence[float] = DEFAULT_ZR_GRID,
    zc_grid: Sequence[float] = DEFAULT_ZC_GRID,
    p_grid: Sequence[float] = DEFAULT_P_GRID,
) -> List[Tuple[float, float]]:
    """Figure 10: distance as a function of the assumed user count.

    ``user_fractions`` are candidate user counts expressed as fractions of
    the most popular app's downloads (the paper sweeps 0.1x to 50x).
    Returns (fraction, best APP-CLUSTERING distance) pairs.
    """
    observed = _sorted_observed(observed_downloads)
    top_app_downloads = float(observed[0])
    if top_app_downloads <= 0:
        raise ValueError("most popular app must have positive downloads")
    results: List[Tuple[float, float]] = []
    for fraction in user_fractions:
        if fraction <= 0:
            raise ValueError("user fractions must be positive")
        n_users = max(1, int(round(fraction * top_app_downloads)))
        fit = fit_model(
            ModelKind.APP_CLUSTERING,
            observed,
            n_users=n_users,
            n_clusters=n_clusters,
            zr_grid=zr_grid,
            zc_grid=zc_grid,
            p_grid=p_grid,
        )
        results.append((float(fraction), fit.distance))
    return results
