"""Download forecasting from the fitted model (Section 7 implication).

The paper's implications include: "Our model of app downloads can be
used by appstores to estimate future app downloads based on app
popularity.  This will enable appstores to pinpoint problematic apps."

This module implements that estimator.  Given a crawled history up to a
reference day, it:

1. fits the APP-CLUSTERING model to the reference-day rank curve;
2. scales the model population forward to a target day (the per-user
   budget grows with the store's observed daily download volume);
3. predicts each rank's future downloads from the corrected analytical
   curve;
4. flags *problematic apps*: apps whose observed growth trails far
   behind the model's prediction for their rank -- the candidates the
   paper suggests appstores should "favor through better
   recommendations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.analytical import expected_download_curve_corrected
from repro.core.fitting import FitResult, fit_model, mean_relative_error
from repro.core.models import AppClusteringParams, ModelKind
from repro.crawler.database import SnapshotDatabase


@dataclass(frozen=True)
class DownloadForecast:
    """A rank-level forecast of future downloads."""

    store: str
    reference_day: int
    target_day: int
    fit: FitResult
    predicted_curve: np.ndarray
    observed_reference: np.ndarray

    @property
    def horizon_days(self) -> int:
        """Days between the reference and target day."""
        return self.target_day - self.reference_day

    def predicted_total(self) -> float:
        """Predicted store-wide downloads at the target day."""
        return float(self.predicted_curve.sum())

    def evaluate(self, observed_target: np.ndarray) -> float:
        """Equation-6 distance between forecast and realized rank curve.

        ``observed_target`` is the per-app downloads at the target day
        (any order; rank-sorted internally).  Curves are compared over
        the common rank range.
        """
        observed = np.sort(np.asarray(observed_target, dtype=np.float64))[::-1]
        n = min(observed.size, self.predicted_curve.size)
        return mean_relative_error(observed[:n], self.predicted_curve[:n])


@dataclass(frozen=True)
class ProblematicApp:
    """An app growing far below the model's expectation for its rank."""

    app_id: int
    rank: int
    observed_growth: int
    expected_growth: float

    @property
    def shortfall(self) -> float:
        """Expected minus observed growth, in downloads."""
        return self.expected_growth - self.observed_growth


def _rank_curve(database: SnapshotDatabase, store: str, day: int) -> np.ndarray:
    downloads = database.download_vector(store, day).astype(np.float64)
    positive = downloads[downloads > 0]
    if positive.size == 0:
        raise ValueError(f"store {store!r} has no downloads on day {day}")
    return np.sort(positive)[::-1]


def forecast_downloads(
    database: SnapshotDatabase,
    store: str,
    reference_day: Optional[int] = None,
    target_day: Optional[int] = None,
    n_clusters: int = 30,
    **grid_overrides,
) -> DownloadForecast:
    """Fit APP-CLUSTERING at ``reference_day`` and extrapolate.

    Defaults: the reference is the first crawled day, the target the
    last, so the forecast can be validated against the crawl itself.
    The extrapolation scales the model's total downloads by the ratio of
    target-day to reference-day volume, estimated from the crawled daily
    growth.
    """
    days = database.days(store)
    if len(days) < 2:
        raise ValueError(f"store {store!r} needs at least two crawled days")
    reference_day = days[0] if reference_day is None else reference_day
    target_day = days[-1] if target_day is None else target_day
    if target_day <= reference_day:
        raise ValueError("target_day must be after reference_day")

    observed = _rank_curve(database, store, reference_day)
    n_users = int(observed[0])
    fit = fit_model(
        ModelKind.APP_CLUSTERING,
        observed,
        n_users=n_users,
        n_clusters=n_clusters,
        **grid_overrides,
    )

    # Volume scaling: grow total downloads by the observed per-day rate
    # between the two nearest crawled days after the reference.
    reference_total = float(observed.sum())
    later_days = [d for d in days if d > reference_day]
    if later_days:
        next_day = later_days[0]
        next_total = float(_rank_curve(database, store, next_day).sum())
        daily_growth = max(0.0, (next_total - reference_total)) / max(
            1, next_day - reference_day
        )
    else:
        daily_growth = 0.0
    target_total = reference_total + daily_growth * (target_day - reference_day)

    # Users scale with volume too (new users keep arriving); the paper's
    # Figure 10 heuristic (U ~ top-app downloads) is preserved by scaling
    # both with the same factor.
    scale = target_total / reference_total if reference_total > 0 else 1.0
    params = AppClusteringParams(
        n_apps=observed.size,
        n_users=max(1, int(round(n_users * scale))),
        total_downloads=max(1, int(round(target_total))),
        zr=fit.zr,
        zc=fit.zc if fit.zc is not None else 1.4,
        p=fit.p if fit.p is not None else 0.9,
        n_clusters=n_clusters,
    )
    predicted = np.sort(expected_download_curve_corrected(params))[::-1]
    return DownloadForecast(
        store=store,
        reference_day=reference_day,
        target_day=target_day,
        fit=fit,
        predicted_curve=predicted,
        observed_reference=observed,
    )


def find_problematic_apps(
    database: SnapshotDatabase,
    store: str,
    first_day: Optional[int] = None,
    last_day: Optional[int] = None,
    shortfall_factor: float = 4.0,
    min_expected_growth: float = 5.0,
    n_clusters: int = 30,
) -> List[ProblematicApp]:
    """Apps whose growth trails the model's expectation for their rank.

    An app is *problematic* when its observed download growth over the
    window is more than ``shortfall_factor`` times below the growth the
    fitted model predicts for its popularity rank (and that prediction
    is at least ``min_expected_growth`` downloads, so noise-level apps
    are not flagged).  These are the apps the paper suggests the store
    should surface through recommendations.
    """
    if shortfall_factor <= 1.0:
        raise ValueError("shortfall_factor must exceed 1")
    days = database.days(store)
    if len(days) < 2:
        raise ValueError(f"store {store!r} needs at least two crawled days")
    first_day = days[0] if first_day is None else first_day
    last_day = days[-1] if last_day is None else last_day

    forecast = forecast_downloads(
        database,
        store,
        reference_day=first_day,
        target_day=last_day,
        n_clusters=n_clusters,
    )

    start = {
        s.app_id: s.total_downloads
        for s in database.snapshots_on(store, first_day)
    }
    end = {
        s.app_id: s.total_downloads
        for s in database.snapshots_on(store, last_day)
    }
    # Rank apps by their reference-day downloads to map onto the curve.
    ranked_apps = sorted(start, key=lambda app_id: start[app_id], reverse=True)

    predicted_reference = forecast.observed_reference
    predicted_target = forecast.predicted_curve
    problematic: List[ProblematicApp] = []
    for rank_index, app_id in enumerate(ranked_apps):
        if rank_index >= predicted_target.size:
            break
        expected_growth = float(
            predicted_target[rank_index] - predicted_reference[rank_index]
        )
        if expected_growth < min_expected_growth:
            continue
        observed_growth = end.get(app_id, start[app_id]) - start[app_id]
        if observed_growth * shortfall_factor < expected_growth:
            problematic.append(
                ProblematicApp(
                    app_id=app_id,
                    rank=rank_index + 1,
                    observed_growth=int(observed_growth),
                    expected_growth=expected_growth,
                )
            )
    problematic.sort(key=lambda app: app.shortfall, reverse=True)
    return problematic
