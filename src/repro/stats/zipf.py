"""Finite Zipf (zeta) distributions.

Every popularity model in the paper is built on finite Zipf laws: an object
with rank ``i`` (1-based) among ``n`` objects is chosen with probability
proportional to ``1 / i**exponent``.  The paper uses two such laws: ``ZG``
over the global app ranking (exponent ``zr``) and ``Zc`` over each cluster's
internal ranking (exponent ``zc``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.rng import SeedLike
from repro.stats.sampling import AliasSampler


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Unnormalized Zipf weights ``1 / rank**exponent`` for ranks 1..n."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return ranks**-exponent


def generalized_harmonic(n: int, exponent: float) -> float:
    """The normalization constant ``H(n, s) = sum_{k=1..n} 1/k**s``."""
    return float(zipf_weights(n, exponent).sum())


@dataclass(frozen=True)
class ZipfDistribution:
    """A finite Zipf distribution over ranks ``1..n``.

    Parameters
    ----------
    n:
        Number of ranked objects.
    exponent:
        The Zipf exponent (``zr`` or ``zc`` in the paper).  Zero gives a
        uniform distribution; larger values concentrate mass on low ranks.
    """

    n: int
    exponent: float
    _pmf: np.ndarray = field(init=False, repr=False, compare=False)
    _sampler: AliasSampler = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        weights = zipf_weights(self.n, self.exponent)
        pmf = weights / weights.sum()
        object.__setattr__(self, "_pmf", pmf)
        object.__setattr__(self, "_sampler", AliasSampler(pmf))

    def pmf(self, rank) -> np.ndarray:
        """Probability of each 1-based rank (scalar or array input)."""
        rank = np.asarray(rank)
        if np.any(rank < 1) or np.any(rank > self.n):
            raise ValueError(f"ranks must lie in [1, {self.n}]")
        return self._pmf[rank - 1]

    def cdf(self, rank) -> np.ndarray:
        """Cumulative probability up to and including each 1-based rank."""
        rank = np.asarray(rank)
        if np.any(rank < 1) or np.any(rank > self.n):
            raise ValueError(f"ranks must lie in [1, {self.n}]")
        cumulative = np.cumsum(self._pmf)
        return cumulative[rank - 1]

    def sample_ranks(self, size: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` 1-based ranks distributed per this Zipf law."""
        return self._sampler.sample(size, seed=seed) + 1

    def sample_indices(self, size: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` 0-based indices (rank minus one)."""
        return self._sampler.sample(size, seed=seed)

    def sample_one_index(self, rng: np.random.Generator) -> int:
        """Draw a single 0-based index with an existing generator."""
        return self._sampler.sample_one(rng)

    def expected_counts(self, total_draws: int) -> np.ndarray:
        """Expected number of times each rank is drawn in ``total_draws``."""
        if total_draws < 0:
            raise ValueError("total_draws must be non-negative")
        return self._pmf * total_draws


def fit_zipf_exponent_mle(counts, max_exponent: float = 5.0) -> float:
    """Maximum-likelihood Zipf exponent from per-rank counts.

    ``counts[i]`` is the number of observations of the rank-``i+1`` object.
    The discrete MLE maximizes ``-s * sum(c_i * log i) - N * log H(n, s)``
    over the exponent ``s``; we solve it by golden-section search, which is
    robust because the log-likelihood is unimodal in ``s``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size < 2:
        raise ValueError("counts must be a 1-D array with at least 2 entries")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    total = counts.sum()
    if total <= 0:
        raise ValueError("counts must not be all zero")

    n = counts.size
    log_ranks = np.log(np.arange(1, n + 1, dtype=np.float64))
    weighted_log_rank_sum = float((counts * log_ranks).sum())

    def negative_log_likelihood(s: float) -> float:
        return s * weighted_log_rank_sum + total * np.log(
            generalized_harmonic(n, s)
        )

    low, high = 0.0, max_exponent
    golden = (np.sqrt(5.0) - 1.0) / 2.0
    x1 = high - golden * (high - low)
    x2 = low + golden * (high - low)
    f1 = negative_log_likelihood(x1)
    f2 = negative_log_likelihood(x2)
    for _ in range(200):
        if high - low < 1e-10:
            break
        if f1 < f2:
            high, x2, f2 = x2, x1, f1
            x1 = high - golden * (high - low)
            f1 = negative_log_likelihood(x1)
        else:
            low, x1, f1 = x1, x2, f2
            x2 = low + golden * (high - low)
            f2 = negative_log_likelihood(x2)
    return (low + high) / 2.0
