"""Empirical distribution utilities: ECDFs, rank-size transforms, binning.

These are the workhorses behind every CDF-style figure in the paper
(Figures 2, 4, 5, 7, 13, 16) and the rank-downloads plots (Figures 3, 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Ecdf:
    """An empirical cumulative distribution function.

    Stores the sorted sample once; evaluation is a binary search.

    Examples
    --------
    >>> ecdf = Ecdf.from_samples([1, 2, 2, 4])
    >>> float(ecdf(2))
    0.75
    """

    sorted_values: np.ndarray

    @classmethod
    def from_samples(cls, samples) -> "Ecdf":
        values = np.asarray(samples, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {values.shape}")
        if values.size == 0:
            raise ValueError("samples must be non-empty")
        if not np.all(np.isfinite(values)):
            raise ValueError("samples must be finite")
        return cls(sorted_values=np.sort(values))

    @property
    def n(self) -> int:
        """Sample size."""
        return self.sorted_values.size

    def __call__(self, x) -> np.ndarray:
        """Fraction of samples less than or equal to ``x``."""
        x = np.asarray(x, dtype=np.float64)
        positions = np.searchsorted(self.sorted_values, x, side="right")
        return positions / self.n

    def quantile(self, q) -> np.ndarray:
        """Inverse CDF: smallest sample value with CDF >= ``q``."""
        q = np.asarray(q, dtype=np.float64)
        if np.any(q < 0) or np.any(q > 1):
            raise ValueError("quantiles must lie in [0, 1]")
        positions = np.ceil(q * self.n).astype(np.int64)
        positions = np.clip(positions - 1, 0, self.n - 1)
        return self.sorted_values[positions]

    def support(self) -> Tuple[float, float]:
        """The (min, max) of the underlying sample."""
        return float(self.sorted_values[0]), float(self.sorted_values[-1])

    def evaluation_grid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (x, F(x)) at every distinct sample value, for plotting."""
        values = np.unique(self.sorted_values)
        return values, self(values)


def rank_sizes(values) -> np.ndarray:
    """Sort values into rank order: index 0 is the largest (rank 1).

    This is the transform behind "downloads per app as a function of app
    rank" (Figure 3): ``rank_sizes(downloads)[i]`` is the download count of
    the app with rank ``i + 1``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    return np.sort(values)[::-1]


def cumulative_share(values, top_fraction) -> np.ndarray:
    """Share of the total carried by the top ``top_fraction`` of items.

    This computes the Pareto-effect statistics of Figure 2: e.g.
    ``cumulative_share(downloads, 0.10)`` is the fraction of all downloads
    attributable to the most popular 10% of apps.  Accepts scalars or arrays
    of fractions.
    """
    ranked = rank_sizes(values)
    total = ranked.sum()
    if total <= 0:
        raise ValueError("values must have a positive sum")
    fractions = np.atleast_1d(np.asarray(top_fraction, dtype=np.float64))
    if np.any(fractions < 0) or np.any(fractions > 1):
        raise ValueError("top_fraction must lie in [0, 1]")
    cumulative = np.cumsum(ranked) / total
    counts = np.ceil(fractions * ranked.size).astype(np.int64)
    shares = np.where(counts == 0, 0.0, cumulative[np.maximum(counts - 1, 0)])
    if np.isscalar(top_fraction) or np.asarray(top_fraction).ndim == 0:
        return shares[0]
    return shares


def pareto_curve(values, points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """The full Figure-2 curve: (normalized rank %, cumulative download %).

    Returns two arrays of length ``points``: the x-axis (percentage of apps,
    from most to least popular) and the y-axis (cumulative percentage of
    downloads accounted for by those apps).
    """
    if points < 2:
        raise ValueError("points must be at least 2")
    ranked = rank_sizes(values)
    total = ranked.sum()
    if total <= 0:
        raise ValueError("values must have a positive sum")
    cumulative = np.cumsum(ranked) / total
    fractions = np.linspace(1.0 / points, 1.0, points)
    counts = np.ceil(fractions * ranked.size).astype(np.int64)
    y = cumulative[counts - 1] * 100.0
    x = fractions * 100.0
    return x, y


def log_spaced_ranks(n: int, points: int = 60) -> np.ndarray:
    """Approximately log-spaced 1-based ranks covering ``1..n``.

    Used when summarizing rank-downloads series for textual figures: a
    log-log plot needs dense coverage at the head and sparse at the tail.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if points <= 0:
        raise ValueError(f"points must be positive, got {points}")
    raw = np.unique(
        np.round(np.logspace(0, np.log10(n), points)).astype(np.int64)
    )
    return raw[(raw >= 1) & (raw <= n)]


def histogram_shares(values, bin_edges) -> np.ndarray:
    """Fraction of the total sum of ``values`` falling into each bin.

    ``bin_edges`` follows numpy's convention (len(bins) = len(edges) - 1).
    Used for "percentage of downloads per category price bin" style plots.
    """
    values = np.asarray(values, dtype=np.float64)
    sums, _ = np.histogram(values, bins=bin_edges, weights=values)
    total = values.sum()
    if total <= 0:
        raise ValueError("values must have a positive sum")
    return sums / total
