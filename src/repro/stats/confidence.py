"""Confidence intervals for sample means.

Figure 6 of the paper plots the average temporal affinity per user group
together with 95% confidence intervals.  We provide the standard normal
approximation (adequate for the group sizes the paper keeps: groups with
fewer than 10 samples are dropped) plus a bootstrap variant for small
samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.rng import SeedLike, make_rng

# Two-sided z critical values for common confidence levels.
_Z_TABLE = {
    0.80: 1.2815515655446004,
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.98: 2.3263478740408408,
    0.99: 2.5758293035489004,
}


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    lower: float
    upper: float
    level: float
    n: int

    @property
    def half_width(self) -> float:
        """Half the interval width (the error-bar length)."""
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


def z_critical(level: float) -> float:
    """Two-sided z critical value for a confidence ``level`` in (0, 1).

    Exact table lookup for common levels; otherwise a rational
    approximation of the normal quantile (Acklam's algorithm) accurate to
    ~1e-9, which avoids a scipy dependency.
    """
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if level in _Z_TABLE:
        return _Z_TABLE[level]
    return _normal_quantile(0.5 + level / 2.0)


def _normal_quantile(p: float) -> float:
    """Inverse standard normal CDF via Acklam's rational approximation."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = np.sqrt(-2 * np.log(p))
        numerator = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        denominator = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        return float(numerator / denominator)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        numerator = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        denominator = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        return float(numerator * q / denominator)
    q = np.sqrt(-2 * np.log(1 - p))
    numerator = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    denominator = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    return float(-numerator / denominator)


def mean_confidence_interval(samples, level: float = 0.95) -> ConfidenceInterval:
    """Normal-approximation CI for the mean of ``samples``."""
    values = np.asarray(samples, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    mean = float(values.mean())
    if values.size == 1:
        return ConfidenceInterval(mean=mean, lower=mean, upper=mean, level=level, n=1)
    std_error = float(values.std(ddof=1)) / np.sqrt(values.size)
    margin = z_critical(level) * std_error
    return ConfidenceInterval(
        mean=mean,
        lower=mean - margin,
        upper=mean + margin,
        level=level,
        n=values.size,
    )


def bootstrap_mean_interval(
    samples,
    level: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean; robust for small samples."""
    values = np.asarray(samples, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    if n_resamples < 2:
        raise ValueError("n_resamples must be at least 2")
    rng = make_rng(seed)
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    resampled_means = values[indices].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lower, upper = np.quantile(resampled_means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        mean=float(values.mean()),
        lower=float(lower),
        upper=float(upper),
        level=level,
        n=values.size,
    )
