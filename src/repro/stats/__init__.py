"""Statistics toolkit used throughout the reproduction.

This package provides the low-level numerical building blocks shared by the
marketplace simulator, the workload models, and the analysis pipeline:

- :mod:`repro.stats.rng` -- deterministic random number generation helpers.
- :mod:`repro.stats.sampling` -- the alias method for O(1) categorical
  sampling, used heavily by the Monte Carlo download simulators.
- :mod:`repro.stats.zipf` -- finite Zipf (zeta) distributions, which underpin
  every popularity model in the paper.
- :mod:`repro.stats.distributions` -- empirical CDFs, quantiles, histogram
  binning, and rank-size transforms.
- :mod:`repro.stats.correlation` -- Pearson correlation (the paper reports
  Pearson coefficients in Figures 12, 14, and 15).
- :mod:`repro.stats.confidence` -- normal-approximation confidence intervals
  (Figure 6 plots 95% CIs per user group).
- :mod:`repro.stats.loglog` -- least-squares slope estimation on log-log
  rank/frequency data (the Zipf exponents annotated in Figures 3 and 11).
"""

from repro.stats.confidence import mean_confidence_interval
from repro.stats.correlation import pearson
from repro.stats.distributions import (
    Ecdf,
    cumulative_share,
    log_spaced_ranks,
    rank_sizes,
)
from repro.stats.loglog import fit_loglog_slope
from repro.stats.rng import make_rng, make_seed_sequence, spawn_rngs
from repro.stats.sampling import AliasSampler
from repro.stats.zipf import ZipfDistribution

__all__ = [
    "AliasSampler",
    "Ecdf",
    "ZipfDistribution",
    "cumulative_share",
    "fit_loglog_slope",
    "log_spaced_ranks",
    "make_rng",
    "make_seed_sequence",
    "mean_confidence_interval",
    "pearson",
    "rank_sizes",
    "spawn_rngs",
]
