"""Categorical sampling via the alias method (Vose's algorithm).

The Monte Carlo download simulators draw hundreds of thousands to millions of
samples from fixed categorical distributions (global Zipf over all apps,
per-cluster Zipf over the apps of a category).  A naive inverse-CDF search is
O(log n) per draw and, worse, re-building cumulative sums repeatedly is O(n).
The alias method spends O(n) once at construction and then answers each draw
in O(1) with exactly two random numbers.
"""

from __future__ import annotations


import numpy as np

from repro.devtools.flow import pure
from repro.stats.rng import SeedLike, make_rng


@pure
def _build_alias_table(weights: np.ndarray, total: float):
    """Vectorized Vose construction of the (prob, alias) tables.

    The classic construction pops one underfull ("small") and one
    overfull ("large") outcome per iteration of a Python loop.  This
    build finalizes *every* current small per pass instead: cumulative
    deficits of the smalls are matched against cumulative surpluses of
    the larges with one ``searchsorted``, each small takes its alias from
    the large its deficit lands on, and larges that drop below one
    re-enter the next pass as smalls.  Every pass finalizes all its
    smalls, so the number of passes is tiny in practice (Zipf-shaped
    inputs take a handful), and each pass is pure NumPy.

    The alias-method invariant is preserved exactly as in the scalar
    algorithm: finalizing small ``s`` against large ``g`` moves
    ``1 - p[s]`` of ``g``'s mass into column ``s``.  A boundary small
    whose deficit straddles two larges over-draws its large by less than
    one unit, which keeps that large's residual strictly positive --
    the same numerical-leftover regime the scalar build has, drained the
    same way (residuals converge to probability one).
    """
    n = weights.size
    scaled = weights * (n / total)
    alias = np.arange(n, dtype=np.int64)
    prob = np.ones(n, dtype=np.float64)

    small = np.flatnonzero(scaled < 1.0)
    large = np.flatnonzero(scaled >= 1.0)
    while small.size and large.size:
        deficits = 1.0 - scaled[small]
        surpluses = scaled[large] - 1.0
        # Which large does each small's cumulative deficit land on?  The
        # pool's total deficit equals its total surplus exactly, so only
        # float roundoff in the cumsums can push a boundary small past
        # the last large; clamping parks it there, over-drawing by at
        # most that roundoff.
        owner = np.searchsorted(np.cumsum(surpluses), np.cumsum(deficits))
        np.minimum(owner, large.size - 1, out=owner)
        prob[small] = scaled[small]
        alias[small] = large[owner]
        consumed = np.bincount(owner, weights=deficits, minlength=large.size)
        scaled[large] -= consumed
        still_large = scaled[large] >= 1.0
        small = large[~still_large]
        large = large[still_large]
    return prob, alias


class AliasSampler:
    """O(1) sampler over a fixed discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights, one per outcome.  They do not need to sum to
        one; normalization happens internally.

    Examples
    --------
    >>> sampler = AliasSampler([0.7, 0.2, 0.1])
    >>> draws = sampler.sample(1000, seed=42)
    >>> int(draws.min()) >= 0 and int(draws.max()) <= 2
    True
    """

    def __init__(self, weights) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must have a positive sum")

        self._prob, self._alias = _build_alias_table(weights, total)
        # float32 copy for the batched accept test: one compare against a
        # [0, 1) threshold needs no double precision, and float32 coins
        # are cheaper to generate and compare at batch sizes.
        self._prob32 = self._prob.astype(np.float32)
        self._weights = weights / total

    @property
    def n_outcomes(self) -> int:
        """Number of outcomes in the distribution."""
        return self._prob.size

    @property
    def probabilities(self) -> np.ndarray:
        """Normalized outcome probabilities (a copy)."""
        return self._weights.copy()

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` outcome indices.

        Returns an ``int64`` array of indices in ``[0, n_outcomes)``.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        rng = make_rng(seed)
        columns = rng.integers(0, self.n_outcomes, size=size)
        coins = rng.random(size)
        take_alias = coins >= self._prob[columns]
        return np.where(take_alias, self._alias[columns], columns)

    def sample_fast(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` outcome indices with float32 accept coins.

        Statistically equivalent to :meth:`sample` (the accept test is a
        single threshold compare, which needs no double precision) but
        roughly twice as cheap to generate and compare at batch sizes.
        The coin dtype changes generator consumption, so this produces a
        *different* -- equally valid -- stream than :meth:`sample`; the
        rejection-free download kernels use it, while :meth:`sample`
        keeps the historical stream for existing callers.
        """
        columns = rng.integers(0, self.n_outcomes, size=size)
        take_alias = rng.random(size, dtype=np.float32) >= self._prob32[columns]
        return np.where(take_alias, self._alias[columns], columns)

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single outcome index using an existing generator."""
        column = int(rng.integers(0, self.n_outcomes))
        if rng.random() < self._prob[column]:
            return column
        return int(self._alias[column])


#: Default head width of a :class:`HeadTailSampler`.  Eight slots keep a
#: user's head-ownership bits inside a single ledger byte, and for the
#: paper's Zipf exponents the top eight outcomes already carry most of
#: the mass (85% at ``zr = 1.7``), so masked redraws in the tail are rare.
DEFAULT_HEAD_SIZE = 8


class HeadTailSampler:
    """A categorical split into an explicit top-``K`` head and an alias tail.

    The fetch-at-most-once kernels renormalize a distribution against a
    user's download ledger.  Doing that exactly over all ``n`` outcomes
    is O(n) per draw; doing it by rejection alone degenerates on the
    heavy head of a Zipf law, where a user quickly owns the most likely
    outcomes and nearly every redraw repeats one of them.  Splitting the
    distribution solves both ends:

    - the **head** -- the ``K`` largest-weight outcomes -- is small enough
      to mask and renormalize exactly against per-user ownership bits;
    - the **tail** -- everything else -- is drawn from a dedicated
      :class:`AliasSampler` and thinned against the ledger, which is a
      near-certain accept because a user rarely owns much tail mass.

    Weights need not be normalized; ``head_weights`` and ``tail_weight``
    share the input scale so mixture arithmetic can use them directly.
    ``outcomes`` optionally maps local outcome indices to external ids
    (e.g. cluster-member positions to global app indices); ``head`` and
    tail draws are then expressed in the external id space.
    """

    def __init__(
        self,
        weights,
        head_size: int = DEFAULT_HEAD_SIZE,
        outcomes=None,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        if head_size < 1:
            raise ValueError("head_size must be >= 1")
        if outcomes is None:
            outcomes = np.arange(weights.size, dtype=np.int64)
        else:
            outcomes = np.asarray(outcomes, dtype=np.int64)
            if outcomes.shape != weights.shape:
                raise ValueError("outcomes must align with weights")
        order = np.argsort(-weights, kind="stable")
        k = min(head_size, weights.size)
        self.head = outcomes[order[:k]]
        self.head_weights = weights[order[:k]]
        tail_order = order[k:]
        self._tail_outcomes = outcomes[tail_order]
        tail_weights = weights[tail_order]
        self.tail_weight = float(tail_weights.sum())
        self._tail_sampler = (
            AliasSampler(tail_weights) if self.tail_weight > 0 else None
        )
        self._byte_tables = None

    @property
    def head_size(self) -> int:
        """Number of outcomes in the head."""
        return self.head.size

    @property
    def has_tail(self) -> bool:
        """Whether any positive mass sits outside the head."""
        return self._tail_sampler is not None

    def sample_tail(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` tail outcomes (external ids, unthinned)."""
        if self._tail_sampler is None:
            raise ValueError("distribution has no tail mass to sample")
        return self._tail_outcomes[self._tail_sampler.sample_fast(size, rng)]

    @property
    def tail_outcomes(self) -> np.ndarray:
        """External ids of tail outcomes, in alias-table order (a view).

        ``sample_tail(size, rng)`` equals
        ``tail_outcomes[sample_tail_indices(size, rng)]``; callers that
        pre-compose this mapping with their own tables (the fused
        clustered kernel) skip a gather per draw.
        """
        return self._tail_outcomes

    def sample_tail_indices(
        self, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``size`` positions into :attr:`tail_outcomes`."""
        if self._tail_sampler is None:
            raise ValueError("distribution has no tail mass to sample")
        return self._tail_sampler.sample_fast(size, rng)

    def head_byte_tables(self):
        """Masked-head cumulative tables indexed by ownership byte.

        With ``k <= 8`` head slots, a user's head ownership packs into
        one byte, and the masked cumulative weights depend on nothing
        else -- so all ``2**k`` renormalizations can be precomputed.
        Returns ``(cums, avail)`` where ``cums[b, j]`` is the cumulative
        masked head weight through slot ``j`` for ownership byte ``b``
        and ``avail[b] = cums[b, -1]`` is the surviving head mass.  The
        masked-draw kernels turn their per-user O(k) renormalization
        loop into two table gathers.  float32 throughout: the handful of
        O(1)-magnitude partial sums are far inside float32's exact
        range, and the tables' 256-row working set stays in L1.
        """
        if self._byte_tables is None:
            k = self.head.size
            if k > 8:
                raise ValueError("byte tables require head_size <= 8")
            codes = np.arange(1 << k, dtype=np.uint16)
            open_ = ((codes[:, None] >> np.arange(k)[None, :]) & 1) == 0
            weights = self.head_weights.astype(np.float32)
            cums = np.cumsum(
                open_ * weights[None, :], axis=1, dtype=np.float32
            )
            if k < 8:
                # Bits >= k never appear in ledger masks, but padding to
                # 256 rows keeps the gather unconditional.
                cums = np.vstack([cums] * (1 << (8 - k)))
            self._byte_tables = (
                np.ascontiguousarray(cums),
                np.ascontiguousarray(cums[:, -1]),
            )
        return self._byte_tables
