"""Categorical sampling via the alias method (Vose's algorithm).

The Monte Carlo download simulators draw hundreds of thousands to millions of
samples from fixed categorical distributions (global Zipf over all apps,
per-cluster Zipf over the apps of a category).  A naive inverse-CDF search is
O(log n) per draw and, worse, re-building cumulative sums repeatedly is O(n).
The alias method spends O(n) once at construction and then answers each draw
in O(1) with exactly two random numbers.
"""

from __future__ import annotations


import numpy as np

from repro.stats.rng import SeedLike, make_rng


class AliasSampler:
    """O(1) sampler over a fixed discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights, one per outcome.  They do not need to sum to
        one; normalization happens internally.

    Examples
    --------
    >>> sampler = AliasSampler([0.7, 0.2, 0.1])
    >>> draws = sampler.sample(1000, seed=42)
    >>> int(draws.min()) >= 0 and int(draws.max()) <= 2
    True
    """

    def __init__(self, weights) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must have a positive sum")

        n = weights.size
        probabilities = weights * (n / total)
        alias = np.zeros(n, dtype=np.int64)
        prob = np.zeros(n, dtype=np.float64)

        small = [i for i in range(n) if probabilities[i] < 1.0]
        large = [i for i in range(n) if probabilities[i] >= 1.0]

        while small and large:
            s = small.pop()
            g = large.pop()
            prob[s] = probabilities[s]
            alias[s] = g
            probabilities[g] = (probabilities[g] + probabilities[s]) - 1.0
            if probabilities[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        # Numerical leftovers: both queues drain to probability one.
        for remaining in large + small:
            prob[remaining] = 1.0
            alias[remaining] = remaining

        self._prob = prob
        self._alias = alias
        self._weights = weights / total

    @property
    def n_outcomes(self) -> int:
        """Number of outcomes in the distribution."""
        return self._prob.size

    @property
    def probabilities(self) -> np.ndarray:
        """Normalized outcome probabilities (a copy)."""
        return self._weights.copy()

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` outcome indices.

        Returns an ``int64`` array of indices in ``[0, n_outcomes)``.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        rng = make_rng(seed)
        columns = rng.integers(0, self.n_outcomes, size=size)
        coins = rng.random(size)
        take_alias = coins >= self._prob[columns]
        return np.where(take_alias, self._alias[columns], columns)

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single outcome index using an existing generator."""
        column = int(rng.integers(0, self.n_outcomes))
        if rng.random() < self._prob[column]:
            return column
        return int(self._alias[column])
