"""Categorical sampling via the alias method (Vose's algorithm).

The Monte Carlo download simulators draw hundreds of thousands to millions of
samples from fixed categorical distributions (global Zipf over all apps,
per-cluster Zipf over the apps of a category).  A naive inverse-CDF search is
O(log n) per draw and, worse, re-building cumulative sums repeatedly is O(n).
The alias method spends O(n) once at construction and then answers each draw
in O(1) with exactly two random numbers.
"""

from __future__ import annotations


import numpy as np

from repro.stats.rng import SeedLike, make_rng


def _build_alias_table(weights: np.ndarray, total: float):
    """Vectorized Vose construction of the (prob, alias) tables.

    The classic construction pops one underfull ("small") and one
    overfull ("large") outcome per iteration of a Python loop.  This
    build finalizes *every* current small per pass instead: cumulative
    deficits of the smalls are matched against cumulative surpluses of
    the larges with one ``searchsorted``, each small takes its alias from
    the large its deficit lands on, and larges that drop below one
    re-enter the next pass as smalls.  Every pass finalizes all its
    smalls, so the number of passes is tiny in practice (Zipf-shaped
    inputs take a handful), and each pass is pure NumPy.

    The alias-method invariant is preserved exactly as in the scalar
    algorithm: finalizing small ``s`` against large ``g`` moves
    ``1 - p[s]`` of ``g``'s mass into column ``s``.  A boundary small
    whose deficit straddles two larges over-draws its large by less than
    one unit, which keeps that large's residual strictly positive --
    the same numerical-leftover regime the scalar build has, drained the
    same way (residuals converge to probability one).
    """
    n = weights.size
    scaled = weights * (n / total)
    alias = np.arange(n, dtype=np.int64)
    prob = np.ones(n, dtype=np.float64)

    small = np.flatnonzero(scaled < 1.0)
    large = np.flatnonzero(scaled >= 1.0)
    while small.size and large.size:
        deficits = 1.0 - scaled[small]
        surpluses = scaled[large] - 1.0
        # Which large does each small's cumulative deficit land on?  The
        # pool's total deficit equals its total surplus exactly, so only
        # float roundoff in the cumsums can push a boundary small past
        # the last large; clamping parks it there, over-drawing by at
        # most that roundoff.
        owner = np.searchsorted(np.cumsum(surpluses), np.cumsum(deficits))
        np.minimum(owner, large.size - 1, out=owner)
        prob[small] = scaled[small]
        alias[small] = large[owner]
        consumed = np.bincount(owner, weights=deficits, minlength=large.size)
        scaled[large] -= consumed
        still_large = scaled[large] >= 1.0
        small = large[~still_large]
        large = large[still_large]
    return prob, alias


class AliasSampler:
    """O(1) sampler over a fixed discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights, one per outcome.  They do not need to sum to
        one; normalization happens internally.

    Examples
    --------
    >>> sampler = AliasSampler([0.7, 0.2, 0.1])
    >>> draws = sampler.sample(1000, seed=42)
    >>> int(draws.min()) >= 0 and int(draws.max()) <= 2
    True
    """

    def __init__(self, weights) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must have a positive sum")

        self._prob, self._alias = _build_alias_table(weights, total)
        self._weights = weights / total

    @property
    def n_outcomes(self) -> int:
        """Number of outcomes in the distribution."""
        return self._prob.size

    @property
    def probabilities(self) -> np.ndarray:
        """Normalized outcome probabilities (a copy)."""
        return self._weights.copy()

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` outcome indices.

        Returns an ``int64`` array of indices in ``[0, n_outcomes)``.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        rng = make_rng(seed)
        columns = rng.integers(0, self.n_outcomes, size=size)
        coins = rng.random(size)
        take_alias = coins >= self._prob[columns]
        return np.where(take_alias, self._alias[columns], columns)

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single outcome index using an existing generator."""
        column = int(rng.integers(0, self.n_outcomes))
        if rng.random() < self._prob[column]:
            return column
        return int(self._alias[column])
