"""Distribution comparison: KS statistics, QQ data, log-binned ratios.

The paper compares distributions informally (overlaid log-log curves and
the Equation-6 distance).  These utilities add the standard formal
companions, used by the model-validation tests and the ablation benches:

- :func:`ks_statistic` -- the two-sample Kolmogorov-Smirnov distance,
  a scale-free measure of how far apart two samples' CDFs are;
- :func:`qq_points` -- quantile-quantile pairs for plotting two samples
  against each other;
- :func:`log_binned_ratio` -- per-decade ratios of two positive samples'
  mass, which localizes *where* (head, trunk, tail) two rank curves
  disagree.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.stats.distributions import Ecdf


def ks_statistic(sample_a, sample_b) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (no p-value).

    Returns ``sup_x |F_a(x) - F_b(x)|`` over the pooled support; 0 means
    identical empirical distributions, 1 means disjoint supports.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
        raise ValueError("samples must be non-empty 1-D arrays")
    ecdf_a = Ecdf.from_samples(a)
    ecdf_b = Ecdf.from_samples(b)
    grid = np.union1d(ecdf_a.sorted_values, ecdf_b.sorted_values)
    return float(np.max(np.abs(ecdf_a(grid) - ecdf_b(grid))))


def qq_points(
    sample_a, sample_b, n_points: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantile-quantile pairs of two samples.

    Returns ``(quantiles_a, quantiles_b)`` evaluated at ``n_points``
    evenly spaced probabilities in (0, 1); points on the diagonal mean
    the distributions agree at that quantile.
    """
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("samples must be non-empty")
    probabilities = np.linspace(0.0, 1.0, n_points + 2)[1:-1]
    return (
        np.quantile(a, probabilities),
        np.quantile(b, probabilities),
    )


def log_binned_ratio(
    sample_a, sample_b, bins_per_decade: int = 2
) -> Tuple[np.ndarray, np.ndarray]:
    """Mass ratio of two positive samples per logarithmic bin.

    Returns ``(bin_centers, ratios)`` where ``ratios[i]`` is the share of
    sample A's total mass in bin ``i`` divided by sample B's share there
    (``inf`` where B has no mass, ``nan`` where neither has).  Useful to
    localize head/tail disagreements between two download curves.
    """
    if bins_per_decade < 1:
        raise ValueError("bins_per_decade must be >= 1")
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    a = a[a > 0]
    b = b[b > 0]
    if a.size == 0 or b.size == 0:
        raise ValueError("samples must contain positive values")
    low = np.floor(np.log10(min(a.min(), b.min())))
    high = np.ceil(np.log10(max(a.max(), b.max())))
    n_bins = max(1, int((high - low) * bins_per_decade))
    edges = np.logspace(low, high, n_bins + 1)
    mass_a, _ = np.histogram(a, bins=edges, weights=a)
    mass_b, _ = np.histogram(b, bins=edges, weights=b)
    share_a = mass_a / a.sum()
    share_b = mass_b / b.sum()
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = share_a / share_b
    centers = np.sqrt(edges[:-1] * edges[1:])
    return centers, ratios
