"""Deterministic random number generation helpers.

Every stochastic component in this library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion logic here keeps
the rest of the codebase free of ``isinstance`` boilerplate and makes it
trivial to reproduce any experiment from a single integer seed.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

_MERSENNE_61 = 2**61 - 1


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like value.

    Passing an existing generator returns it unchanged, so functions can
    accept ``seed=rng`` to share a stream, or ``seed=1234`` for a fresh one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def make_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Return a :class:`numpy.random.SeedSequence` from any seed-like value.

    This is the spawning-side counterpart of :func:`make_rng`: anything that
    needs independent child streams (multi-process replication, per-worker
    generators) coerces here instead of re-implementing ``SeedLike``
    dispatch.  Passing a sequence returns it unchanged; passing a generator
    derives a child sequence from one draw of its stream.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63)))
    return np.random.SeedSequence(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children do not
    overlap even when ``count`` is large.  Useful for giving each simulated
    user or each crawler worker its own stream while staying reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = make_seed_sequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def stable_hash(text: str) -> int:
    """Stable cross-process hash of a string.

    Python's built-in ``hash`` is randomized per process, which would break
    reproducibility of seeds derived from string salts.
    """
    acc = 0
    for byte in text.encode("utf-8"):
        acc = (acc * 131 + byte) % _MERSENNE_61
    return acc


def derive_seed(base_seed: int, *salt: Union[int, str]) -> int:
    """Derive a stable child seed from a base seed and salt values.

    This gives named substreams ("crawler", "behavior", day index, ...) that
    are independent of the order in which components draw random numbers.
    """
    entropy = [int(base_seed)]
    for item in salt:
        if isinstance(item, str):
            entropy.append(stable_hash(item))
        else:
            entropy.append(int(item))
    child = np.random.SeedSequence(entropy)
    return int(child.generate_state(1, dtype=np.uint64)[0] % (2**63))
