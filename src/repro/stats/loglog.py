"""Slope estimation on log-log rank/frequency data.

Figures 3 and 11 of the paper annotate each rank-downloads curve with the
slope of its main Zipf "trunk" (e.g. 1.42 for Anzhi, 1.72 for SlideMe paid
apps).  This module fits that slope by ordinary least squares on
``log(rank)`` vs. ``log(downloads)``, optionally restricted to a trunk
region that excludes the truncated head and tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class LogLogFit:
    """Result of a least-squares fit ``log10(y) = intercept - slope*log10(x)``.

    ``slope`` is reported as a positive number for decaying data, matching
    the convention of the paper's figure annotations.
    """

    slope: float
    intercept: float
    r_squared: float
    n_points: int

    def predict(self, x) -> np.ndarray:
        """Predicted y values at the given x values."""
        x = np.asarray(x, dtype=np.float64)
        return 10.0 ** (self.intercept - self.slope * np.log10(x))


def fit_loglog_slope(
    x,
    y,
    x_range: Optional[Tuple[float, float]] = None,
) -> LogLogFit:
    """Fit a power law ``y ~ x**-slope`` by OLS in log-log space.

    Parameters
    ----------
    x, y:
        Positive data (typically ranks and download counts).  Points with
        non-positive coordinates are dropped since they have no logarithm.
    x_range:
        Optional (low, high) bounds on ``x``; only points inside are fitted.
        Used to restrict the fit to the Zipf trunk.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1 or x.size != y.size:
        raise ValueError("x and y must be 1-D arrays of equal length")
    mask = (x > 0) & (y > 0) & np.isfinite(x) & np.isfinite(y)
    if x_range is not None:
        low, high = x_range
        mask &= (x >= low) & (x <= high)
    x_fit, y_fit = x[mask], y[mask]
    if x_fit.size < 2:
        raise ValueError("need at least 2 positive points to fit a slope")

    log_x = np.log10(x_fit)
    log_y = np.log10(y_fit)
    slope_ols, intercept = np.polyfit(log_x, log_y, deg=1)
    predictions = intercept + slope_ols * log_x
    residual_ss = float(((log_y - predictions) ** 2).sum())
    total_ss = float(((log_y - log_y.mean()) ** 2).sum())
    r_squared = 1.0 if total_ss == 0 else 1.0 - residual_ss / total_ss
    return LogLogFit(
        slope=float(-slope_ols),
        intercept=float(intercept),
        r_squared=r_squared,
        n_points=int(x_fit.size),
    )


def trunk_bounds(
    n: int,
    head_fraction: float = 0.01,
    tail_fraction: float = 0.5,
) -> Tuple[float, float]:
    """Default trunk region for an ``n``-app rank curve.

    The paper's distributions are truncated at both ends; the "trunk" the
    slope annotations refer to excludes roughly the top 1% of ranks (head,
    flattened by fetch-at-most-once) and the bottom half (tail, bent by the
    clustering effect).
    """
    if n < 4:
        raise ValueError("need at least 4 ranks to define a trunk")
    if not 0 <= head_fraction < tail_fraction <= 1:
        raise ValueError("require 0 <= head_fraction < tail_fraction <= 1")
    low = max(1.0, np.floor(head_fraction * n))
    high = max(low + 1.0, np.ceil(tail_fraction * n))
    return low, high
