"""Correlation coefficients.

The paper reports Pearson's correlation coefficient in several places:
price vs. downloads (-0.229) and price vs. number of apps (-0.240) in
Figure 12, income vs. number of apps per developer (0.008) in Figure 14,
and the category-level revenue/apps/developers correlations of Section 6.2.
We implement Pearson (and Spearman as a robustness companion) from first
principles so the analysis layer does not need scipy at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CorrelationResult:
    """A correlation coefficient together with the sample size used."""

    coefficient: float
    n: int

    def __float__(self) -> float:
        return self.coefficient


def _validate_pair(x, y) -> tuple:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1:
        raise ValueError("inputs must be 1-D arrays")
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("need at least 2 observations")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ValueError("inputs must be finite")
    return x, y


def pearson(x, y) -> CorrelationResult:
    """Pearson's product-moment correlation coefficient.

    Returns a coefficient of 0.0 when either input is constant (the paper's
    convention of "not correlated" rather than an undefined value).
    """
    x, y = _validate_pair(x, y)
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denom = np.sqrt((x_centered**2).sum() * (y_centered**2).sum())
    if denom == 0:
        return CorrelationResult(coefficient=0.0, n=x.size)
    coefficient = float((x_centered * y_centered).sum() / denom)
    # Guard against floating point drift outside [-1, 1].
    coefficient = max(-1.0, min(1.0, coefficient))
    return CorrelationResult(coefficient=coefficient, n=x.size)


def _ranks_with_ties(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = average_rank
        i = j + 1
    return ranks


def spearman(x, y) -> CorrelationResult:
    """Spearman's rank correlation (Pearson over tie-averaged ranks)."""
    x, y = _validate_pair(x, y)
    return pearson(_ranks_with_ties(x), _ranks_with_ties(y))
