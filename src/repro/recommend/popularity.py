"""Global-popularity recommendation baseline.

The simplest possible recommender: suggest the globally most downloaded
apps the user does not yet own.  It ignores both similarity and
categories, so it bounds from below what the clustering-aware and
collaborative recommenders must beat -- and on Zipf-dominated traffic it
is surprisingly hard to beat, which is exactly why the paper argues the
clustering effect is the signal worth exploiting.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence


class PopularityRecommender:
    """Recommend the most-owned apps the user lacks."""

    name = "global-popularity"

    def __init__(self) -> None:
        self._histories: Dict[Hashable, set] = {}
        self._ranking: List[Hashable] = []

    def fit(
        self,
        histories: Dict[Hashable, Sequence[Hashable]],
        popularity: Optional[Dict[Hashable, float]] = None,
    ) -> None:
        """Index histories; rank apps by ownership (or given popularity)."""
        self._histories = {user: set(apps) for user, apps in histories.items()}
        if popularity is None:
            popularity = {}
            for apps in histories.values():
                for app in apps:
                    popularity[app] = popularity.get(app, 0.0) + 1.0
        self._ranking = sorted(
            popularity, key=lambda app: popularity[app], reverse=True
        )

    def recommend(self, user: Hashable, k: int = 10) -> List[Hashable]:
        """The top-``k`` most popular apps the user does not own."""
        if k < 1:
            raise ValueError("k must be >= 1")
        owned = self._histories.get(user, set())
        picks: List[Hashable] = []
        for app in self._ranking:
            if app not in owned:
                picks.append(app)
                if len(picks) == k:
                    break
        return picks
