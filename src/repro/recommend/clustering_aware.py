"""Clustering-aware recommendation (the paper's Section 7 proposal).

The paper suggests a recommender that capitalizes on the clustering
effect and on temporal affinity: suggest popular apps from the categories
a user *recently* downloaded from, rather than only apps owned by similar
users.  This recommender scores candidate apps by

    score(app) = recency_weight(category of app) * popularity(app)

where the recency weight decays geometrically over the user's download
history (most recent category first), honouring the temporal part of the
affinity finding, and popularity is the app's global download count.  An
optional diversity knob mixes in categories the user has never visited
(the "larger category diversity" implication).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence


class ClusteringAwareRecommender:
    """Recommend popular apps from a user's recent categories.

    Parameters
    ----------
    recency_decay:
        Geometric decay applied per step back in the user's history when
        weighting categories (1.0 = all history equal, small = only the
        latest download matters).
    exploration:
        Fraction of each recommendation list reserved for popular apps
        from categories the user has not visited (category diversity).
    """

    name = "clustering-aware"

    def __init__(
        self, recency_decay: float = 0.7, exploration: float = 0.0
    ) -> None:
        if not 0.0 < recency_decay <= 1.0:
            raise ValueError("recency_decay must be in (0, 1]")
        if not 0.0 <= exploration < 1.0:
            raise ValueError("exploration must be in [0, 1)")
        self.recency_decay = recency_decay
        self.exploration = exploration
        self._histories: Dict[Hashable, List[Hashable]] = {}
        self._category_of: Dict[Hashable, Hashable] = {}
        self._popularity: Dict[Hashable, float] = {}
        self._apps_by_category: Dict[Hashable, List[Hashable]] = {}

    def fit(
        self,
        histories: Dict[Hashable, Sequence[Hashable]],
        category_of: Dict[Hashable, Hashable],
        popularity: Optional[Dict[Hashable, float]] = None,
    ) -> None:
        """Index histories (chronological), categories, and popularity.

        ``popularity`` defaults to the number of owners per app in the
        training histories.
        """
        self._histories = {user: list(apps) for user, apps in histories.items()}
        self._category_of = dict(category_of)
        if popularity is None:
            popularity = {}
            for apps in histories.values():
                for app in apps:
                    popularity[app] = popularity.get(app, 0.0) + 1.0
        self._popularity = dict(popularity)
        self._apps_by_category = {}
        for app, category in self._category_of.items():
            self._apps_by_category.setdefault(category, []).append(app)
        for apps in self._apps_by_category.values():
            apps.sort(key=lambda a: self._popularity.get(a, 0.0), reverse=True)

    def _category_weights(self, history: Sequence[Hashable]) -> Dict[Hashable, float]:
        """Recency-decayed weight per category of the user's history."""
        weights: Dict[Hashable, float] = {}
        weight = 1.0
        for app in reversed(history):
            category = self._category_of.get(app)
            if category is not None:
                weights[category] = weights.get(category, 0.0) + weight
            weight *= self.recency_decay
        return weights

    def recommend(self, user: Hashable, k: int = 10) -> List[Hashable]:
        """Top-``k`` apps: popular apps of the user's recent categories."""
        if k < 1:
            raise ValueError("k must be >= 1")
        history = self._histories.get(user, [])
        owned = set(history)
        weights = self._category_weights(history)

        scores: Dict[Hashable, float] = {}
        for category, weight in weights.items():
            for app in self._apps_by_category.get(category, []):
                if app in owned:
                    continue
                scores[app] = weight * self._popularity.get(app, 0.0)
        ranked = [
            app
            for app, _ in sorted(
                scores.items(), key=lambda pair: pair[1], reverse=True
            )
        ]

        n_explore = int(round(self.exploration * k))
        n_core = k - n_explore
        picks = ranked[:n_core]
        if n_explore > 0:
            visited = set(weights)
            explore_pool = [
                app
                for category, apps in self._apps_by_category.items()
                if category not in visited
                for app in apps[:3]
                if app not in owned
            ]
            explore_pool.sort(
                key=lambda a: self._popularity.get(a, 0.0), reverse=True
            )
            picks.extend(
                app for app in explore_pool[:n_explore] if app not in picks
            )
        return picks[:k]
