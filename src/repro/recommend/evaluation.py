"""Offline recommender evaluation: leave-last-out hit rate.

For each user with at least two downloads, hide the final download, train
on the rest, and ask each recommender for a top-k list; a "hit" means the
hidden app appears in the list.  This is the standard offline protocol
and is enough to show the clustering-aware recommender's advantage on
clustering-driven workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class EvaluationResult:
    """Hit-rate summary for one recommender."""

    recommender_name: str
    k: int
    n_users_evaluated: int
    hits: int

    @property
    def hit_rate(self) -> float:
        """Fraction of evaluated users whose hidden app was recommended."""
        if self.n_users_evaluated == 0:
            return 0.0
        return self.hits / self.n_users_evaluated

    def describe(self) -> str:
        """One comparison row."""
        return (
            f"{self.recommender_name}: hit-rate@{self.k} = "
            f"{self.hit_rate * 100:.1f}% "
            f"({self.hits}/{self.n_users_evaluated})"
        )


def leave_last_out_split(
    histories: Dict[Hashable, Sequence[Hashable]],
) -> Tuple[Dict[Hashable, List[Hashable]], Dict[Hashable, Hashable]]:
    """Split each history into (prefix, hidden last item).

    Users with fewer than two downloads are dropped (nothing to predict).
    """
    train: Dict[Hashable, List[Hashable]] = {}
    hidden: Dict[Hashable, Hashable] = {}
    for user, history in histories.items():
        history = list(history)
        if len(history) < 2:
            continue
        train[user] = history[:-1]
        hidden[user] = history[-1]
    return train, hidden


def evaluate_recommenders(
    recommenders: Sequence,
    histories: Dict[Hashable, Sequence[Hashable]],
    category_of: Optional[Dict[Hashable, Hashable]] = None,
    k: int = 10,
) -> List[EvaluationResult]:
    """Compare recommenders under leave-last-out at top-``k``.

    Each recommender must expose ``fit(...)`` and
    ``recommend(user, k)``; the clustering-aware recommender additionally
    needs ``category_of``, which is passed when its ``fit`` accepts it.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    train, hidden = leave_last_out_split(histories)
    results: List[EvaluationResult] = []
    for recommender in recommenders:
        try:
            recommender.fit(train, category_of)  # clustering-aware signature
        except TypeError:
            recommender.fit(train)
        hits = 0
        for user, target in hidden.items():
            if target in recommender.recommend(user, k=k):
                hits += 1
        results.append(
            EvaluationResult(
                recommender_name=getattr(recommender, "name", type(recommender).__name__),
                k=k,
                n_users_evaluated=len(hidden),
                hits=hits,
            )
        )
    return results
