"""User-user collaborative filtering over the download matrix.

The baseline recommender the paper contrasts with: find users with
similar download histories (cosine similarity over binary download
vectors) and recommend the apps most downloaded by the nearest
neighbours that the target user does not yet own.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple

import numpy as np


class CollaborativeFilteringRecommender:
    """Classic user-user CF on binary download histories.

    Parameters
    ----------
    n_neighbors:
        Size of the similar-user neighbourhood per query.
    min_overlap:
        Minimum number of co-downloaded apps for a user pair to be
        considered similar at all (suppresses one-app coincidences).
    """

    name = "collaborative-filtering"

    def __init__(self, n_neighbors: int = 20, min_overlap: int = 1) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if min_overlap < 1:
            raise ValueError("min_overlap must be >= 1")
        self.n_neighbors = n_neighbors
        self.min_overlap = min_overlap
        self._histories: Dict[Hashable, Set[Hashable]] = {}
        self._owners: Dict[Hashable, Set[Hashable]] = {}

    def fit(self, histories: Dict[Hashable, Sequence[Hashable]]) -> None:
        """Index per-user download histories (order is ignored here)."""
        self._histories = {
            user: set(apps) for user, apps in histories.items() if apps
        }
        self._owners = {}
        for user, apps in self._histories.items():
            for app in apps:
                self._owners.setdefault(app, set()).add(user)

    def _similarity(self, a: Set[Hashable], b: Set[Hashable]) -> float:
        overlap = len(a & b)
        if overlap < self.min_overlap:
            return 0.0
        return overlap / float(np.sqrt(len(a) * len(b)))

    def _neighbors(self, user: Hashable) -> List[Tuple[Hashable, float]]:
        history = self._histories.get(user)
        if not history:
            return []
        # Candidate neighbours: only users sharing at least one app.
        candidates: Set[Hashable] = set()
        for app in history:
            candidates |= self._owners.get(app, set())
        candidates.discard(user)
        # Sorted so equal-similarity neighbours always truncate the same
        # way at n_neighbors, whatever the set's iteration order was.
        scored = [
            (other, self._similarity(history, self._histories[other]))
            for other in sorted(candidates, key=repr)
        ]
        scored = [(other, score) for other, score in scored if score > 0]
        scored.sort(key=lambda pair: pair[1], reverse=True)
        return scored[: self.n_neighbors]

    def recommend(self, user: Hashable, k: int = 10) -> List[Hashable]:
        """Top-``k`` apps for a user, by similarity-weighted ownership."""
        if k < 1:
            raise ValueError("k must be >= 1")
        history = self._histories.get(user, set())
        scores: Dict[Hashable, float] = {}
        for neighbor, similarity in self._neighbors(user):
            for app in self._histories[neighbor]:
                if app in history:
                    continue
                scores[app] = scores.get(app, 0.0) + similarity
        ranked = sorted(scores.items(), key=lambda pair: pair[1], reverse=True)
        return [app for app, _ in ranked[:k]]
