"""Recommendation substrate (Section 7's "better recommendation systems").

The paper argues the clustering effect should inform appstore
recommendation: a collaborative-filtering recommender only suggests apps
downloaded by similar users, whereas a clustering-aware recommender can
also surface popular apps from the categories a user recently engaged
with, giving a richer candidate set and respecting temporal affinity.

- :mod:`repro.recommend.collaborative` -- classic user-user collaborative
  filtering over the download matrix.
- :mod:`repro.recommend.clustering_aware` -- the paper's proposal:
  recency-weighted category affinity plus per-category popularity.
- :mod:`repro.recommend.evaluation` -- leave-last-out offline evaluation
  comparing recommenders on hit rate.
"""

from repro.recommend.clustering_aware import ClusteringAwareRecommender
from repro.recommend.collaborative import CollaborativeFilteringRecommender
from repro.recommend.evaluation import EvaluationResult, evaluate_recommenders
from repro.recommend.popularity import PopularityRecommender

__all__ = [
    "ClusteringAwareRecommender",
    "CollaborativeFilteringRecommender",
    "EvaluationResult",
    "PopularityRecommender",
    "evaluate_recommenders",
]
