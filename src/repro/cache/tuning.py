"""Clustering-tuned cache configuration (the paper's Section 7 answer).

The policy ablation (``bench_ablation_cache_policy.py``) shows that what
clustering-driven demand punishes is *churn*: users' one-off,
fetch-at-most-once dives into category tails flush the stable popular
head out of recency-based caches.  The remedy is not per-category quotas
(those starve the hot head at small sizes) but aggressive protection of
proven entries: an SLRU whose protected segment takes most of the
capacity.

This module packages that finding: a factory for the clustering-tuned
policy, and a sweep utility that finds the best protected fraction for a
given workload empirically.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.cache.policies import SegmentedLruCache
from repro.cache.simulator import CacheSimulationResult, simulate_cache
from repro.core.models import DownloadEvent

# Under APP-CLUSTERING workloads the hit ratio rises monotonically with
# the protected fraction up to ~0.9 and flattens there (see the sweep in
# bench_ablation_cache_policy.py); 0.9 is the tuned default.
CLUSTERING_TUNED_PROTECTED_FRACTION = 0.9


def clustering_tuned_cache(capacity: int) -> SegmentedLruCache:
    """The recommended policy for clustering-driven app delivery.

    An SLRU with 90% of capacity protected: one hit promotes an app into
    the protected segment, and the small probation segment absorbs the
    one-off category-tail churn without displacing proven entries.
    """
    return SegmentedLruCache(
        capacity, protected_fraction=CLUSTERING_TUNED_PROTECTED_FRACTION
    )


def sweep_protected_fraction(
    event_factory: Callable[[], Iterable[DownloadEvent]],
    capacity: int,
    fractions: Sequence[float] = (0.3, 0.5, 0.7, 0.85, 0.95),
    warm_keys: Optional[Sequence[int]] = None,
) -> List[Tuple[float, CacheSimulationResult]]:
    """Hit ratio as a function of the SLRU protected fraction.

    ``event_factory`` must return a fresh, identically distributed event
    stream per call (e.g. ``spec.events`` of a
    :class:`repro.workload.generators.WorkloadSpec`).  Returns
    (fraction, result) pairs in the order given.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    results: List[Tuple[float, CacheSimulationResult]] = []
    for fraction in fractions:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"protected fraction must be in (0, 1): {fraction}")
        cache = SegmentedLruCache(capacity, protected_fraction=fraction)
        keys = warm_keys[:capacity] if warm_keys is not None else None
        results.append(
            (fraction, simulate_cache(event_factory(), cache, warm_keys=keys))
        )
    return results


def best_protected_fraction(
    event_factory: Callable[[], Iterable[DownloadEvent]],
    capacity: int,
    fractions: Sequence[float] = (0.3, 0.5, 0.7, 0.85, 0.95),
    warm_keys: Optional[Sequence[int]] = None,
) -> float:
    """The protected fraction with the highest hit ratio on a workload."""
    results = sweep_protected_fraction(
        event_factory, capacity, fractions=fractions, warm_keys=warm_keys
    )
    return max(results, key=lambda pair: pair[1].hit_ratio)[0]
