"""App-delivery caching substrate (Section 7, Figure 19).

The paper's implications section simulates a typical LRU app cache fed by
download workloads generated with the three models, and shows that the
clustering effect significantly reduces the hit ratio of a plain LRU
cache; it argues for clustering-aware replacement policies.

This package provides:

- :mod:`repro.cache.policies` -- LRU, LFU, FIFO, SLRU, and a
  category-aware policy (the "new replacement policy" direction the paper
  proposes), all behind one interface;
- :mod:`repro.cache.simulator` -- drives a policy with a download event
  stream and accounts hits/misses;
- :mod:`repro.cache.prefetch` -- category prefetching on top of a cache
  (the paper's "effective prefetching" implication).
"""

from repro.cache.policies import (
    CategoryAwareLruCache,
    FifoCache,
    LfuCache,
    LruCache,
    SegmentedLruCache,
)
from repro.cache.prefetch import CategoryPrefetcher
from repro.cache.simulator import (
    CacheSimulationResult,
    hit_ratio_curve,
    hit_ratio_curve_batched,
    simulate_cache,
    simulate_cache_batches,
)
from repro.cache.tuning import (
    best_protected_fraction,
    clustering_tuned_cache,
    sweep_protected_fraction,
)

__all__ = [
    "CacheSimulationResult",
    "CategoryAwareLruCache",
    "CategoryPrefetcher",
    "FifoCache",
    "LfuCache",
    "LruCache",
    "SegmentedLruCache",
    "best_protected_fraction",
    "clustering_tuned_cache",
    "hit_ratio_curve",
    "hit_ratio_curve_batched",
    "simulate_cache",
    "simulate_cache_batches",
    "sweep_protected_fraction",
]
