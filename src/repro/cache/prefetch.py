"""Category prefetching (the paper's "effective prefetching" implication).

Section 7 observes that a user who downloads an app from a category is
likely to download the next few apps from the same category, so the most
popular not-yet-downloaded apps of that category can be prefetched close
to the user.  This module implements that prefetcher on top of any cache
policy and measures how much of the subsequent demand it anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Sequence, Set

from repro.cache.policies import CachePolicy
from repro.core.models import DownloadEvent


@dataclass(frozen=True)
class PrefetchResult:
    """Outcome of a prefetch-enabled cache replay."""

    policy_name: str
    capacity: int
    n_accesses: int
    hits: int
    prefetch_hits: int
    prefetched_total: int

    @property
    def hit_ratio(self) -> float:
        """Overall hit ratio including prefetch-provided hits."""
        return self.hits / self.n_accesses if self.n_accesses else 0.0

    @property
    def prefetch_precision(self) -> float:
        """Fraction of prefetched apps that were later requested."""
        if self.prefetched_total == 0:
            return 0.0
        return self.prefetch_hits / self.prefetched_total


class CategoryPrefetcher:
    """Prefetch the top apps of the category a user just downloaded from.

    Parameters
    ----------
    cache:
        The underlying cache policy the prefetcher warms.
    category_of:
        Maps an app key to its category.
    top_apps_by_category:
        For each category, its apps in descending popularity (the
        prefetch candidates).
    prefetch_depth:
        How many top category apps to push into the cache per trigger.
    """

    def __init__(
        self,
        cache: CachePolicy,
        category_of: Callable[[Hashable], Hashable],
        top_apps_by_category: Dict[Hashable, Sequence[Hashable]],
        prefetch_depth: int = 3,
    ) -> None:
        if prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        self._cache = cache
        self._category_of = category_of
        self._top_apps = top_apps_by_category
        self.prefetch_depth = prefetch_depth
        self._prefetched: Set[Hashable] = set()
        self.prefetch_hits = 0
        self.prefetched_total = 0

    def _prefetch_for(self, category: Hashable) -> None:
        candidates = self._top_apps.get(category, ())
        pushed = 0
        for app in candidates:
            if pushed >= self.prefetch_depth:
                break
            if app in self._cache:
                continue
            # Proactive placement: does not count as a miss, evicts per
            # the underlying policy when the cache is full.
            self._cache.admit(app)
            if app in self._cache:
                self._prefetched.add(app)
                self.prefetched_total += 1
                pushed += 1

    def access(self, app: Hashable) -> bool:
        """Serve one download and prefetch its category's top apps."""
        hit = self._cache.access(app)
        if hit and app in self._prefetched:
            self.prefetch_hits += 1
            self._prefetched.discard(app)
        self._prefetch_for(self._category_of(app))
        return hit

    def replay(self, events: Iterable[DownloadEvent]) -> PrefetchResult:
        """Replay a workload and summarize the prefetcher's effect."""
        n_accesses = 0
        for event in events:
            self.access(event.app_index)
            n_accesses += 1
        return PrefetchResult(
            policy_name=f"{self._cache.name}+prefetch",
            capacity=self._cache.capacity,
            n_accesses=n_accesses,
            hits=self._cache.hits,
            prefetch_hits=self.prefetch_hits,
            prefetched_total=self.prefetched_total,
        )
