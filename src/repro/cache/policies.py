"""Cache replacement policies.

All policies implement the same protocol: ``access(key) -> bool`` returns
True on a hit and, on a miss, admits the key (evicting per policy).  The
Figure 19 experiment uses :class:`LruCache`; the policy ablation bench
compares the rest, including :class:`CategoryAwareLruCache`, which is an
instance of the clustering-aware replacement direction the paper proposes
in Section 7.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Callable, Dict, Hashable, Iterable


class CachePolicy:
    """Base class: shared capacity handling and hit/miss accounting."""

    name = "base"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: Hashable) -> bool:
        raise NotImplementedError

    def access(self, key: Hashable) -> bool:
        """Look up ``key``; on a miss, admit it.  Returns hit/miss."""
        if self._lookup(key):
            self.hits += 1
            return True
        self.misses += 1
        self._admit(key)
        return False

    def _lookup(self, key: Hashable) -> bool:
        raise NotImplementedError

    def _admit(self, key: Hashable) -> None:
        raise NotImplementedError

    @property
    def hit_ratio(self) -> float:
        """Hits over total accesses (0.0 before any access)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def admit(self, key: Hashable) -> None:
        """Place ``key`` into the cache without counting a hit or miss.

        Evicts per policy when full.  This is the entry point proactive
        mechanisms (prefetchers) use; ordinary demand traffic goes through
        :meth:`access`.
        """
        if key not in self:
            self._admit(key)

    def warm(self, keys: Iterable[Hashable]) -> None:
        """Pre-populate an empty-ish cache without counting hits or misses.

        The paper initializes the cache with the most popular apps before
        measuring; warming stops at capacity instead of evicting.
        """
        for key in keys:
            if len(self) >= self.capacity:
                break
            if key not in self:
                self._admit(key)


class LruCache(CachePolicy):
    """Least Recently Used -- the policy of the paper's Figure 19."""

    name = "LRU"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _lookup(self, key: Hashable) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        return False

    def _admit(self, key: Hashable) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = None


class FifoCache(CachePolicy):
    """First In First Out: eviction ignores recency of use."""

    name = "FIFO"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _lookup(self, key: Hashable) -> bool:
        return key in self._entries

    def _admit(self, key: Hashable) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = None


class LfuCache(CachePolicy):
    """Least Frequently Used with FIFO tie-breaking."""

    name = "LFU"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._frequency: Counter = Counter()
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _lookup(self, key: Hashable) -> bool:
        if key in self._entries:
            self._frequency[key] += 1
            return True
        return False

    def _admit(self, key: Hashable) -> None:
        if len(self._entries) >= self.capacity:
            victim = min(
                self._entries, key=lambda k: (self._frequency[k], 0)
            )
            del self._entries[victim]
            del self._frequency[victim]
            self.evictions += 1
        self._entries[key] = None
        self._frequency[key] += 1


class SegmentedLruCache(CachePolicy):
    """SLRU: a probationary and a protected segment.

    Keys enter the probationary segment; a hit promotes them to the
    protected segment, shielding popular apps from the one-hit-wonder
    churn that clustering workloads produce.
    """

    name = "SLRU"

    def __init__(self, capacity: int, protected_fraction: float = 0.5) -> None:
        super().__init__(capacity)
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in (0, 1)")
        self._protected_capacity = max(1, int(capacity * protected_fraction))
        self._probation_capacity = max(1, capacity - self._protected_capacity)
        self._protected: "OrderedDict[Hashable, None]" = OrderedDict()
        self._probation: "OrderedDict[Hashable, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._protected) + len(self._probation)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._protected or key in self._probation

    def _lookup(self, key: Hashable) -> bool:
        if key in self._protected:
            self._protected.move_to_end(key)
            return True
        if key in self._probation:
            # Promote to protected; demote its LRU entry if full.
            del self._probation[key]
            if len(self._protected) >= self._protected_capacity:
                demoted, _ = self._protected.popitem(last=False)
                self._insert_probation(demoted)
            self._protected[key] = None
            return True
        return False

    def _insert_probation(self, key: Hashable) -> None:
        if len(self._probation) >= self._probation_capacity:
            self._probation.popitem(last=False)
            self.evictions += 1
        self._probation[key] = None

    def _admit(self, key: Hashable) -> None:
        self._insert_probation(key)


class CategoryAwareLruCache(CachePolicy):
    """Clustering-aware LRU: per-category partitions sized by demand.

    The paper argues replacement should account for the clustering-driven
    access pattern.  This policy keeps one LRU segment per category and
    dynamically sizes each segment proportionally to the category's recent
    request share (an exponential moving average), so a burst of
    same-category downloads cannot flush the whole cache.

    Parameters
    ----------
    capacity:
        Total entries across all segments.
    category_of:
        Maps a key to its category.
    smoothing:
        EMA factor for the per-category demand estimate.
    """

    name = "category-LRU"

    def __init__(
        self,
        capacity: int,
        category_of: Callable[[Hashable], Hashable],
        smoothing: float = 0.005,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self._category_of = category_of
        self._smoothing = smoothing
        self._segments: Dict[Hashable, "OrderedDict[Hashable, None]"] = {}
        self._demand: Dict[Hashable, float] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Hashable) -> bool:
        segment = self._segments.get(self._category_of(key))
        return segment is not None and key in segment

    def _update_demand(self, category: Hashable) -> None:
        for known in self._demand:
            self._demand[known] *= 1.0 - self._smoothing
        self._demand[category] = self._demand.get(category, 0.0) + self._smoothing

    def _quota(self, category: Hashable) -> int:
        total_demand = sum(self._demand.values())
        if total_demand <= 0:
            return self.capacity
        share = self._demand.get(category, 0.0) / total_demand
        # Every seen category keeps at least one slot.
        return max(1, int(share * self.capacity))

    def _lookup(self, key: Hashable) -> bool:
        category = self._category_of(key)
        self._update_demand(category)
        segment = self._segments.get(category)
        if segment is not None and key in segment:
            segment.move_to_end(key)
            return True
        return False

    def _evict_one(self, incoming_category: Hashable) -> None:
        """Evict from the segment most over its demand quota."""
        worst_category = None
        worst_overshoot = None
        for category, segment in self._segments.items():
            if not segment:
                continue
            overshoot = len(segment) - self._quota(category)
            if category == incoming_category:
                overshoot -= 1  # prefer keeping the active category intact
            if worst_overshoot is None or overshoot > worst_overshoot:
                worst_overshoot = overshoot
                worst_category = category
        if worst_category is None:
            raise RuntimeError("eviction requested on an empty cache")
        self._segments[worst_category].popitem(last=False)
        self._size -= 1
        self.evictions += 1

    def _admit(self, key: Hashable) -> None:
        category = self._category_of(key)
        if self._size >= self.capacity:
            self._evict_one(category)
        self._segments.setdefault(category, OrderedDict())[key] = None
        self._size += 1
