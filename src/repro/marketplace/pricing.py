"""Price assignment for paid apps.

Section 6.1 of the paper observes (Figure 12) that both the number of apps
and the average downloads per app decrease with price: developers cluster
at low price points, and expensive apps are less popular.  This module
draws per-app prices from a truncated log-normal-like distribution over
common price points, and supplies the price-sensitivity factor the
behaviour engine uses so that downloads end up negatively correlated with
price.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.rng import SeedLike, make_rng

# Common app price points, in dollars.  App prices in real stores snap to
# psychological points ($0.99, $1.99, ...) rather than arbitrary values.
_PRICE_POINTS = np.array(
    [0.99, 1.49, 1.99, 2.49, 2.99, 3.99, 4.99, 5.99, 6.99, 7.99,
     8.99, 9.99, 12.99, 14.99, 19.99, 24.99, 29.99, 39.99, 49.99],
    dtype=np.float64,
)


@dataclass(frozen=True)
class PricingModel:
    """Distribution over price points plus a demand-elasticity factor.

    Parameters
    ----------
    median_price:
        Roughly where the mass of app prices sits.  The paper reports an
        average paid-app revenue per download of $3.9 on SlideMe.
    dispersion:
        Log-scale spread: larger values yield more expensive outliers.
    elasticity:
        Demand sensitivity to price.  The appeal of an app with price ``P``
        is multiplied by ``(1 + P)**-elasticity``, producing the negative
        downloads-price correlation of Figure 12.
    """

    median_price: float = 2.99
    dispersion: float = 0.75
    elasticity: float = 0.5

    def __post_init__(self) -> None:
        if self.median_price <= 0:
            raise ValueError("median_price must be positive")
        if self.dispersion <= 0:
            raise ValueError("dispersion must be positive")
        if self.elasticity < 0:
            raise ValueError("elasticity must be non-negative")

    def sample_prices(self, count: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``count`` prices snapped to common price points."""
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = make_rng(seed)
        raw = rng.lognormal(
            mean=np.log(self.median_price), sigma=self.dispersion, size=count
        )
        # Snap each raw draw to the nearest price point.
        indices = np.searchsorted(_PRICE_POINTS, raw)
        indices = np.clip(indices, 0, _PRICE_POINTS.size - 1)
        lower = np.clip(indices - 1, 0, _PRICE_POINTS.size - 1)
        pick_lower = np.abs(_PRICE_POINTS[lower] - raw) < np.abs(
            _PRICE_POINTS[indices] - raw
        )
        snapped = np.where(pick_lower, _PRICE_POINTS[lower], _PRICE_POINTS[indices])
        return snapped

    def demand_factor(self, price) -> np.ndarray:
        """Multiplier applied to an app's appeal due to its price.

        Free apps (price 0) get factor 1; a $49.99 app with the default
        elasticity gets ~0.14, so high prices strongly suppress casual
        downloads.
        """
        price = np.asarray(price, dtype=np.float64)
        if np.any(price < 0):
            raise ValueError("prices must be non-negative")
        return (1.0 + price) ** -self.elasticity


def price_points() -> np.ndarray:
    """The catalog of price points used by :class:`PricingModel` (a copy)."""
    return _PRICE_POINTS.copy()
