"""Category taxonomies.

Apps in each store are grouped into thematic categories -- the paper's
"clusters" (Section 4: Anzhi has 34 categories; the cache experiment of
Section 7 uses 30).  The taxonomy also records the relative size of each
category (fraction of the store's apps), because the random-walk affinity
baseline (Equations 2 and 4) depends on the empirical category sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.stats.rng import SeedLike, make_rng
from repro.stats.zipf import zipf_weights

# Category names modelled on the SlideMe taxonomy the paper lists in
# Figures 15 and 18, extended with generic names to reach larger taxonomies.
_BASE_CATEGORY_NAMES: Tuple[str, ...] = (
    "fun/games",
    "utilities",
    "e-books",
    "music",
    "productivity",
    "entertainment",
    "communications",
    "social",
    "educational",
    "travel",
    "lifestyle",
    "wallpapers",
    "health/fitness",
    "religion",
    "collaboration",
    "location/maps",
    "home/hobby",
    "enterprise",
    "developer",
    "other",
    "news",
    "finance",
    "photography",
    "shopping",
    "sports",
    "weather",
    "medical",
    "comics",
    "personalization",
    "transportation",
    "libraries",
    "business",
    "media/video",
    "casual",
)


@dataclass(frozen=True)
class CategoryTaxonomy:
    """An ordered set of categories with their app-count shares.

    ``shares`` sums to one; ``shares[i]`` is the fraction of the store's
    apps listed in ``names[i]``.
    """

    names: Tuple[str, ...]
    shares: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.shares):
            raise ValueError("names and shares must have equal length")
        if len(self.names) == 0:
            raise ValueError("taxonomy must contain at least one category")
        if len(set(self.names)) != len(self.names):
            raise ValueError("category names must be unique")
        if any(share <= 0 for share in self.shares):
            raise ValueError("all category shares must be positive")
        total = sum(self.shares)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"shares must sum to 1, got {total}")

    @property
    def n_categories(self) -> int:
        """Number of categories."""
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Index of a category name; raises ``KeyError`` if absent."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown category: {name!r}") from None

    def app_counts(self, total_apps: int) -> np.ndarray:
        """Integer app counts per category summing exactly to ``total_apps``.

        Uses largest-remainder apportionment so rounding never loses apps,
        and every category keeps at least one app when possible.
        """
        if total_apps < self.n_categories:
            raise ValueError(
                f"need at least {self.n_categories} apps to populate "
                f"{self.n_categories} categories, got {total_apps}"
            )
        raw = np.asarray(self.shares) * total_apps
        counts = np.floor(raw).astype(np.int64)
        counts = np.maximum(counts, 1)
        deficit = total_apps - int(counts.sum())
        if deficit > 0:
            remainders = raw - np.floor(raw)
            for index in np.argsort(remainders)[::-1][:deficit]:
                counts[index] += 1
        elif deficit < 0:
            # Took too many due to the minimum of one; shave the largest.
            for index in np.argsort(counts)[::-1]:
                if deficit == 0:
                    break
                if counts[index] > 1:
                    counts[index] -= 1
                    deficit += 1
        if int(counts.sum()) != total_apps:
            raise RuntimeError("apportionment failed to conserve app count")
        return counts

    def random_walk_affinity(self, total_apps: int, depth: int = 1) -> float:
        """Random-walk affinity baseline over this taxonomy (Eqs. 2 and 4).

        Delegates to :func:`repro.core.affinity.random_walk_affinity` on the
        apportioned category sizes.  Defined here for convenience because
        the taxonomy owns the category-size distribution.
        """
        from repro.core.affinity import random_walk_affinity

        return random_walk_affinity(self.app_counts(total_apps), depth=depth)


def default_taxonomy(
    n_categories: int = 34,
    concentration: float = 0.6,
    seed: SeedLike = None,
) -> CategoryTaxonomy:
    """Build a taxonomy with mildly skewed category sizes.

    Category sizes follow a weak Zipf law (exponent ``concentration``) so
    that, as in Figure 5(d) of the paper, no category dominates: with the
    default parameters the largest category holds roughly 10-13% of apps.
    A small random jitter breaks exact ties between adjacent categories.
    """
    if n_categories < 1:
        raise ValueError("n_categories must be positive")
    if n_categories > len(_BASE_CATEGORY_NAMES):
        names = list(_BASE_CATEGORY_NAMES)
        names.extend(
            f"category-{index}"
            for index in range(len(_BASE_CATEGORY_NAMES), n_categories)
        )
    else:
        names = list(_BASE_CATEGORY_NAMES[:n_categories])

    rng = make_rng(seed)
    weights = zipf_weights(n_categories, concentration)
    jitter = rng.uniform(0.9, 1.1, size=n_categories)
    weights = weights * jitter
    shares = weights / weights.sum()
    return CategoryTaxonomy(names=tuple(names), shares=tuple(float(s) for s in shares))


def uniform_taxonomy(n_categories: int) -> CategoryTaxonomy:
    """A taxonomy where every category has the same share.

    Matches the equal-cluster-size simplification the paper makes in the
    analytical model of Section 5.1.
    """
    if n_categories < 1:
        raise ValueError("n_categories must be positive")
    if n_categories > len(_BASE_CATEGORY_NAMES):
        names = list(_BASE_CATEGORY_NAMES) + [
            f"category-{index}"
            for index in range(len(_BASE_CATEGORY_NAMES), n_categories)
        ]
    else:
        names = list(_BASE_CATEGORY_NAMES[:n_categories])
    share = 1.0 / n_categories
    return CategoryTaxonomy(names=tuple(names), shares=tuple([share] * n_categories))
