"""Per-store scale profiles calibrated to Table 1 of the paper.

Table 1 summarizes the crawled dataset: per store, the crawling period, the
total apps at the first and last day, the average number of new apps per
day, the total downloads at the first and last day, and the average daily
downloads.  A :class:`StoreProfile` captures those scale parameters plus
the behavioural parameters (Zipf exponents, clustering probability) that
the paper later fits per store (Figure 8).

Simulating the real scale (tens of thousands of apps, tens of millions of
downloads per day) is neither necessary nor useful on a laptop; the
distributional shapes the paper studies are scale-free.  Use
:func:`scaled_profile` to shrink a paper profile while preserving its
structure, which is what the benchmarks do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.marketplace.behavior import BehaviorParams
from repro.marketplace.segments import SegmentParams


@dataclass(frozen=True)
class StoreProfile:
    """Scale and behaviour parameters of one simulated appstore.

    Parameters
    ----------
    name:
        Store name ("anzhi", "appchina", "1mobile", "slideme").
    initial_apps:
        Apps listed when crawling starts (after the warmup period).
    new_apps_per_day:
        Average apps added per day during the crawl (Poisson rate).
    crawl_days:
        Length of the crawl, in days.
    warmup_days:
        Days of store activity simulated before the crawl begins, so that
        the first crawled snapshot already carries download history (the
        paper's first-day totals are far above zero).
    daily_downloads:
        Average downloads per day during the crawl (Poisson rate).
    warmup_daily_downloads:
        Average downloads per day during warmup.
    n_users:
        Size of the user population.  The paper's Figure 10 finds the
        best model fit when the user count is close to the downloads of
        the most popular app, so profiles keep ``n_users`` within a small
        factor of expected top-app downloads.
    n_categories:
        Number of app categories (Anzhi has 34).
    paid_fraction:
        Fraction of apps that are paid (0 everywhere except SlideMe,
        where the paper reports 25.3%).
    behavior:
        The clustering-behaviour knobs (``p``, ``zr``, ``zc``).
    comment_probability:
        Chance a download produces a rated public comment.
    spam_users:
        Number of spam accounts that post large volumes of comments
        (the paper found and excluded such users in the Anzhi data).
    update_rate_active:
        Daily update probability for the minority of actively maintained
        apps.
    active_app_fraction:
        Fraction of apps that receive updates at all (the paper: >80% of
        apps saw zero updates in two months).
    segments:
        Optional persona segments drawn from the conjoint utility model
        (:func:`repro.marketplace.segments.segmented_profile`).  ``None``
        keeps the single global behaviour profile and leaves every legacy
        code path untouched.  When set, ``behavior`` and
        ``comment_probability`` act as the anchor the segments were drawn
        around, and users are partitioned into contiguous weight-
        proportional blocks.
    """

    name: str
    initial_apps: int
    new_apps_per_day: float
    crawl_days: int
    warmup_days: int
    daily_downloads: float
    warmup_daily_downloads: float
    n_users: int
    n_categories: int = 34
    paid_fraction: float = 0.0
    behavior: BehaviorParams = BehaviorParams()
    comment_probability: float = 0.08
    spam_users: int = 0
    update_rate_active: float = 0.02
    active_app_fraction: float = 0.2
    segments: Optional[Tuple[SegmentParams, ...]] = None

    def __post_init__(self) -> None:
        if self.initial_apps < 1:
            raise ValueError("initial_apps must be positive")
        if self.crawl_days < 1:
            raise ValueError("crawl_days must be positive")
        if self.warmup_days < 0:
            raise ValueError("warmup_days must be non-negative")
        if self.new_apps_per_day < 0:
            raise ValueError("new_apps_per_day must be non-negative")
        if self.daily_downloads < 0 or self.warmup_daily_downloads < 0:
            raise ValueError("download rates must be non-negative")
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        if not 0.0 <= self.paid_fraction <= 1.0:
            raise ValueError("paid_fraction must be in [0, 1]")
        if not 0.0 <= self.comment_probability <= 1.0:
            raise ValueError("comment_probability must be in [0, 1]")
        if not 0.0 <= self.active_app_fraction <= 1.0:
            raise ValueError("active_app_fraction must be in [0, 1]")
        if not 0.0 <= self.update_rate_active <= 1.0:
            raise ValueError("update_rate_active must be in [0, 1]")
        if self.segments is not None and len(self.segments) == 0:
            raise ValueError("segments must be None or a non-empty tuple")

    @property
    def total_days(self) -> int:
        """Warmup plus crawl duration."""
        return self.warmup_days + self.crawl_days

    @property
    def expected_final_apps(self) -> int:
        """Expected app count at the end of the crawl."""
        return self.initial_apps + int(self.new_apps_per_day * self.crawl_days)


# The paper's Table 1, expressed as full-scale profiles.  The behaviour
# parameters per store come from the best fits reported in Figure 8
# (e.g. AppChina: zr=1.7, p=0.9, zc=1.4; 1Mobile: zr=1.7, p=0.95, zc=1.5).
_PAPER_PROFILES: Dict[str, StoreProfile] = {
    "anzhi": StoreProfile(
        name="anzhi",
        initial_apps=58_423,
        new_apps_per_day=29.6,
        crawl_days=60,
        warmup_days=120,
        daily_downloads=23_700_000,
        warmup_daily_downloads=11_600_000,
        n_users=7_000_000,
        n_categories=34,
        behavior=BehaviorParams(
            cluster_probability=0.90,
            global_exponent=1.4,
            cluster_exponent=1.4,
        ),
        comment_probability=0.05,
        spam_users=25,
    ),
    "appchina": StoreProfile(
        name="appchina",
        initial_apps=33_183,
        new_apps_per_day=336.0,
        crawl_days=65,
        warmup_days=90,
        daily_downloads=24_100_000,
        warmup_daily_downloads=11_400_000,
        n_users=8_000_000,
        n_categories=30,
        behavior=BehaviorParams(
            cluster_probability=0.90,
            global_exponent=1.7,
            cluster_exponent=1.4,
        ),
        comment_probability=0.04,
    ),
    "1mobile": StoreProfile(
        name="1mobile",
        initial_apps=128_455,
        new_apps_per_day=210.4,
        crawl_days=133,
        warmup_days=180,
        daily_downloads=651_500,
        warmup_daily_downloads=2_000_000,
        n_users=2_500_000,
        n_categories=32,
        behavior=BehaviorParams(
            cluster_probability=0.95,
            global_exponent=1.7,
            cluster_exponent=1.5,
        ),
        comment_probability=0.03,
    ),
    "slideme": StoreProfile(
        name="slideme",
        initial_apps=16_902,  # 12,296 free + 4,606 paid
        new_apps_per_day=34.5,  # 28.0 free + 6.5 paid
        crawl_days=153,
        warmup_days=180,
        daily_downloads=220_900,  # 215.7K free + 5.2K paid
        warmup_daily_downloads=350_000,
        n_users=900_000,
        n_categories=20,
        paid_fraction=0.253,
        behavior=BehaviorParams(
            cluster_probability=0.90,
            global_exponent=0.95,
            cluster_exponent=1.2,
        ),
        comment_probability=0.05,
    ),
}


def paper_profiles() -> Dict[str, StoreProfile]:
    """The four full-scale profiles of Table 1 (a fresh copy)."""
    return dict(_PAPER_PROFILES)


def paper_profile(name: str) -> StoreProfile:
    """One full-scale profile by store name."""
    try:
        return _PAPER_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PAPER_PROFILES))
        raise KeyError(f"unknown store {name!r}; known stores: {known}") from None


def scaled_profile(
    profile: StoreProfile,
    app_scale: float = 0.05,
    download_scale: float = 0.0005,
    user_scale: float = 0.002,
    day_scale: float = 1.0,
) -> StoreProfile:
    """Shrink a profile to laptop size while preserving its structure.

    Apps, downloads, users, and days scale independently because they have
    very different computational costs: every download is a simulated
    event, while apps only cost memory.  The default scales turn Anzhi
    (58k apps, 24M downloads/day) into roughly 2.9k apps and 12k
    downloads/day -- enough for every distributional shape in the paper to
    be measurable in seconds.

    Persona segments ride along unchanged: segment weights are fractions
    of ``n_users`` and the drawn behaviour parameters are scale-free, so
    shrinking a segmented profile preserves both the partition shape and
    the per-segment behaviour.
    """
    for name, value in (
        ("app_scale", app_scale),
        ("download_scale", download_scale),
        ("user_scale", user_scale),
        ("day_scale", day_scale),
    ):
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
    return replace(
        profile,
        initial_apps=max(profile.n_categories, int(profile.initial_apps * app_scale)),
        new_apps_per_day=profile.new_apps_per_day * app_scale,
        crawl_days=max(2, int(profile.crawl_days * day_scale)),
        warmup_days=max(1, int(profile.warmup_days * day_scale)),
        daily_downloads=max(1.0, profile.daily_downloads * download_scale),
        warmup_daily_downloads=max(
            1.0, profile.warmup_daily_downloads * download_scale
        ),
        n_users=max(10, int(profile.n_users * user_scale)),
        spam_users=min(profile.spam_users, max(0, int(profile.n_users * user_scale) // 40)),
    )


def demo_profile(name: str = "demo", **overrides) -> StoreProfile:
    """A tiny profile for tests and the quickstart example."""
    defaults = dict(
        name=name,
        initial_apps=300,
        new_apps_per_day=2.0,
        crawl_days=10,
        warmup_days=5,
        daily_downloads=800.0,
        warmup_daily_downloads=800.0,
        n_users=400,
        n_categories=10,
        paid_fraction=0.0,
        behavior=BehaviorParams(
            cluster_probability=0.9,
            global_exponent=1.3,
            cluster_exponent=1.3,
        ),
        comment_probability=0.15,
        spam_users=2,
    )
    defaults.update(overrides)
    return StoreProfile(**defaults)
