"""Synthetic ecosystem generation: profile -> ready-to-run store.

The generator creates the app catalog (with latent appeal ranks, category
assignments, prices, developers, and APK packages), the user population,
the behaviour engine, and per-app update rates, then wires everything into
an :class:`repro.marketplace.store.AppStore`.

Design notes (mapping to the paper's observations):

- **Appeal ranks.**  Each app is assigned a latent global appeal rank; the
  behaviour engine's global Zipf law ``ZG`` draws over these ranks, which
  produces the Zipf trunk of Figure 3.
- **Developers.**  The number of apps per developer follows a discrete
  power law (60-70% of developers make a single app; a couple of prolific
  accounts make hundreds -- Figure 16a), and every developer works in a
  small set of categories (Figure 16b).
- **Paid apps (SlideMe only).**  Prices come from the pricing model and
  depress appeal through the demand factor, producing Figure 12's negative
  price-downloads correlation.  A handful of "blockbuster" paid apps are
  planted in the music category so that category revenue concentrates the
  way Figure 15 reports.
- **Updates.**  Only a minority of apps is actively maintained, so >80%
  of apps see zero updates in a two-month window (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.marketplace.ads import AdEcosystem, contains_ad_network
from repro.marketplace.behavior import DownloadBehavior
from repro.marketplace.catalog import CategoryTaxonomy, default_taxonomy
from repro.marketplace.entities import ApkPackage, App, AppVersion, Developer, User
from repro.marketplace.pricing import PricingModel
from repro.marketplace.profiles import StoreProfile
from repro.marketplace.segments import SegmentedPopulation
from repro.marketplace.store import AppStore
from repro.stats.rng import SeedLike, make_rng
from repro.stats.zipf import zipf_weights

# Paid-app category weights for SlideMe-like stores, shaped after the
# apps-per-category pattern of Figure 15: e-books and games hold most paid
# apps, music very few.
_PAID_CATEGORY_WEIGHT_OVERRIDES: Dict[str, float] = {
    "e-books": 10.0,
    "fun/games": 6.0,
    "utilities": 3.0,
    "music": 0.5,
    "productivity": 2.0,
}

# Blockbuster paid apps planted at the very top of the paid appeal ranking,
# (category, price): a couple of expensive music hits dominate revenue the
# way Figure 15's music category does.
_PAID_BLOCKBUSTERS: Tuple[Tuple[str, float], ...] = (
    ("music", 9.99),
    ("music", 7.99),
    ("fun/games", 4.99),
    ("music", 12.99),
)


@dataclass
class GeneratedStore:
    """A store plus the generation artifacts analyses may need."""

    store: AppStore
    developers: List[Developer]
    taxonomy: CategoryTaxonomy
    profile: StoreProfile


def _sample_apps_per_developer(
    n_apps: int, rng: np.random.Generator, alpha: float = 2.2
) -> List[int]:
    """Partition ``n_apps`` among developers with a power-law size law.

    Draws developer portfolio sizes from a discrete Zipf-like law capped at
    ``n_apps`` until all apps are assigned.  With ``alpha`` around 2.2 the
    result matches Figure 16(a): most developers make one app, ~95% make
    fewer than 10, and rare accounts make hundreds.
    """
    sizes: List[int] = []
    remaining = n_apps
    max_size = max(1, n_apps // 2)
    weights = zipf_weights(max_size, alpha)
    probabilities = weights / weights.sum()
    while remaining > 0:
        size = int(rng.choice(max_size, p=probabilities)) + 1
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def _assign_developer_categories(
    n_categories: int, portfolio_size: int, rng: np.random.Generator
) -> np.ndarray:
    """Pick the small category set a developer works in (Figure 16b)."""
    # 75-85% of developers focus on one category; nearly all on <= 5.
    n_focus = 1 + int(rng.binomial(4, 0.08))
    n_focus = min(n_focus, n_categories)
    return rng.choice(n_categories, size=n_focus, replace=False)


def _make_apk(
    package_name: str,
    ads: AdEcosystem,
    is_free: bool,
    rng: np.random.Generator,
) -> ApkPackage:
    size_mb = float(np.clip(rng.lognormal(mean=np.log(3.5), sigma=0.8), 0.1, 500.0))
    libraries = ads.sample_libraries(is_free=is_free, seed=rng)
    return ApkPackage(
        package_name=package_name,
        version_code=1,
        size_mb=size_mb,
        embedded_libraries=libraries,
    )


def build_store(
    profile: StoreProfile,
    seed: SeedLike = None,
    taxonomy: Optional[CategoryTaxonomy] = None,
    pricing: Optional[PricingModel] = None,
    ads: Optional[AdEcosystem] = None,
    keep_download_log: bool = False,
) -> GeneratedStore:
    """Build a ready-to-run :class:`AppStore` from a profile.

    The store starts at day 0 with no download history; call
    ``store.advance_days(profile.warmup_days)`` to accumulate the
    pre-crawl history before pointing the crawler at it (or use
    :func:`repro.crawler.scheduler.run_crawl_campaign`, which does both).
    """
    rng = make_rng(seed)
    if taxonomy is None:
        taxonomy = default_taxonomy(profile.n_categories, seed=rng)
    pricing = pricing or PricingModel()
    ads = ads or AdEcosystem()

    total_apps = profile.initial_apps + int(
        round(profile.new_apps_per_day * profile.crawl_days)
    )
    total_apps = max(total_apps, profile.initial_apps)

    # --- category assignment -------------------------------------------
    category_counts = taxonomy.app_counts(total_apps)
    category_of_app = np.repeat(
        np.arange(taxonomy.n_categories), category_counts
    )
    rng.shuffle(category_of_app)

    # --- paid/free split -----------------------------------------------
    is_paid = np.zeros(total_apps, dtype=bool)
    if profile.paid_fraction > 0:
        n_paid = int(round(profile.paid_fraction * total_apps))
        n_paid = min(max(n_paid, 0), total_apps)
        # Paid apps concentrate in specific categories (Figure 15): weight
        # the candidate pool per category before sampling.
        weights = np.ones(total_apps, dtype=np.float64)
        for name, weight in _PAID_CATEGORY_WEIGHT_OVERRIDES.items():
            try:
                index = taxonomy.index_of(name)
            except KeyError:
                continue
            weights[category_of_app == index] = weight
        weights /= weights.sum()
        paid_indices = rng.choice(total_apps, size=n_paid, replace=False, p=weights)
        is_paid[paid_indices] = True

    prices = np.zeros(total_apps, dtype=np.float64)
    if is_paid.any():
        prices[is_paid] = pricing.sample_prices(int(is_paid.sum()), seed=rng)

    # Plant blockbuster paid apps at the head of the global appeal ranking
    # (appeal index 0 is rank 1).  Only meaningful when the store has paid
    # apps at all.
    if is_paid.any():
        blockbuster_rank = 0
        for category_name, price in _PAID_BLOCKBUSTERS:
            try:
                category_index = taxonomy.index_of(category_name)
            except KeyError:
                continue
            # Find the next head slot and claim it for the blockbuster.
            slot = blockbuster_rank
            blockbuster_rank += 3  # leave free hits between blockbusters
            if slot >= total_apps:
                break
            category_of_app[slot] = category_index
            is_paid[slot] = True
            prices[slot] = price

    # Blockbuster apps belong to dedicated single-app developers: the
    # paper finds developer income essentially uncorrelated with portfolio
    # size (Figure 14, r=0.008) because the top earners are focused
    # one-hit accounts, not prolific publishers.
    blockbuster_slots = [
        slot
        for slot in range(0, 3 * len(_PAID_BLOCKBUSTERS), 3)
        if slot < total_apps and is_paid[slot]
    ]

    # --- developers ------------------------------------------------------
    portfolio_sizes = _sample_apps_per_developer(
        total_apps - len(blockbuster_slots), rng
    )
    portfolio_sizes.extend([1] * len(blockbuster_slots))
    developers = [
        Developer(developer_id=index, name=f"dev-{profile.name}-{index:05d}")
        for index in range(len(portfolio_sizes))
    ]
    developer_of_app = np.zeros(total_apps, dtype=np.int64)
    # The dedicated single-app developers (appended last) own exactly the
    # blockbuster slots; everyone else draws from the per-category pools.
    dedicated = developers[len(developers) - len(blockbuster_slots) :]
    for developer, slot in zip(dedicated, blockbuster_slots):
        developer_of_app[slot] = developer.developer_id
    blockbuster_set = set(blockbuster_slots)
    # Developers pick apps inside their focus categories where possible.
    unassigned = [i for i in range(total_apps) if i not in blockbuster_set]
    rng.shuffle(unassigned)
    apps_by_category: Dict[int, List[int]] = {}
    for app_index in unassigned:
        apps_by_category.setdefault(int(category_of_app[app_index]), []).append(
            app_index
        )
    general = developers[: len(developers) - len(blockbuster_slots)]
    general_sizes = portfolio_sizes[: len(general)]
    for developer, size in zip(general, general_sizes):
        focus = _assign_developer_categories(taxonomy.n_categories, size, rng)
        assigned = 0
        for category_index in focus:
            pool = apps_by_category.get(int(category_index), [])
            while pool and assigned < size:
                app_index = pool.pop()
                developer_of_app[app_index] = developer.developer_id
                assigned += 1
            if assigned >= size:
                break
        if assigned < size:
            # Focus categories exhausted: take whatever is left anywhere.
            for pool in apps_by_category.values():
                while pool and assigned < size:
                    app_index = pool.pop()
                    developer_of_app[app_index] = developer.developer_id
                    assigned += 1
                if assigned >= size:
                    break

    # --- listing days ------------------------------------------------------
    listing_days = np.zeros(total_apps, dtype=np.int64)
    n_late = total_apps - profile.initial_apps
    if n_late > 0:
        # Late arrivals are spread over the crawl; which apps arrive late is
        # independent of appeal, so new apps join everywhere in the ranking.
        late_indices = rng.choice(total_apps, size=n_late, replace=False)
        late_days = rng.integers(
            profile.warmup_days,
            profile.warmup_days + profile.crawl_days,
            size=n_late,
        )
        listing_days[late_indices] = late_days

    # --- cluster (within-category) ranks -----------------------------------
    cluster_ranks = np.zeros(total_apps, dtype=np.int64)
    for category_index in range(taxonomy.n_categories):
        members = np.flatnonzero(category_of_app == category_index)
        # Global appeal order within the category defines the cluster rank.
        cluster_ranks[members] = np.arange(1, members.size + 1)

    # --- entities ------------------------------------------------------------
    apps: List[App] = []
    for app_index in range(total_apps):
        package = f"com.{profile.name}.app{app_index:06d}"
        free = not bool(is_paid[app_index])
        apk = _make_apk(package, ads, is_free=free, rng=rng)
        # The store page's "contains ads" flag generally matches the APK
        # scan, with rare labelling mistakes (the paper: "generally true
        # ... with just a few exceptions").
        has_ad_library = contains_ad_network(apk.embedded_libraries)
        declares_ads = has_ad_library ^ (rng.random() < 0.02)
        app = App(
            app_id=app_index,
            name=f"{profile.name}-app-{app_index:06d}",
            category=taxonomy.names[int(category_of_app[app_index])],
            developer_id=int(developer_of_app[app_index]),
            global_rank=app_index + 1,
            cluster_rank=int(cluster_ranks[app_index]),
            price=float(prices[app_index]),
            listing_day=int(listing_days[app_index]),
            declares_ads=bool(declares_ads),
            versions=[
                AppVersion(version_name="1.0", release_day=0, apk=apk)
            ],
        )
        apps.append(app)

    # --- users -----------------------------------------------------------
    # Activity follows a heavy-tailed law so a minority of users does most
    # downloading, matching the comments-per-user CDF of Figure 5(a).
    activity = rng.pareto(1.8, size=profile.n_users) + 1.0
    population: Optional[SegmentedPopulation] = None
    if profile.segments is not None:
        # Contiguous weight-proportional user blocks; the partition itself
        # consumes no RNG, so segmenting never perturbs the draws above.
        population = SegmentedPopulation(
            segments=profile.segments, n_users=profile.n_users
        )
        comment_of_user = np.repeat(
            np.array(
                [seg.comment_probability for seg in profile.segments],
                dtype=np.float64,
            ),
            population.sizes,
        )
    else:
        comment_of_user = np.full(
            profile.n_users, profile.comment_probability, dtype=np.float64
        )
    users = [
        User(
            user_id=user_id,
            activity=float(activity[user_id]),
            comment_probability=float(comment_of_user[user_id]),
        )
        for user_id in range(profile.n_users)
    ]
    # Spam accounts: hyperactive commenters (the paper found and filtered
    # users posting thousands of comments via scripts).
    for spam_index in range(min(profile.spam_users, profile.n_users)):
        users[spam_index] = User(
            user_id=spam_index,
            activity=float(activity[spam_index]) * 50.0,
            comment_probability=min(1.0, profile.comment_probability * 10),
        )

    # --- behaviour engine -----------------------------------------------
    demand = pricing.demand_factor(prices)
    # Paid apps are almost never picked up through casual same-category
    # browsing (users are selective when paying -- Section 6.1), so their
    # downloads come from deliberate global-law selections and follow a
    # clean Zipf law (Figure 11b).
    clustered_accept = np.where(is_paid, 0.1, 1.0)
    behavior = DownloadBehavior(
        app_categories=category_of_app,
        params=profile.behavior,
        appeal_multipliers=demand,
        listing_days=listing_days,
        clustered_accept_probability=clustered_accept,
    )
    segment_behaviors: Optional[List[DownloadBehavior]] = None
    if population is not None:
        # One engine per segment: paid tolerance scales the paid-app accept
        # probability, the drawn BehaviorParams carry p/zr/zc.  Engine
        # construction consumes no RNG, so a single global-parameter
        # segment leaves the download stream byte-identical.
        segment_behaviors = [
            DownloadBehavior(
                app_categories=category_of_app,
                params=seg.behavior,
                appeal_multipliers=demand,
                listing_days=listing_days,
                clustered_accept_probability=np.where(
                    is_paid, np.clip(0.1 * seg.paid_tolerance, 0.0, 1.0), 1.0
                ),
            )
            for seg in population.segments
        ]

    # --- update process ----------------------------------------------------
    update_rates = np.zeros(total_apps, dtype=np.float64)
    n_active = int(profile.active_app_fraction * total_apps)
    if n_active > 0:
        active = rng.choice(total_apps, size=n_active, replace=False)
        update_rates[active] = rng.uniform(
            profile.update_rate_active * 0.25,
            profile.update_rate_active * 1.75,
            size=n_active,
        )

    store = AppStore(
        name=profile.name,
        taxonomy=taxonomy,
        apps=apps,
        users=users,
        behavior=behavior,
        rng=rng,
        daily_download_rate=profile.daily_downloads,
        update_rates=update_rates,
        keep_download_log=keep_download_log,
        segments=population,
        segment_behaviors=segment_behaviors,
    )
    return GeneratedStore(
        store=store,
        developers=developers,
        taxonomy=taxonomy,
        profile=profile,
    )
