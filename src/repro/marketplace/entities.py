"""Data model for the synthetic marketplace.

These entities mirror the attributes the paper's crawler collects for each
app: number of downloads, user ratings and comments, current version,
category, price, and developer information, plus the APK binary itself
(represented here by :class:`ApkPackage` metadata, which is what the
ad-library scanner inspects).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


def is_free_price(price: float) -> bool:
    """Whether a listed price means "free".

    This is the one place the codebase compares a price against zero:
    store pages list free apps as exactly ``0.0``, and prices are entered
    and serialized as exact decimal-dollar values, never computed, so the
    exact comparison is the semantics (allowlisted for lint rule RPL031).
    Everything else goes through ``is_free`` / ``is_paid`` predicates.
    """
    return price == 0.0


@dataclass(frozen=True)
class ApkPackage:
    """Metadata of an app binary, as a reverse-engineering tool would see it.

    The paper inspects APKs with Androguard to detect embedded advertising
    libraries.  Our synthetic packages carry the list of embedded library
    package prefixes (e.g. ``"com.admob.android"``), so the scanner in
    :mod:`repro.analysis.adlib` performs real prefix matching.
    """

    package_name: str
    version_code: int
    size_mb: float
    embedded_libraries: Tuple[str, ...] = ()

    def contains_library(self, library_prefix: str) -> bool:
        """Whether any embedded library starts with ``library_prefix``."""
        return any(
            lib == library_prefix or lib.startswith(library_prefix + ".")
            for lib in self.embedded_libraries
        )


@dataclass(frozen=True)
class AppVersion:
    """One released version of an app."""

    version_name: str
    release_day: int
    apk: ApkPackage


@dataclass
class Developer:
    """An app developer account in a marketplace."""

    developer_id: int
    name: str
    country: str = "unknown"

    def __post_init__(self) -> None:
        if self.developer_id < 0:
            raise ValueError("developer_id must be non-negative")


@dataclass
class App:
    """A mobile application listed in a store.

    Attributes
    ----------
    app_id:
        Store-local identifier (also the app's index in the store arrays).
    global_rank:
        The app's latent appeal rank (1 = most appealing).  This is the
        ``i`` of the paper's ``D(i, j)``; the behaviour engine's global
        Zipf draws use it.
    cluster_rank:
        The app's appeal rank within its category (the ``j`` of
        ``D(i, j)``).
    price:
        Price in dollars; ``0.0`` means a free app.
    listing_day:
        Simulation day the app became available (day 0 = store launch).
    declares_ads:
        Whether the store page claims the app shows advertisements (the
        paper compares this claim to the APK scan).
    """

    app_id: int
    name: str
    category: str
    developer_id: int
    global_rank: int
    cluster_rank: int
    price: float = 0.0
    listing_day: int = 0
    declares_ads: bool = False
    versions: List[AppVersion] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.price < 0:
            raise ValueError(f"price must be non-negative, got {self.price}")
        if self.global_rank < 1:
            raise ValueError("global_rank must be >= 1")
        if self.cluster_rank < 1:
            raise ValueError("cluster_rank must be >= 1")

    @property
    def is_free(self) -> bool:
        """Whether the app costs nothing to download."""
        return is_free_price(self.price)

    @property
    def is_paid(self) -> bool:
        """Whether the app requires a purchase."""
        return not is_free_price(self.price)

    @property
    def current_version(self) -> Optional[AppVersion]:
        """The most recently released version, if any."""
        return self.versions[-1] if self.versions else None

    @property
    def update_count(self) -> int:
        """Number of updates after the initial release."""
        return max(0, len(self.versions) - 1)


@dataclass
class User:
    """A marketplace user.

    ``activity`` controls how many downloads the user performs over the
    simulation; ``comment_probability`` is the chance that a download is
    followed by a public rating+comment (the paper's proxy signal for
    per-user download streams).
    """

    user_id: int
    activity: float
    comment_probability: float

    def __post_init__(self) -> None:
        if self.activity < 0:
            raise ValueError("activity must be non-negative")
        if not 0.0 <= self.comment_probability <= 1.0:
            raise ValueError("comment_probability must be in [0, 1]")


@dataclass(frozen=True)
class Comment:
    """A public user comment, with the rating the paper requires.

    The paper only trusts comments accompanied by a rating as download
    evidence; every synthetic comment carries one.
    """

    user_id: int
    app_id: int
    day: int
    rating: int

    def __post_init__(self) -> None:
        if not 1 <= self.rating <= 5:
            raise ValueError(f"rating must be 1..5, got {self.rating}")


@dataclass(frozen=True)
class DownloadRecord:
    """A single (user, app, day) download event."""

    user_id: int
    app_id: int
    day: int
    is_update: bool = False


@dataclass
class AppStatistics:
    """Daily per-app statistics, as exposed on the store's web page."""

    app_id: int
    total_downloads: int
    rating_sum: int
    rating_count: int
    comment_count: int
    version_name: str
    price: float

    @property
    def average_rating(self) -> float:
        """Mean rating, 0.0 when unrated."""
        if self.rating_count == 0:
            return 0.0
        return self.rating_sum / self.rating_count
