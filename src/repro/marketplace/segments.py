"""Persona-segmented user populations with conjoint-style utility draws.

The paper fits one global behaviour profile per store (Figure 8), but
"Mining Behavioral Patterns from Millions of Android Users" shows
appstore populations decompose into distinct usage personas, and
"Sovereignty of the Apps" argues relevance and downloads diverge across
them.  This module replaces the single profile with **persona
segments**: contiguous blocks of the user population whose behaviour
parameters -- clustering probability ``p``, Zipf exponents, comment
propensity, paid-app tolerance, update chasing, engagement -- are drawn
from a small choice-based-conjoint utility model.

Design
------
- A :class:`Persona` holds *part-worth utilities* over behavioural
  attributes (``price``, ``affinity``, ``updates``, ``commenting``,
  ``engagement``), each in ``[-1, 1]``, plus a population ``weight``.
- A :class:`UtilityModel` maps utilities to concrete parameters around
  an *anchor* (the store profile's global parameters), with optional
  per-draw Gaussian jitter.  Draws are seeded through
  :func:`repro.stats.rng.make_seed_sequence` -- one spawned child per
  persona -- so segment parameters are reproducible from a single seed
  and independent of every other random stream in the simulator.
- The resolved :class:`SegmentParams` travel inside
  :class:`~repro.marketplace.profiles.StoreProfile` (``segments=...``)
  and inside :class:`~repro.workload.generators.WorkloadSpec`
  (``segments=...``) as plain frozen dataclasses.
- Users map to segments by **contiguous blocks** via the same
  cumulative-floor rule the sharded runner uses for download budgets:
  segment ``k`` owns users ``[floor(N * W_{k-1}), floor(N * W_k))``
  where ``W_k`` is the cumulative weight.  The mapping is a pure
  function of ``(n_users, weights)`` -- no RNG -- so the partition
  itself never perturbs a seeded stream.

Exactness contract
------------------
A single-segment configuration whose parameters equal the global
profile reproduces the unsegmented dataset **byte for byte** (batch,
sharded, and service paths): the per-segment engines are constructed
without consuming randomness, draws route through the same kernels in
the same order, and bookkeeping (per-segment counts) is RNG-free.
More generally, *any* partition whose segments all carry identical
parameters is indistinguishable from the global profile -- the
property suite in ``tests/properties/test_segment_properties.py``
drives random partitions through the store to prove it.

Hot paths stay vectorized: a batched draw touches each segment with
**one kernel invocation per segment** (never a per-user Python loop --
lint rule RPL023 guards this module).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import DEFAULT_MEMORY_BUDGET, partition_by_blocks
from repro.marketplace.behavior import (
    BatchedDownloadSession,
    BehaviorParams,
    DownloadBehavior,
)
from repro.stats.rng import SeedLike, spawn_rngs

__all__ = [
    "ATTRIBUTES",
    "DEFAULT_PERSONAS",
    "Persona",
    "SegmentActivity",
    "SegmentParams",
    "SegmentedDownloadSession",
    "SegmentedPopulation",
    "UtilityModel",
    "default_personas",
    "draw_segment_params",
    "global_segment",
    "segment_boundaries",
    "segment_download_matrix",
    "segmented_profile",
]

#: The behavioural attributes a persona expresses part-worth utilities
#: over.  Each utility lives in [-1, 1]; 0 means "exactly the global
#: profile" for that attribute.
ATTRIBUTES: Tuple[str, ...] = (
    "price",  # tolerance for paying: -1 never buys, +1 happily buys
    "affinity",  # category affinity: strength of the clustering effect
    "updates",  # update chasing: eagerness to re-download on updates
    "commenting",  # comment propensity after a download
    "engagement",  # post-install session depth (revenue-sim side)
)


@dataclass(frozen=True)
class Persona:
    """A named persona: population weight plus part-worth utilities.

    ``part_worths`` maps attribute name to a utility in ``[-1, 1]``;
    missing attributes default to 0 (the global profile).  ``noise`` is
    the standard deviation of the Gaussian jitter added per draw, so two
    stores seeded differently get slightly different parameterizations
    of the same persona -- the conjoint analogue of respondent-level
    heterogeneity.
    """

    name: str
    weight: float
    part_worths: Tuple[Tuple[str, float], ...] = ()
    noise: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("persona name must be non-empty")
        if self.weight <= 0:
            raise ValueError("persona weight must be positive")
        if self.noise < 0:
            raise ValueError("persona noise must be non-negative")
        known = set(ATTRIBUTES)
        for attribute, utility in self.part_worths:
            if attribute not in known:
                raise ValueError(
                    f"unknown attribute {attribute!r}; known: {ATTRIBUTES}"
                )
            if not -1.0 <= utility <= 1.0:
                raise ValueError(
                    f"part-worth for {attribute!r} must lie in [-1, 1]"
                )

    def utility(self, attribute: str) -> float:
        """The persona's part-worth for one attribute (0 when unset)."""
        for name, value in self.part_worths:
            if name == attribute:
                return value
        return 0.0


#: The four personas ROADMAP item 4 names, with weights shaped so the
#: price-sensitive majority dominates (the paper: most users never pay).
DEFAULT_PERSONAS: Tuple[Persona, ...] = (
    Persona(
        name="price-sensitive",
        weight=0.35,
        part_worths=(("price", -0.9), ("affinity", 0.2), ("engagement", -0.2)),
    ),
    Persona(
        name="category-affine",
        weight=0.30,
        part_worths=(("affinity", 0.9), ("price", 0.1), ("engagement", 0.3)),
    ),
    Persona(
        name="update-chaser",
        weight=0.15,
        part_worths=(("updates", 0.9), ("affinity", -0.3), ("engagement", 0.5)),
    ),
    Persona(
        name="commenter",
        weight=0.20,
        part_worths=(("commenting", 0.9), ("affinity", 0.4), ("price", -0.2)),
    ),
)


def default_personas(count: Optional[int] = None) -> Tuple[Persona, ...]:
    """The shipped persona set, optionally truncated to ``count``.

    Weights are *not* renormalized here; the cumulative-floor partition
    normalizes internally, so a truncated set simply re-divides the
    population proportionally.
    """
    personas = DEFAULT_PERSONAS if count is None else DEFAULT_PERSONAS[:count]
    if not personas:
        raise ValueError("count must be >= 1")
    return personas


@dataclass(frozen=True)
class SegmentParams:
    """Resolved behaviour parameters of one persona segment.

    These are the *drawn* values the simulator runs on -- the output of
    the utility model, or hand-built for tests.  ``paid_tolerance``
    multiplies the paid-app clustered-accept probability (1.0 keeps the
    global 0.1), ``update_affinity`` weights the update re-download
    trickle toward the segment, and ``engagement`` scales the
    revenue-sim usage funnel.
    """

    name: str
    weight: float
    behavior: BehaviorParams = BehaviorParams()
    comment_probability: float = 0.08
    paid_tolerance: float = 1.0
    update_affinity: float = 1.0
    engagement: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("segment name must be non-empty")
        if self.weight <= 0:
            raise ValueError("segment weight must be positive")
        if not 0.0 <= self.comment_probability <= 1.0:
            raise ValueError("comment_probability must be in [0, 1]")
        for label, value in (
            ("paid_tolerance", self.paid_tolerance),
            ("update_affinity", self.update_affinity),
            ("engagement", self.engagement),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative")


@dataclass(frozen=True)
class UtilityModel:
    """Maps persona part-worth utilities to behaviour parameters.

    Each coefficient is the full-scale effect of a +1 utility on its
    attribute, applied around the anchor parameters:

    - ``affinity`` shifts the clustering probability ``p`` (additively,
      clipped to [0, 0.999]) and the cluster exponent ``zc``;
    - ``price`` scales the paid clustered-accept multiplier
      exponentially (so -1 utilities crush paid tolerance toward 0);
    - ``updates`` scales the update-refresh affinity exponentially;
    - ``commenting`` scales the comment probability exponentially
      (clipped to [0, 1]);
    - ``engagement`` scales the usage-funnel multiplier exponentially.
    """

    p_effect: float = 0.08
    zc_effect: float = 0.25
    zr_effect: float = 0.10
    price_effect: float = 1.5
    update_effect: float = 1.2
    comment_effect: float = 1.2
    engagement_effect: float = 0.7

    def resolve(
        self,
        persona: Persona,
        anchor_behavior: BehaviorParams,
        anchor_comment_probability: float,
        rng: np.random.Generator,
    ) -> SegmentParams:
        """Draw one segment's parameters for a persona around an anchor."""

        def drawn(attribute: str) -> float:
            utility = persona.utility(attribute)
            if persona.noise > 0:
                utility += persona.noise * float(rng.standard_normal())
            return float(np.clip(utility, -1.0, 1.0))

        u_price = drawn("price")
        u_affinity = drawn("affinity")
        u_updates = drawn("updates")
        u_commenting = drawn("commenting")
        u_engagement = drawn("engagement")

        behavior = replace(
            anchor_behavior,
            cluster_probability=float(
                np.clip(
                    anchor_behavior.cluster_probability
                    + self.p_effect * u_affinity,
                    0.0,
                    0.999,
                )
            ),
            cluster_exponent=max(
                0.05, anchor_behavior.cluster_exponent + self.zc_effect * u_affinity
            ),
            global_exponent=max(
                0.05, anchor_behavior.global_exponent - self.zr_effect * u_affinity
            ),
        )
        return SegmentParams(
            name=persona.name,
            weight=persona.weight,
            behavior=behavior,
            comment_probability=float(
                np.clip(
                    anchor_comment_probability
                    * np.exp(self.comment_effect * u_commenting),
                    0.0,
                    1.0,
                )
            ),
            paid_tolerance=float(np.exp(self.price_effect * u_price)),
            update_affinity=float(np.exp(self.update_effect * u_updates)),
            engagement=float(np.exp(self.engagement_effect * u_engagement)),
        )


def draw_segment_params(
    personas: Sequence[Persona],
    anchor_behavior: BehaviorParams,
    anchor_comment_probability: float,
    seed: SeedLike = None,
    utility_model: Optional[UtilityModel] = None,
) -> Tuple[SegmentParams, ...]:
    """Resolve persona segments through the utility model, seeded.

    One :class:`~numpy.random.SeedSequence` child is spawned per persona
    (in persona order), so each segment's jitter stream is independent
    and the whole draw is reproducible from ``seed`` alone -- adding or
    removing trailing personas never changes the leading segments.
    """
    if not personas:
        raise ValueError("at least one persona is required")
    model = utility_model or UtilityModel()
    streams = spawn_rngs(seed, len(personas))
    return tuple(
        model.resolve(
            persona,
            anchor_behavior,
            anchor_comment_probability,
            rng,
        )
        for persona, rng in zip(personas, streams)
    )


def global_segment(
    behavior: BehaviorParams, comment_probability: float, name: str = "global"
) -> SegmentParams:
    """The identity segment: one block carrying the global parameters.

    A profile segmented with exactly this reproduces the unsegmented
    dataset byte for byte (the single-segment exactness contract).
    """
    return SegmentParams(
        name=name,
        weight=1.0,
        behavior=behavior,
        comment_probability=comment_probability,
        paid_tolerance=1.0,
        update_affinity=1.0,
        engagement=1.0,
    )


def segment_boundaries(n_users: int, weights: Sequence[float]) -> np.ndarray:
    """Contiguous-block user boundaries from segment weights.

    Returns an ``int64`` array of length ``len(weights) + 1`` starting
    at 0 and ending at ``n_users``; segment ``k`` owns users
    ``[bounds[k], bounds[k+1])``.  Uses the cumulative-floor rule (the
    sharded runner's budget split), so blocks telescope exactly and a
    weight vector that sums to anything positive is accepted -- weights
    are normalized internally.
    """
    if n_users < 1:
        raise ValueError("n_users must be positive")
    values = np.asarray(weights, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(values <= 0):
        raise ValueError("segment weights must be positive")
    cumulative = np.cumsum(values) / values.sum()
    bounds = np.floor(n_users * cumulative).astype(np.int64)
    bounds[-1] = n_users
    return np.concatenate([np.zeros(1, dtype=np.int64), bounds])


class SegmentedPopulation:
    """A user population partitioned into contiguous persona blocks."""

    def __init__(self, segments: Sequence[SegmentParams], n_users: int) -> None:
        if not segments:
            raise ValueError("at least one segment is required")
        self.segments: Tuple[SegmentParams, ...] = tuple(segments)
        self.n_users = int(n_users)
        self.boundaries = segment_boundaries(
            self.n_users, [segment.weight for segment in self.segments]
        )

    @property
    def n_segments(self) -> int:
        """Number of persona segments."""
        return len(self.segments)

    @property
    def names(self) -> Tuple[str, ...]:
        """Segment names in block order."""
        return tuple(segment.name for segment in self.segments)

    @property
    def sizes(self) -> np.ndarray:
        """Users per segment (int64, sums to ``n_users``)."""
        return np.diff(self.boundaries)

    @property
    def uniform_update_affinity(self) -> bool:
        """Whether every segment shares one update affinity.

        When true the store's update-refresh draw uses the exact global
        code path (an unweighted choice), which is what makes
        equal-parameter partitions byte-identical to the global profile.
        """
        return len({segment.update_affinity for segment in self.segments}) == 1

    def segment_of(self, user_ids: Sequence[int]) -> np.ndarray:
        """Vectorized user -> segment index lookup."""
        users = np.asarray(user_ids, dtype=np.int64)
        if users.size and (
            users.min() < 0 or users.max() >= self.n_users
        ):
            raise ValueError("user ids out of range for this population")
        return np.searchsorted(self.boundaries[1:], users, side="right").astype(
            np.int64
        )

    def user_slice(self, segment_index: int) -> slice:
        """The contiguous user range one segment owns."""
        if not 0 <= segment_index < self.n_segments:
            raise ValueError(
                f"segment index must be in [0, {self.n_segments}), "
                f"got {segment_index}"
            )
        return slice(
            int(self.boundaries[segment_index]),
            int(self.boundaries[segment_index + 1]),
        )

    def describe(self) -> str:
        """One line per segment: name, block, and headline parameters."""
        lines = []
        for index, segment in enumerate(self.segments):
            block = self.user_slice(index)
            lines.append(
                f"{segment.name}: users [{block.start}, {block.stop}) "
                f"p={segment.behavior.cluster_probability:.3f} "
                f"zr={segment.behavior.global_exponent:.2f} "
                f"zc={segment.behavior.cluster_exponent:.2f} "
                f"comment={segment.comment_probability:.3f} "
                f"paid-tol={segment.paid_tolerance:.2f} "
                f"update={segment.update_affinity:.2f} "
                f"engagement={segment.engagement:.2f}"
            )
        return "\n".join(lines)


def segmented_profile(
    profile,
    personas: Optional[Sequence[Persona]] = None,
    seed: SeedLike = 0,
    utility_model: Optional[UtilityModel] = None,
):
    """A copy of a :class:`StoreProfile` with utility-drawn segments.

    Anchors the utility model at the profile's global behaviour and
    comment probability, draws one segment per persona, and returns
    ``replace(profile, segments=...)``.  Pass the result anywhere a
    profile goes -- :func:`~repro.marketplace.generator.build_store`,
    :func:`~repro.crawler.scheduler.run_crawl_campaign`, the service.
    """
    drawn = draw_segment_params(
        personas or DEFAULT_PERSONAS,
        profile.behavior,
        profile.comment_probability,
        seed=seed,
        utility_model=utility_model,
    )
    return replace(profile, segments=drawn)


@dataclass
class SegmentActivity:
    """Per-segment slice of one batched draw (for callers that report)."""

    segment: str
    users_served: int
    users_unserved: int


class SegmentedDownloadSession:
    """Vectorized multi-segment counterpart of ``BatchedDownloadSession``.

    Owns one batched session per segment over that segment's contiguous
    user block, and resolves a mixed-segment draw with **one kernel
    invocation per segment**: the user batch is grouped by segment with
    :func:`repro.core.engine.partition_by_blocks` (a stable argsort, so
    relative user order inside a segment is preserved) and each group is
    handed to its segment's session in global segment order.

    With a single segment this degenerates to exactly one delegated
    ``draw`` on the identical user array -- the byte-exactness anchor
    the single-segment contract relies on.
    """

    def __init__(
        self,
        population: SegmentedPopulation,
        behaviors: Sequence[DownloadBehavior],
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        ledger_mode: Optional[str] = None,
    ) -> None:
        if len(behaviors) != population.n_segments:
            raise ValueError(
                "behaviors must match the population's segment count"
            )
        self._population = population
        sizes = population.sizes
        self._sessions: List[Optional[BatchedDownloadSession]] = [
            BatchedDownloadSession(
                behavior,
                int(size),
                memory_budget_bytes=memory_budget_bytes,
                ledger_mode=ledger_mode,
            )
            if size > 0
            else None
            for behavior, size in zip(behaviors, sizes)
        ]
        self._last_activity: List[SegmentActivity] = []

    @property
    def population(self) -> SegmentedPopulation:
        """The segmented population this session serves."""
        return self._population

    @property
    def n_users(self) -> int:
        """Total users across all segment blocks."""
        return self._population.n_users

    @property
    def last_activity(self) -> List[SegmentActivity]:
        """Per-segment served/unserved counts of the most recent draw."""
        return list(self._last_activity)

    def draw(
        self, user_ids: Sequence[int], day: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample and commit one next download per user, segment-batched.

        ``user_ids`` are global (population-wide) and must be unique;
        the result aligns with them (``-1`` marks unserved users).  RNG
        consumption is ordered by segment index, then by each segment's
        internal kernel order -- a pure function of the (population,
        batch) pair, never of how callers interleaved segments.
        """
        users = np.asarray(user_ids, dtype=np.int64)
        out = np.full(users.size, -1, dtype=np.int64)
        if users.size == 0:
            self._last_activity = []
            return out
        segment_ids, order, starts = partition_by_blocks(
            users, self._population.boundaries
        )
        del segment_ids
        self._last_activity = []
        for segment_index in range(self._population.n_segments):
            lo, hi = int(starts[segment_index]), int(starts[segment_index + 1])
            if lo == hi:
                continue
            session = self._sessions[segment_index]
            if session is None:
                continue
            positions = order[lo:hi]
            local = users[positions] - int(
                self._population.boundaries[segment_index]
            )
            apps = session.draw(local, day, rng)
            out[positions] = apps
            served = int((apps >= 0).sum())
            self._last_activity.append(
                SegmentActivity(
                    segment=self._population.segments[segment_index].name,
                    users_served=served,
                    users_unserved=int(apps.size - served),
                )
            )
        return out

    def downloaded_count(self, user_id: int) -> int:
        """Distinct apps one (global) user has downloaded so far."""
        segment = int(self._population.segment_of([user_id])[0])
        session = self._sessions[segment]
        if session is None:
            return 0
        return session.downloaded_count(
            int(user_id) - int(self._population.boundaries[segment])
        )


def segment_download_matrix(
    counts_per_segment: Dict[int, np.ndarray], n_segments: int, n_apps: int
) -> np.ndarray:
    """Stack sparse per-segment count vectors into a dense matrix."""
    matrix = np.zeros((n_segments, n_apps), dtype=np.int64)
    for segment_index, counts in counts_per_segment.items():
        matrix[segment_index] += counts
    return matrix
