"""Advertising-network catalog and ad-library injection.

Section 6.3 of the paper scans free apps' APKs with a reverse-engineering
tool and finds that roughly 67% embed at least one of the 20 most popular
advertising networks.  We model a catalog of 20 ad networks (synthetic
package prefixes in the style of real SDKs), a popularity distribution over
them, and an injection step that decides which libraries each synthetic APK
embeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.stats.rng import SeedLike, make_rng
from repro.stats.zipf import zipf_weights

# Synthetic package prefixes for the top-20 ad networks.  Names are made up
# but follow the reverse-domain convention real SDKs use, so the scanner in
# repro.analysis.adlib performs realistic prefix matching.
TOP_AD_NETWORKS: Tuple[str, ...] = (
    "com.adrift.sdk",
    "com.mobipop.ads",
    "net.clickwave.android",
    "com.bannerly.core",
    "io.adnest.client",
    "com.pixelpush.ads",
    "org.openadserve.mobile",
    "com.tapspree.sdk",
    "cn.admaster.android",
    "cn.wanggao.ads",
    "com.funnelads.lib",
    "com.skybeam.adkit",
    "net.promotia.sdk",
    "com.viewforge.ads",
    "io.monetix.android",
    "com.adglide.core",
    "org.freepromo.net",
    "com.clickmill.sdk",
    "cn.baitui.mobile",
    "com.sparkads.client",
)

# Non-advertising libraries commonly bundled in APKs; injected as noise so
# the scanner has to discriminate rather than just count libraries.
UTILITY_LIBRARIES: Tuple[str, ...] = (
    "com.google.gson",
    "org.apache.httpcomponents",
    "com.squareline.okclient",
    "org.json.android",
    "com.imageloadr.core",
    "net.sqlcipher.database",
    "com.crashlog.sdk",
    "org.greenbot.eventbus",
)


@dataclass(frozen=True)
class AdEcosystem:
    """The ad-network landscape of a marketplace.

    Parameters
    ----------
    ad_inclusion_rate:
        Probability a free app embeds at least one top-20 ad network
        (the paper measures ~0.67-0.677 on SlideMe).
    paid_ad_rate:
        Probability a *paid* app embeds ad libraries (the paper observes
        very few paid apps declare ads).
    network_skew:
        Zipf exponent over the 20 networks: a few networks dominate.
    max_networks_per_app:
        Upper bound on distinct ad SDKs in one APK.
    """

    ad_inclusion_rate: float = 0.67
    paid_ad_rate: float = 0.03
    network_skew: float = 1.0
    max_networks_per_app: int = 5

    def __post_init__(self) -> None:
        for name in ("ad_inclusion_rate", "paid_ad_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.network_skew < 0:
            raise ValueError("network_skew must be non-negative")
        if self.max_networks_per_app < 1:
            raise ValueError("max_networks_per_app must be >= 1")

    def network_weights(self) -> np.ndarray:
        """Popularity weights over the top-20 networks."""
        return zipf_weights(len(TOP_AD_NETWORKS), self.network_skew)

    def sample_libraries(
        self, is_free: bool, seed: SeedLike = None
    ) -> Tuple[str, ...]:
        """Libraries embedded in one APK: maybe ad networks, plus utilities.

        Returns a tuple of package prefixes.  Ad libraries appear with
        probability ``ad_inclusion_rate`` (free) or ``paid_ad_rate`` (paid);
        utility libraries are always candidates, so every APK looks
        realistic to the scanner.
        """
        rng = make_rng(seed)
        libraries = []

        include_rate = self.ad_inclusion_rate if is_free else self.paid_ad_rate
        if rng.random() < include_rate:
            weights = self.network_weights()
            count = 1 + int(
                rng.binomial(self.max_networks_per_app - 1, 0.25)
            )
            probabilities = weights / weights.sum()
            chosen = rng.choice(
                len(TOP_AD_NETWORKS),
                size=min(count, len(TOP_AD_NETWORKS)),
                replace=False,
                p=probabilities,
            )
            libraries.extend(TOP_AD_NETWORKS[index] for index in chosen)

        utility_count = int(rng.integers(1, 5))
        chosen_utilities = rng.choice(
            len(UTILITY_LIBRARIES), size=utility_count, replace=False
        )
        libraries.extend(UTILITY_LIBRARIES[index] for index in chosen_utilities)
        return tuple(libraries)


def contains_ad_network(libraries: Sequence[str]) -> bool:
    """Whether a library list contains any top-20 ad network prefix."""
    networks = set(TOP_AD_NETWORKS)
    for library in libraries:
        if library in networks:
            return True
        # Sub-packages of an ad SDK (e.g. "com.adrift.sdk.banner") count.
        for network in TOP_AD_NETWORKS:
            if library.startswith(network + "."):
                return True
    return False
