"""The live appstore: catalog, download ledger, and simulation loop.

An :class:`AppStore` owns the app catalog, the user population, and the
behaviour engine, and advances one day at a time.  Each day it:

1. lists the apps scheduled to appear that day (developers publish new
   apps at the profile's Poisson rate);
2. simulates the day's downloads through the behaviour engine, enforcing
   fetch-at-most-once and the clustering effect, and gating paid apps
   through a purchase decision;
3. posts rated comments for a fraction of downloads (plus spam-account
   noise), which is the signal the affinity study consumes;
4. releases app updates for the actively maintained minority of apps,
   which trigger a trickle of re-downloads.

The crawler substrate (:mod:`repro.crawler`) observes a store only through
its public query methods, the same way the paper's crawler saw only the
stores' web pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.marketplace.behavior import DownloadBehavior, UserState
from repro.marketplace.catalog import CategoryTaxonomy
from repro.marketplace.segments import SegmentedPopulation
from repro.marketplace.entities import (
    App,
    AppStatistics,
    AppVersion,
    Comment,
    DownloadRecord,
    User,
)


@dataclass
class DailyActivity:
    """What happened in one simulated day (returned by ``advance_day``)."""

    day: int
    downloads: int
    purchases: int
    comments: int
    new_apps: int
    updates: int


class AppStore:
    """A simulated appstore, advanced one day at a time.

    Instances are normally built by :func:`repro.marketplace.generator.build_store`;
    the constructor wires together pre-generated populations.
    """

    def __init__(
        self,
        name: str,
        taxonomy: CategoryTaxonomy,
        apps: Sequence[App],
        users: Sequence[User],
        behavior: DownloadBehavior,
        rng: np.random.Generator,
        daily_download_rate: float,
        update_rates: Optional[Sequence[float]] = None,
        keep_download_log: bool = False,
        segments: Optional[SegmentedPopulation] = None,
        segment_behaviors: Optional[Sequence[DownloadBehavior]] = None,
    ) -> None:
        if len(apps) != behavior.n_apps:
            raise ValueError("apps and behaviour engine disagree on app count")
        if (segments is None) != (segment_behaviors is None):
            raise ValueError(
                "segments and segment_behaviors must be given together"
            )
        if segments is not None:
            if segments.n_users != len(users):
                raise ValueError("segment partition disagrees on user count")
            if len(segment_behaviors) != segments.n_segments:
                raise ValueError("one behaviour engine per segment required")
        self.name = name
        self.taxonomy = taxonomy
        self._apps: List[App] = list(apps)
        self._users: List[User] = list(users)
        self._behavior = behavior
        self._rng = rng
        self.daily_download_rate = float(daily_download_rate)
        if self.daily_download_rate < 0:
            raise ValueError("daily_download_rate must be non-negative")

        if update_rates is None:
            self._update_rates = np.zeros(len(apps), dtype=np.float64)
        else:
            self._update_rates = np.asarray(update_rates, dtype=np.float64)
            if self._update_rates.shape != (len(apps),):
                raise ValueError("update_rates must match app count")
            if np.any(self._update_rates < 0) or np.any(self._update_rates > 1):
                raise ValueError("update_rates must lie in [0, 1]")

        self.day = 0
        self._downloads = np.zeros(len(apps), dtype=np.int64)
        self._rating_sums = np.zeros(len(apps), dtype=np.int64)
        self._rating_counts = np.zeros(len(apps), dtype=np.int64)
        self._comment_counts = np.zeros(len(apps), dtype=np.int64)
        self._user_states: List[UserState] = [UserState() for _ in users]
        self._comments: List[Comment] = []
        self._comments_by_app: Dict[int, List[Comment]] = {}
        self._download_log: List[DownloadRecord] = []
        self._keep_download_log = keep_download_log
        self._daily_totals: List[DailyActivity] = []

        activity = np.array([user.activity for user in users], dtype=np.float64)
        if activity.sum() <= 0:
            raise ValueError("user population has no activity")
        self._user_pick_probabilities = activity / activity.sum()

        self._segments = segments
        if segments is not None:
            self._segment_behaviors: List[DownloadBehavior] = list(
                segment_behaviors
            )
            self._segment_of_user = np.repeat(
                np.arange(segments.n_segments, dtype=np.int64),
                segments.sizes,
            )
            self._downloads_by_segment = np.zeros(
                (segments.n_segments, len(apps)), dtype=np.int64
            )
            self._update_weights = np.array(
                [seg.update_affinity for seg in segments.segments],
                dtype=np.float64,
            )
        else:
            self._segment_behaviors = [behavior]
            self._segment_of_user = np.zeros(len(users), dtype=np.int64)
            self._downloads_by_segment = np.zeros(
                (1, len(apps)), dtype=np.int64
            )
            self._update_weights = np.ones(1, dtype=np.float64)
        # Weighted update refreshes only when segments actually differ in
        # update affinity: the unweighted branch below must keep consuming
        # the exact same RNG stream as the pre-segment store, so any
        # equal-parameter partition stays byte-identical to the global run.
        self._weighted_updates = (
            segments is not None and not segments.uniform_update_affinity
        )

    # ------------------------------------------------------------------
    # Public read API (what the crawler sees)
    # ------------------------------------------------------------------

    @property
    def n_apps(self) -> int:
        """Total apps ever created (listed or scheduled)."""
        return len(self._apps)

    @property
    def n_users(self) -> int:
        """Size of the user population."""
        return len(self._users)

    def listed_app_ids(self, day: Optional[int] = None) -> List[int]:
        """IDs of apps listed (publicly visible) on ``day`` (default: today)."""
        day = self.day if day is None else day
        return [app.app_id for app in self._apps if app.listing_day <= day]

    def app(self, app_id: int) -> App:
        """The app entity for an ID."""
        return self._apps[app_id]

    def apps(self) -> List[App]:
        """All app entities (including not-yet-listed ones)."""
        return list(self._apps)

    def statistics(self, app_id: int) -> AppStatistics:
        """The public statistics page of an app."""
        app = self._apps[app_id]
        version = app.current_version
        return AppStatistics(
            app_id=app_id,
            total_downloads=int(self._downloads[app_id]),
            rating_sum=int(self._rating_sums[app_id]),
            rating_count=int(self._rating_counts[app_id]),
            comment_count=int(self._comment_counts[app_id]),
            version_name=version.version_name if version else "1.0",
            price=app.price,
        )

    def download_counts(self) -> np.ndarray:
        """Per-app cumulative download counts (a copy)."""
        return self._downloads.copy()

    @property
    def segments(self) -> Optional[SegmentedPopulation]:
        """The persona partition this store runs under (``None`` = global)."""
        return self._segments

    def segment_download_counts(self) -> np.ndarray:
        """Per-(segment, app) cumulative download counts (a copy).

        Shape ``(n_segments, n_apps)``; a single all-users segment when the
        store runs the global profile.  Rows sum to :meth:`download_counts`.
        """
        return self._downloads_by_segment.copy()

    def segment_of_users(self) -> np.ndarray:
        """Segment index of every user (zeros when unsegmented; a copy)."""
        return self._segment_of_user.copy()

    def total_downloads(self) -> int:
        """Cumulative downloads across all apps."""
        return int(self._downloads.sum())

    def comments(self) -> List[Comment]:
        """All public comments in posting order."""
        return list(self._comments)

    def comments_for_app(self, app_id: int) -> List[Comment]:
        """Public comments on one app, in posting order."""
        return list(self._comments_by_app.get(app_id, []))

    def download_log(self) -> List[DownloadRecord]:
        """The raw download event log (empty unless ``keep_download_log``)."""
        return list(self._download_log)

    def daily_activity(self) -> List[DailyActivity]:
        """Per-day activity summaries since store creation."""
        return list(self._daily_totals)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def advance_day(self) -> DailyActivity:
        """Simulate one day of store activity and return its summary."""
        day = self.day
        new_apps = sum(1 for app in self._apps if app.listing_day == day)
        updates = self._release_updates(day)
        downloads, purchases, comments = self._simulate_downloads(day)
        activity = DailyActivity(
            day=day,
            downloads=downloads,
            purchases=purchases,
            comments=comments,
            new_apps=new_apps,
            updates=updates,
        )
        self._daily_totals.append(activity)
        self.day += 1
        return activity

    def advance_days(self, n_days: int) -> List[DailyActivity]:
        """Simulate ``n_days`` consecutive days."""
        if n_days < 0:
            raise ValueError("n_days must be non-negative")
        return [self.advance_day() for _ in range(n_days)]

    def _release_updates(self, day: int) -> int:
        """Release new versions for actively maintained listed apps."""
        listed = np.array(
            [app.listing_day <= day for app in self._apps], dtype=bool
        )
        rates = np.where(listed, self._update_rates, 0.0)
        coins = self._rng.random(rates.size)
        to_update = np.flatnonzero(coins < rates)
        for app_id in to_update:
            app = self._apps[app_id]
            current = app.current_version
            if current is None:
                continue
            next_code = current.apk.version_code + 1
            new_apk = type(current.apk)(
                package_name=current.apk.package_name,
                version_code=next_code,
                size_mb=current.apk.size_mb,
                embedded_libraries=current.apk.embedded_libraries,
            )
            app.versions.append(
                AppVersion(
                    version_name=f"1.{next_code}",
                    release_day=day,
                    apk=new_apk,
                )
            )
            # An update allows a trickle of re-downloads from existing
            # owners; this is the only violation of fetch-at-most-once the
            # paper acknowledges, and it is small (Figure 4).
            owners = [
                user_id
                for user_id, state in enumerate(self._user_states)
                if app_id in state.downloaded
            ]
            if owners:
                refresh_count = max(1, int(0.05 * len(owners)))
                size = min(refresh_count, len(owners))
                if self._weighted_updates:
                    # Update-chasers refresh more eagerly: owners are drawn
                    # with probability proportional to their segment's
                    # update affinity.
                    weights = self._update_weights[
                        self._segment_of_user[np.asarray(owners, dtype=np.int64)]
                    ]
                    refreshed = self._rng.choice(
                        len(owners),
                        size=size,
                        replace=False,
                        p=weights / weights.sum(),
                    )
                else:
                    refreshed = self._rng.choice(
                        len(owners), size=size, replace=False
                    )
                for position in np.atleast_1d(refreshed):
                    self._downloads[app_id] += 1
                    owner_segment = self._segment_of_user[owners[int(position)]]
                    self._downloads_by_segment[owner_segment, app_id] += 1
                    if self._keep_download_log:
                        self._download_log.append(
                            DownloadRecord(
                                user_id=owners[int(position)],
                                app_id=int(app_id),
                                day=day,
                                is_update=True,
                            )
                        )
        return int(to_update.size)

    def _simulate_downloads(self, day: int) -> Tuple[int, int, int]:
        """Run the day's download events; returns (downloads, purchases, comments)."""
        n_events = int(self._rng.poisson(self.daily_download_rate))
        if n_events == 0:
            return 0, 0, 0
        user_ids = self._rng.choice(
            self.n_users, size=n_events, p=self._user_pick_probabilities
        )
        downloads = purchases = comment_count = 0
        for user_id in user_ids:
            state = self._user_states[user_id]
            segment = int(self._segment_of_user[user_id])
            behavior = self._segment_behaviors[segment]
            app_index = behavior.next_download(state, day, self._rng)
            if app_index is None:
                continue
            app = self._apps[app_index]
            state.record(app_index, behavior.category_of(app_index))
            self._downloads[app_index] += 1
            self._downloads_by_segment[segment, app_index] += 1
            downloads += 1
            if app.is_paid:
                purchases += 1
            if self._keep_download_log:
                self._download_log.append(
                    DownloadRecord(user_id=int(user_id), app_id=int(app_index), day=day)
                )
            user = self._users[user_id]
            if self._rng.random() < user.comment_probability:
                rating = int(self._rng.integers(1, 6))
                comment = Comment(
                    user_id=int(user_id),
                    app_id=int(app_index),
                    day=day,
                    rating=rating,
                )
                self._comments.append(comment)
                self._comments_by_app.setdefault(int(app_index), []).append(
                    comment
                )
                self._rating_sums[app_index] += rating
                self._rating_counts[app_index] += 1
                self._comment_counts[app_index] += 1
                comment_count += 1
        return downloads, purchases, comment_count
