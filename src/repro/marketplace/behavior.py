"""User download behaviour engine.

This is the generative mechanism the paper's APP-CLUSTERING model
abstracts (Section 5.1), embedded in the marketplace simulator so that the
*measured* synthetic data actually contains the phenomena the analysis
pipeline must recover:

- **fetch-at-most-once** -- a user never downloads the same app twice
  (re-downloads only happen after an update);
- **clustering effect** -- with probability ``p`` a user's next download
  comes from the category of one of their previous downloads (drawn from
  that category's internal Zipf law), otherwise from the global Zipf law.

The engine works on app *indices* and category arrays for speed; the store
wraps it with the entity layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.stats.sampling import AliasSampler
from repro.stats.zipf import zipf_weights


@dataclass(frozen=True)
class BehaviorParams:
    """Tunable knobs of the download behaviour.

    Parameters
    ----------
    cluster_probability:
        The paper's ``p``: fraction of downloads driven by the clustering
        effect.  The paper's best fits use 0.90-0.95.
    global_exponent:
        The paper's ``zr``: Zipf exponent of the global appeal ranking.
    cluster_exponent:
        The paper's ``zc``: Zipf exponent of each category's internal
        ranking.
    max_rejections:
        Cap on fetch-at-most-once resampling attempts per download; when a
        user has exhausted a category the engine falls back to the global
        distribution, and gives up entirely after this many tries (the
        download is skipped).
    """

    cluster_probability: float = 0.9
    global_exponent: float = 1.5
    cluster_exponent: float = 1.4
    max_rejections: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.cluster_probability <= 1.0:
            raise ValueError("cluster_probability must be in [0, 1]")
        if self.global_exponent < 0 or self.cluster_exponent < 0:
            raise ValueError("Zipf exponents must be non-negative")
        if self.max_rejections < 1:
            raise ValueError("max_rejections must be >= 1")


@dataclass
class UserState:
    """Per-user download history the engine consults."""

    downloaded: Set[int] = field(default_factory=set)
    visited_categories: List[int] = field(default_factory=list)

    def record(self, app_index: int, category_index: int) -> None:
        """Add a download to the history."""
        self.downloaded.add(app_index)
        if category_index not in self.visited_categories:
            self.visited_categories.append(category_index)


class DownloadBehavior:
    """Samples app downloads for users over a fixed app population.

    Parameters
    ----------
    app_categories:
        ``app_categories[i]`` is the category index of the app with global
        appeal rank ``i + 1``.  Apps are identified by their 0-based global
        appeal index throughout the engine.
    appeal_multipliers:
        Optional per-app multiplicative appeal adjustments (price demand
        factors, editorial boosts).  Defaults to all ones.
    params:
        The behaviour knobs.
    listing_days:
        Optional per-app availability day; draws landing on an app not yet
        listed at the requested day are rejected and resampled, which is
        how the simulator models a growing catalog.
    """

    def __init__(
        self,
        app_categories: Sequence[int],
        params: BehaviorParams,
        appeal_multipliers: Optional[Sequence[float]] = None,
        listing_days: Optional[Sequence[int]] = None,
        clustered_accept_probability: Optional[Sequence[float]] = None,
    ) -> None:
        self._categories = np.asarray(app_categories, dtype=np.int64)
        if self._categories.ndim != 1 or self._categories.size == 0:
            raise ValueError("app_categories must be a non-empty 1-D array")
        if np.any(self._categories < 0):
            raise ValueError("category indices must be non-negative")
        self._n_apps = self._categories.size
        self._params = params

        if appeal_multipliers is None:
            multipliers = np.ones(self._n_apps, dtype=np.float64)
        else:
            multipliers = np.asarray(appeal_multipliers, dtype=np.float64)
            if multipliers.shape != (self._n_apps,):
                raise ValueError("appeal_multipliers must match app count")
            if np.any(multipliers < 0):
                raise ValueError("appeal multipliers must be non-negative")
        self._multipliers = multipliers

        if listing_days is None:
            self._listing_days = np.zeros(self._n_apps, dtype=np.int64)
        else:
            self._listing_days = np.asarray(listing_days, dtype=np.int64)
            if self._listing_days.shape != (self._n_apps,):
                raise ValueError("listing_days must match app count")

        # Per-app probability that a *clustered* (casual, browse-driven)
        # draw landing on the app is accepted.  The paper conjectures that
        # users are selective when paying: paid apps are rarely picked up
        # through casual same-category browsing, which is what gives their
        # rank curve the clean Zipf shape of Figure 11(b).  Deliberate
        # global-law selections are unaffected.
        if clustered_accept_probability is None:
            self._clustered_accept = np.ones(self._n_apps, dtype=np.float64)
        else:
            self._clustered_accept = np.asarray(
                clustered_accept_probability, dtype=np.float64
            )
            if self._clustered_accept.shape != (self._n_apps,):
                raise ValueError(
                    "clustered_accept_probability must match app count"
                )
            if np.any(self._clustered_accept < 0) or np.any(
                self._clustered_accept > 1
            ):
                raise ValueError(
                    "clustered_accept_probability values must lie in [0, 1]"
                )

        # Global sampler: Zipf over appeal ranks times per-app multipliers.
        global_weights = (
            zipf_weights(self._n_apps, params.global_exponent) * multipliers
        )
        self._global_sampler = AliasSampler(global_weights)

        # Per-category samplers over each category's own apps, ordered by
        # their within-category appeal (global order restricted to the
        # category preserves that ordering).
        self._category_members: Dict[int, np.ndarray] = {}
        self._category_samplers: Dict[int, AliasSampler] = {}
        for category_index in np.unique(self._categories):
            members = np.flatnonzero(self._categories == category_index)
            weights = (
                zipf_weights(members.size, params.cluster_exponent)
                * multipliers[members]
            )
            self._category_members[int(category_index)] = members
            if weights.sum() > 0:
                self._category_samplers[int(category_index)] = AliasSampler(
                    weights
                )

    @property
    def n_apps(self) -> int:
        """Number of apps in the population."""
        return self._n_apps

    @property
    def params(self) -> BehaviorParams:
        """The behaviour parameters in force."""
        return self._params

    def category_of(self, app_index: int) -> int:
        """Category index of an app."""
        return int(self._categories[app_index])

    def _available(self, app_index: int, day: int) -> bool:
        return self._listing_days[app_index] <= day

    def _draw_global(
        self, state: UserState, day: int, rng: np.random.Generator
    ) -> Optional[int]:
        for _ in range(self._params.max_rejections):
            candidate = self._global_sampler.sample_one(rng)
            if candidate in state.downloaded:
                continue
            if not self._available(candidate, day):
                continue
            return candidate
        return None

    def _draw_clustered(
        self, state: UserState, day: int, rng: np.random.Generator
    ) -> Optional[int]:
        if not state.visited_categories:
            return None
        # The paper: the cluster is chosen uniformly among the categories
        # of previous downloads.
        position = int(rng.integers(0, len(state.visited_categories)))
        category = state.visited_categories[position]
        sampler = self._category_samplers.get(category)
        if sampler is None:
            return None
        members = self._category_members[category]
        for _ in range(self._params.max_rejections):
            candidate = int(members[sampler.sample_one(rng)])
            if candidate in state.downloaded:
                continue
            if not self._available(candidate, day):
                continue
            accept = self._clustered_accept[candidate]
            if accept < 1.0 and rng.random() >= accept:
                continue
            return candidate
        return None

    def next_download(
        self, state: UserState, day: int, rng: np.random.Generator
    ) -> Optional[int]:
        """Sample the user's next app, or ``None`` when saturated.

        Implements the decision process of Section 5.1: first download from
        the global law; afterwards from a previously visited category with
        probability ``p`` (falling back to the global law when the chosen
        category is exhausted), else from the global law.  The returned app
        is *not* recorded into ``state``; callers decide whether the
        download actually happens (e.g. paid-app purchase decisions) and
        then call ``state.record``.
        """
        if len(state.downloaded) >= self._n_apps:
            return None
        use_cluster = (
            bool(state.visited_categories)
            and rng.random() < self._params.cluster_probability
        )
        if use_cluster:
            candidate = self._draw_clustered(state, day, rng)
            if candidate is not None:
                return candidate
        return self._draw_global(state, day, rng)
