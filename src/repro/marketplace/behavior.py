"""User download behaviour engine.

This is the generative mechanism the paper's APP-CLUSTERING model
abstracts (Section 5.1), embedded in the marketplace simulator so that the
*measured* synthetic data actually contains the phenomena the analysis
pipeline must recover:

- **fetch-at-most-once** -- a user never downloads the same app twice
  (re-downloads only happen after an update);
- **clustering effect** -- with probability ``p`` a user's next download
  comes from the category of one of their previous downloads (drawn from
  that category's internal Zipf law), otherwise from the global Zipf law.

The engine works on app *indices* and category arrays for speed; the store
wraps it with the entity layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.engine import (
    DEFAULT_MEMORY_BUDGET,
    DownloadLedger,
    VisitedClusters,
    sample_clustered_new_apps,
    sample_new_apps,
)
from repro.stats.sampling import AliasSampler
from repro.stats.zipf import zipf_weights


@dataclass(frozen=True)
class BehaviorParams:
    """Tunable knobs of the download behaviour.

    Parameters
    ----------
    cluster_probability:
        The paper's ``p``: fraction of downloads driven by the clustering
        effect.  The paper's best fits use 0.90-0.95.
    global_exponent:
        The paper's ``zr``: Zipf exponent of the global appeal ranking.
    cluster_exponent:
        The paper's ``zc``: Zipf exponent of each category's internal
        ranking.
    max_rejections:
        Cap on fetch-at-most-once resampling attempts per download; when a
        user has exhausted a category the engine falls back to the global
        distribution, and gives up entirely after this many tries (the
        download is skipped).
    """

    cluster_probability: float = 0.9
    global_exponent: float = 1.5
    cluster_exponent: float = 1.4
    max_rejections: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.cluster_probability <= 1.0:
            raise ValueError("cluster_probability must be in [0, 1]")
        if self.global_exponent < 0 or self.cluster_exponent < 0:
            raise ValueError("Zipf exponents must be non-negative")
        if self.max_rejections < 1:
            raise ValueError("max_rejections must be >= 1")


@dataclass
class UserState:
    """Per-user download history the engine consults."""

    downloaded: Set[int] = field(default_factory=set)
    visited_categories: List[int] = field(default_factory=list)

    def record(self, app_index: int, category_index: int) -> None:
        """Add a download to the history."""
        self.downloaded.add(app_index)
        if category_index not in self.visited_categories:
            self.visited_categories.append(category_index)


class DownloadBehavior:
    """Samples app downloads for users over a fixed app population.

    Parameters
    ----------
    app_categories:
        ``app_categories[i]`` is the category index of the app with global
        appeal rank ``i + 1``.  Apps are identified by their 0-based global
        appeal index throughout the engine.
    appeal_multipliers:
        Optional per-app multiplicative appeal adjustments (price demand
        factors, editorial boosts).  Defaults to all ones.
    params:
        The behaviour knobs.
    listing_days:
        Optional per-app availability day; draws landing on an app not yet
        listed at the requested day are rejected and resampled, which is
        how the simulator models a growing catalog.
    """

    def __init__(
        self,
        app_categories: Sequence[int],
        params: BehaviorParams,
        appeal_multipliers: Optional[Sequence[float]] = None,
        listing_days: Optional[Sequence[int]] = None,
        clustered_accept_probability: Optional[Sequence[float]] = None,
    ) -> None:
        self._categories = np.asarray(app_categories, dtype=np.int64)
        if self._categories.ndim != 1 or self._categories.size == 0:
            raise ValueError("app_categories must be a non-empty 1-D array")
        if np.any(self._categories < 0):
            raise ValueError("category indices must be non-negative")
        self._n_apps = self._categories.size
        self._params = params

        if appeal_multipliers is None:
            multipliers = np.ones(self._n_apps, dtype=np.float64)
        else:
            multipliers = np.asarray(appeal_multipliers, dtype=np.float64)
            if multipliers.shape != (self._n_apps,):
                raise ValueError("appeal_multipliers must match app count")
            if np.any(multipliers < 0):
                raise ValueError("appeal multipliers must be non-negative")
        self._multipliers = multipliers

        if listing_days is None:
            self._listing_days = np.zeros(self._n_apps, dtype=np.int64)
        else:
            self._listing_days = np.asarray(listing_days, dtype=np.int64)
            if self._listing_days.shape != (self._n_apps,):
                raise ValueError("listing_days must match app count")

        # Per-app probability that a *clustered* (casual, browse-driven)
        # draw landing on the app is accepted.  The paper conjectures that
        # users are selective when paying: paid apps are rarely picked up
        # through casual same-category browsing, which is what gives their
        # rank curve the clean Zipf shape of Figure 11(b).  Deliberate
        # global-law selections are unaffected.
        if clustered_accept_probability is None:
            self._clustered_accept = np.ones(self._n_apps, dtype=np.float64)
        else:
            self._clustered_accept = np.asarray(
                clustered_accept_probability, dtype=np.float64
            )
            if self._clustered_accept.shape != (self._n_apps,):
                raise ValueError(
                    "clustered_accept_probability must match app count"
                )
            if np.any(self._clustered_accept < 0) or np.any(
                self._clustered_accept > 1
            ):
                raise ValueError(
                    "clustered_accept_probability values must lie in [0, 1]"
                )

        # Global sampler: Zipf over appeal ranks times per-app multipliers.
        global_weights = (
            zipf_weights(self._n_apps, params.global_exponent) * multipliers
        )
        self._global_sampler = AliasSampler(global_weights)

        # Per-category samplers over each category's own apps, ordered by
        # their within-category appeal (global order restricted to the
        # category preserves that ordering).
        self._category_members: Dict[int, np.ndarray] = {}
        self._category_samplers: Dict[int, AliasSampler] = {}
        for category_index in np.unique(self._categories):  # repro: noqa=RPL023 -- sampler setup, O(categories) not O(users)
            members = np.flatnonzero(self._categories == category_index)
            weights = (
                zipf_weights(members.size, params.cluster_exponent)
                * multipliers[members]
            )
            self._category_members[int(category_index)] = members
            if weights.sum() > 0:
                self._category_samplers[int(category_index)] = AliasSampler(
                    weights
                )

    @property
    def n_apps(self) -> int:
        """Number of apps in the population."""
        return self._n_apps

    @property
    def params(self) -> BehaviorParams:
        """The behaviour parameters in force."""
        return self._params

    def category_of(self, app_index: int) -> int:
        """Category index of an app."""
        return int(self._categories[app_index])

    def _available(self, app_index: int, day: int) -> bool:
        return self._listing_days[app_index] <= day

    def _draw_global(
        self, state: UserState, day: int, rng: np.random.Generator
    ) -> Optional[int]:
        for _ in range(self._params.max_rejections):
            candidate = self._global_sampler.sample_one(rng)
            if candidate in state.downloaded:
                continue
            if not self._available(candidate, day):
                continue
            return candidate
        return None

    def _draw_clustered(
        self, state: UserState, day: int, rng: np.random.Generator
    ) -> Optional[int]:
        if not state.visited_categories:
            return None
        # The paper: the cluster is chosen uniformly among the categories
        # of previous downloads.
        position = int(rng.integers(0, len(state.visited_categories)))
        category = state.visited_categories[position]
        sampler = self._category_samplers.get(category)
        if sampler is None:
            return None
        members = self._category_members[category]
        for _ in range(self._params.max_rejections):
            candidate = int(members[sampler.sample_one(rng)])
            if candidate in state.downloaded:
                continue
            if not self._available(candidate, day):
                continue
            accept = self._clustered_accept[candidate]
            if accept < 1.0 and rng.random() >= accept:
                continue
            return candidate
        return None

    def next_download(
        self, state: UserState, day: int, rng: np.random.Generator
    ) -> Optional[int]:
        """Sample the user's next app, or ``None`` when saturated.

        Implements the decision process of Section 5.1: first download from
        the global law; afterwards from a previously visited category with
        probability ``p`` (falling back to the global law when the chosen
        category is exhausted), else from the global law.  The returned app
        is *not* recorded into ``state``; callers decide whether the
        download actually happens (e.g. paid-app purchase decisions) and
        then call ``state.record``.
        """
        if len(state.downloaded) >= self._n_apps:
            return None
        use_cluster = (
            bool(state.visited_categories)
            and rng.random() < self._params.cluster_probability
        )
        if use_cluster:
            candidate = self._draw_clustered(state, day, rng)
            if candidate is not None:
                return candidate
        return self._draw_global(state, day, rng)


class BatchedDownloadSession:
    """Vectorized counterpart of the per-user ``next_download`` loop.

    Owns the fetch-at-most-once ledger and visited-category state for a
    fixed user population and resolves one next download for *many* users
    in a single vectorized call, reusing the batched rejection kernel of
    :mod:`repro.core.engine` (the same one the workload models run on).
    Listing-day availability and the per-app clustered-accept thinning of
    :class:`DownloadBehavior` are honoured.

    Unlike the scalar API -- where callers inspect the candidate and then
    decide whether to ``state.record`` it -- a batched draw *commits*: the
    returned apps are recorded into the session's history immediately.
    This is the entry point for capacity-style experiments that push
    whole user cohorts through a store day without the entity layer.
    """

    def __init__(
        self,
        behavior: DownloadBehavior,
        n_users: int,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        ledger_mode: Optional[str] = None,
    ) -> None:
        if n_users < 1:
            raise ValueError("n_users must be positive")
        self._behavior = behavior
        self._n_users = n_users
        self._ledger = DownloadLedger(
            n_users, behavior.n_apps, memory_budget_bytes, mode=ledger_mode
        )
        n_categories = int(behavior._categories.max()) + 1
        self._visited = VisitedClusters(n_users, n_categories, n_categories)

    @property
    def n_users(self) -> int:
        """Number of users in the session."""
        return self._n_users

    def downloaded_count(self, user_id: int) -> int:
        """Distinct apps a user has downloaded so far."""
        return int(self._ledger.counts[user_id])

    def has_downloaded(self, user_id: int, app_index: int) -> bool:
        """Whether the user already fetched the app."""
        return bool(
            self._ledger.contains(
                np.asarray([user_id], dtype=np.int64),
                np.asarray([app_index], dtype=np.int64),
            )[0]
        )

    def draw(
        self, user_ids: Sequence[int], day: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample and commit one next download per user, vectorized.

        ``user_ids`` must not repeat a user (one decision per user per
        call -- the batched analogue of one ``next_download`` each).
        Returns an ``int64`` array aligned with ``user_ids``; ``-1``
        marks users that could not be served (saturated, or every
        candidate rejected).
        """
        behavior = self._behavior
        users = np.asarray(user_ids, dtype=np.int64)
        if users.size == 0:
            return np.empty(0, dtype=np.int64)
        if np.unique(users).size != users.size:
            raise ValueError("user_ids must be unique within a batched draw")
        available = behavior._listing_days <= day
        apps = np.full(users.size, -1, dtype=np.int64)

        visited_counts = self._visited.counts[users]
        clustered = (visited_counts > 0) & (
            rng.random(users.size) < behavior._params.cluster_probability
        )
        slots = np.flatnonzero(clustered)
        if slots.size:
            chosen = self._visited.choose(users[slots], rng)
            sample_clustered_new_apps(
                slots,
                users[slots],
                chosen,
                behavior._category_samplers,
                behavior._category_members,
                self._ledger,
                rng,
                behavior._params.max_rejections,
                out=apps,
                available=available,
                accept_probability=behavior._clustered_accept,
            )
        fallback = np.flatnonzero(apps < 0)
        if fallback.size:
            apps[fallback] = sample_new_apps(
                lambda size: behavior._global_sampler.sample(size, seed=rng),
                users[fallback],
                self._ledger,
                rng,
                behavior._params.max_rejections,
                available=available,
            )
        done = np.flatnonzero(apps >= 0)
        if done.size:
            categories = behavior._categories[apps[done]]
            self._visited.record(users[done], categories)
        return apps
