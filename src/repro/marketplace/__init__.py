"""Synthetic appstore marketplace substrate.

The paper's measurements were taken from live crawls of four third-party
Android appstores (Anzhi, AppChina, 1Mobile, SlideMe).  Those traces are
proprietary and the stores have changed beyond recognition, so this package
builds the closest synthetic equivalent: a full marketplace simulator whose
user population exhibits the two behavioural mechanisms the paper
identifies -- *fetch-at-most-once* and the *clustering effect* -- and whose
scale parameters are calibrated per store to Table 1 of the paper.

Layout
------
- :mod:`repro.marketplace.entities` -- the data model (apps, developers,
  users, comments, versions, APK packages).
- :mod:`repro.marketplace.catalog` -- category taxonomies per store.
- :mod:`repro.marketplace.pricing` -- price assignment for paid apps.
- :mod:`repro.marketplace.ads` -- the ad-network catalog and ad-library
  injection into synthetic APKs.
- :mod:`repro.marketplace.behavior` -- the user download behaviour engine
  (the generative process the APP-CLUSTERING model abstracts).
- :mod:`repro.marketplace.store` -- the live appstore: catalog, download
  ledger, comment log, and day-by-day simulation loop.
- :mod:`repro.marketplace.profiles` -- per-store scale profiles calibrated
  to Table 1.
- :mod:`repro.marketplace.generator` -- builds a ready-to-run store from a
  profile.
"""

from repro.marketplace.catalog import CategoryTaxonomy, default_taxonomy
from repro.marketplace.entities import (
    ApkPackage,
    App,
    AppVersion,
    Comment,
    Developer,
    DownloadRecord,
    User,
)
from repro.marketplace.generator import build_store
from repro.marketplace.profiles import (
    StoreProfile,
    paper_profiles,
    scaled_profile,
)
from repro.marketplace.store import AppStore

__all__ = [
    "ApkPackage",
    "App",
    "AppStore",
    "AppVersion",
    "CategoryTaxonomy",
    "Comment",
    "Developer",
    "DownloadRecord",
    "StoreProfile",
    "User",
    "build_store",
    "default_taxonomy",
    "paper_profiles",
    "scaled_profile",
]
