"""Disk layout of a packed columnar dataset: one ``.npy`` per column.

A packed dataset is a directory::

    crawl.cstore/
      manifest.json            # format tag, store dirs, chunk inventory
      dictionaries.json        # the four intern tables (index == id)
      snapshots/s000/day_17/   # one dir per (store, day) chunk
        app_id.npy  name_id.npy  ...  version_id.npy
      comments/s000/           # per-store logs, insertion order
        user_id.npy  app_id.npy  day.npy  rating.npy
      apks/s000/
        app_id.npy  version_id.npy  ...  seq.npy

Plain ``np.save`` files mean every column reads back zero-copy through
``np.load(mmap_mode="r")``; :func:`open_store` wires those loads up
*lazily*, so opening a 60M-row dataset touches only the two JSON files
and each column page-faults in on first use.  Store names map to
opaque ``s000``-style directory names through the manifest, keeping the
layout safe for any store string.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import numpy as np

from repro.obs.metrics import get_registry
from repro.store.chunks import ApkLog, CommentLog, SnapshotChunk
from repro.store.columnar import ColumnarStore
from repro.store.dictionary import StringInterner, TupleInterner
from repro.store.schema import (
    APK_COLUMNS,
    COMMENT_COLUMNS,
    FORMAT_VERSION,
    SNAPSHOT_COLUMNS,
)

__all__ = ["bytes_on_disk", "is_packed_dataset", "open_store", "pack_store"]

_MANIFEST = "manifest.json"
_DICTIONARIES = "dictionaries.json"


def is_packed_dataset(path) -> bool:
    """Whether a path looks like a packed columnar dataset directory."""
    path = Path(path)
    return path.is_dir() and (path / _MANIFEST).is_file()


def _chunk_dir(root: Path, store_dir: str, day: int) -> Path:
    return root / "snapshots" / store_dir / f"day_{day}"


def _write_columns(
    directory: Path, columns: Dict[str, np.ndarray]
) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    for name in sorted(columns):
        np.save(directory / f"{name}.npy", np.asarray(columns[name]))


def _column_loader(directory: Path):
    """A lazy per-column mmap loader bound to one chunk directory."""

    def load(name: str) -> np.ndarray:
        return np.load(directory / f"{name}.npy", mmap_mode="r")

    return load


def bytes_on_disk(path) -> int:
    """Total size of a packed dataset's files, in bytes."""
    root = Path(path)
    return sum(
        entry.stat().st_size for entry in sorted(root.rglob("*")) if entry.is_file()
    )


def pack_store(store: ColumnarStore, path) -> int:
    """Write a columnar store to disk; returns total bytes written.

    Seals every dirty buffer first, so the on-disk dataset is exactly
    what the in-memory store would answer queries from.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    store.seal()

    store_dirs: Dict[str, str] = {
        name: f"s{index:03d}" for index, name in enumerate(store.stores())
    }
    manifest: Dict[str, object] = {
        "format": FORMAT_VERSION,
        "store_dirs": store_dirs,
        "snapshots": [],
        "comments": [],
        "apks": [],
    }

    for chunk in store.chunks():
        directory = _chunk_dir(root, store_dirs[chunk.store], chunk.day)
        _write_columns(
            directory,
            {name: chunk.column(name) for name in SNAPSHOT_COLUMNS},
        )
        manifest["snapshots"].append(
            {"store": chunk.store, "day": chunk.day, "rows": chunk.n_rows}
        )
    for store_name in store.comment_stores():
        columns = store.comment_log(store_name).arrays()
        _write_columns(root / "comments" / store_dirs[store_name], columns)
        manifest["comments"].append(
            {"store": store_name, "rows": int(columns["user_id"].size)}
        )
    for store_name in store.apk_stores():
        columns = store.apk_log(store_name).arrays()
        _write_columns(root / "apks" / store_dirs[store_name], columns)
        manifest["apks"].append(
            {"store": store_name, "rows": int(columns["app_id"].size)}
        )

    dictionaries = {
        "names": store.names.to_json(),
        "categories": store.categories.to_json(),
        "versions": store.versions.to_json(),
        "packages": store.packages.to_json(),
        "libsets": store.libsets.to_json(),
    }
    (root / _DICTIONARIES).write_text(
        json.dumps(dictionaries, sort_keys=True), encoding="utf-8"
    )
    (root / _MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    total = bytes_on_disk(root)
    registry = get_registry()
    registry.counter("store.datasets_packed").add(1)
    registry.gauge("store.bytes_on_disk").set(total)
    return total


def open_store(path) -> ColumnarStore:
    """Open a packed dataset with lazy, mmap-backed column reads."""
    root = Path(path)
    manifest = json.loads((root / _MANIFEST).read_text(encoding="utf-8"))
    if manifest.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported columnar format {manifest.get('format')!r} "
            f"(expected {FORMAT_VERSION!r})"
        )
    dictionaries = json.loads(
        (root / _DICTIONARIES).read_text(encoding="utf-8")
    )

    store = ColumnarStore()
    store.names = StringInterner.from_json(dictionaries["names"])
    store.categories = StringInterner.from_json(dictionaries["categories"])
    store.versions = StringInterner.from_json(dictionaries["versions"])
    store.packages = StringInterner.from_json(dictionaries["packages"])
    store.libsets = TupleInterner.from_json(dictionaries["libsets"])

    store_dirs = manifest["store_dirs"]
    for entry in manifest["snapshots"]:
        directory = _chunk_dir(root, store_dirs[entry["store"]], entry["day"])
        store._register_chunk(
            SnapshotChunk(
                entry["store"],
                int(entry["day"]),
                int(entry["rows"]),
                loader=_column_loader(directory),
                source="mmap",
            )
        )
    for entry in manifest["comments"]:
        directory = root / "comments" / store_dirs[entry["store"]]
        store._register_comment_log(
            CommentLog(
                entry["store"],
                n_base_rows=int(entry["rows"]),
                loader=_column_loader(directory),
                source="mmap",
            )
        )
    for entry in manifest["apks"]:
        directory = root / "apks" / store_dirs[entry["store"]]
        store._register_apk_log(
            ApkLog(
                entry["store"],
                n_base_rows=int(entry["rows"]),
                loader=_column_loader(directory),
                source="mmap",
            )
        )
    registry = get_registry()
    registry.counter("store.datasets_opened").add(1)
    registry.gauge("store.bytes_on_disk").set(bytes_on_disk(root))
    return store
