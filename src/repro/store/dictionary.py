"""Intern tables: dictionary-encoded string (and string-tuple) columns.

Columnar storage keeps variable-length values out of the hot arrays by
replacing every string with a small integer id.  The id assignment is
purely append-order (first occurrence wins), which makes the encoding
deterministic for a deterministic writer and lets the table serialize as
a plain JSON list whose index *is* the id.

Two value shapes are needed by the snapshot store:

- plain strings (app names, categories, version names, package names);
- tuples of strings (the ``embedded_libraries`` of an APK record), which
  intern as one id per distinct tuple so an APK row stays fixed-width.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, List, Sequence, Tuple, TypeVar

ValueT = TypeVar("ValueT", bound=Hashable)

__all__ = ["Interner", "StringInterner", "TupleInterner"]


class Interner(Generic[ValueT]):
    """Append-only value <-> id table (first occurrence assigns the id)."""

    __slots__ = ("_values", "_ids")

    def __init__(self) -> None:
        self._values: List[ValueT] = []
        self._ids: Dict[ValueT, int] = {}

    def __len__(self) -> int:
        return len(self._values)

    def intern(self, value: ValueT) -> int:
        """The value's id, assigning the next free id on first sight."""
        existing = self._ids.get(value)
        if existing is not None:
            return existing
        next_id = len(self._values)
        self._values.append(value)
        self._ids[value] = next_id
        return next_id

    def value(self, value_id: int) -> ValueT:
        """The value behind one id (raises IndexError for unknown ids)."""
        return self._values[value_id]

    def values(self) -> Tuple[ValueT, ...]:
        """All interned values, id order (index == id)."""
        return tuple(self._values)

    def decode(self, value_ids: Sequence[int]) -> List[ValueT]:
        """Decode a whole id column back into values (one list pass)."""
        values = self._values
        return [values[value_id] for value_id in value_ids]


class StringInterner(Interner[str]):
    """Interner for plain strings; serializes as a JSON string list."""

    def to_json(self) -> List[str]:
        """The table as a JSON-ready list (index == id)."""
        return list(self._values)

    @classmethod
    def from_json(cls, values: Sequence[str]) -> "StringInterner":
        """Rebuild a table from :meth:`to_json` output."""
        table = cls()
        for value in values:
            table.intern(str(value))
        return table


class TupleInterner(Interner[Tuple[str, ...]]):
    """Interner for string tuples; serializes as a JSON list of lists."""

    def to_json(self) -> List[List[str]]:
        """The table as a JSON-ready list of lists (index == id)."""
        return [list(value) for value in self._values]

    @classmethod
    def from_json(cls, values: Sequence[Sequence[str]]) -> "TupleInterner":
        """Rebuild a table from :meth:`to_json` output."""
        table = cls()
        for value in values:
            table.intern(tuple(str(part) for part in value))
        return table
