"""The append-only columnar snapshot store.

:class:`ColumnarStore` is the engine behind
:class:`repro.crawler.database.SnapshotDatabase`: snapshots live in
per-(store, day) chunks sorted by app id, comments and APK index entries
in per-store insertion-ordered logs, and every string routes through
four intern tables.  All query helpers work directly on column arrays --
the façade only materializes dataclasses at its own edge.

Design invariants:

- **Append-only with overwrite-by-key semantics**: re-crawling a
  (store, day, app) replaces the row at seal time (stable last-write
  selection), never in place.
- **Zero-copy reads**: sealed columns are frozen; queries return views.
- **Exactness**: :meth:`fingerprint` reproduces the legacy JSON-per-row
  SHA-256 byte for byte, which is what lets the chaos suite compare a
  packed, mmap-backed dataset against an in-memory crawl.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.devtools.flow import pure
from repro.obs.metrics import get_registry
from repro.store.chunks import ApkLog, CommentLog, SnapshotChunk
from repro.store.dictionary import StringInterner, TupleInterner
from repro.store.schema import SNAPSHOT_COLUMNS

__all__ = [
    "ColumnarStore",
    "DownloadMatrix",
    "align_download_deltas",
    "grouped_update_counts",
]


@pure
def align_download_deltas(
    end_ids: np.ndarray,
    end_downloads: np.ndarray,
    start_ids: np.ndarray,
    start_downloads: np.ndarray,
) -> np.ndarray:
    """Download growth per end-day app, aligned against the start day.

    Apps absent on the start day count from zero.  A pure kernel: it
    copies ``end_downloads`` once and only mutates that copy.
    """
    deltas = end_downloads.astype(np.int64, copy=True)
    if start_ids.size:
        positions = np.searchsorted(start_ids, end_ids)
        positions = np.minimum(positions, start_ids.size - 1)
        found = start_ids[positions] == end_ids
        deltas -= np.where(found, start_downloads[positions], 0)
    return deltas


@pure
def grouped_update_counts(
    app_ids: np.ndarray, version_ids: np.ndarray, n_versions: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(app_ids, distinct-version counts minus one) in one grouped pass.

    Pair-encodes ``(app, version)`` so a single ``np.unique`` groups
    both dimensions; never negative, matching the legacy semantics.
    """
    pairs = app_ids * np.int64(n_versions) + version_ids
    unique_apps, version_counts = np.unique(
        np.unique(pairs) // np.int64(n_versions), return_counts=True
    )
    return unique_apps, np.maximum(version_counts - 1, 0)


class DownloadMatrix:
    """Dense days x apps download matrix of one store.

    ``matrix[i, j]`` is the total download count of app ``app_ids[j]``
    on crawl day ``days[i]``; ``present[i, j]`` records whether the app
    was actually observed that day (absent cells hold 0 downloads).
    """

    __slots__ = ("store", "days", "app_ids", "matrix", "present")

    def __init__(
        self,
        store: str,
        days: Tuple[int, ...],
        app_ids: np.ndarray,
        matrix: np.ndarray,
        present: np.ndarray,
    ) -> None:
        self.store = store
        self.days = days
        self.app_ids = app_ids
        self.matrix = matrix
        self.present = present


class ColumnarStore:
    """Columnar chunks + intern tables + per-store logs."""

    def __init__(self) -> None:
        self.names = StringInterner()
        self.categories = StringInterner()
        self.versions = StringInterner()
        self.packages = StringInterner()
        self.libsets = TupleInterner()
        self._chunks: Dict[Tuple[str, int], SnapshotChunk] = {}
        self._buffers: Dict[Tuple[str, int], Dict[str, List]] = {}
        self._comments: Dict[str, CommentLog] = {}
        self._apks: Dict[str, ApkLog] = {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def add_snapshot_row(
        self,
        store: str,
        day: int,
        app_id: int,
        name: str,
        category: str,
        developer_id: int,
        price: float,
        declares_ads: bool,
        total_downloads: int,
        rating_count: int,
        average_rating: float,
        comment_count: int,
        version_name: str,
    ) -> None:
        """Buffer one (store, day, app) observation."""
        buffers = self._buffers.get((store, day))
        if buffers is None:
            buffers = {column: [] for column in SNAPSHOT_COLUMNS}
            self._buffers[(store, day)] = buffers
        buffers["app_id"].append(app_id)
        buffers["name_id"].append(self.names.intern(name))
        buffers["category_id"].append(self.categories.intern(category))
        buffers["developer_id"].append(developer_id)
        buffers["price"].append(price)
        buffers["declares_ads"].append(declares_ads)
        buffers["total_downloads"].append(total_downloads)
        buffers["rating_count"].append(rating_count)
        buffers["average_rating"].append(average_rating)
        buffers["comment_count"].append(comment_count)
        buffers["version_id"].append(self.versions.intern(version_name))
        get_registry().counter("store.rows_ingested.snapshots").add(1)

    def extend_snapshots(
        self, store: str, day: int, columns: Dict[str, np.ndarray]
    ) -> None:
        """Bulk-buffer one day of snapshot rows from column arrays.

        The fast ingest path: callers provide already-encoded columns
        (``name_id``/``category_id``/``version_id`` ids from this
        store's intern tables) and pay no per-row Python cost.
        """
        missing = [name for name in SNAPSHOT_COLUMNS if name not in columns]
        if missing:
            raise KeyError(f"missing snapshot columns: {missing}")
        buffers = self._buffers.get((store, day))
        if buffers is None:
            buffers = {column: [] for column in SNAPSHOT_COLUMNS}
            self._buffers[(store, day)] = buffers
        n_rows = int(np.asarray(columns["app_id"]).size)
        for name in SNAPSHOT_COLUMNS:
            buffers[name].extend(np.asarray(columns[name]).tolist())
        get_registry().counter("store.rows_ingested.snapshots").add(n_rows)

    def add_comment_row(
        self, store: str, user_id: int, app_id: int, day: int, rating: int
    ) -> bool:
        """Append one comment; False when the identity key was seen."""
        log = self._comments.get(store)
        if log is None:
            log = CommentLog(store)
            self._comments[store] = log
        added = log.add(user_id, app_id, day, rating)
        if added:
            get_registry().counter("store.rows_ingested.comments").add(1)
        return added

    def add_apk_row(
        self,
        store: str,
        app_id: int,
        version_name: str,
        package_name: str,
        size_mb: float,
        embedded_libraries: Tuple[str, ...],
    ) -> bool:
        """Archive one APK version; False when already archived."""
        log = self._apks.get(store)
        if log is None:
            log = ApkLog(store)
            self._apks[store] = log
        added = log.add(
            app_id,
            self.versions.intern(version_name),
            self.packages.intern(package_name),
            size_mb,
            self.libsets.intern(tuple(embedded_libraries)),
        )
        if added:
            get_registry().counter("store.rows_ingested.apks").add(1)
        return added

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------

    def seal_chunk(self, store: str, day: int) -> None:
        """Seal (or merge) the append buffer of one (store, day)."""
        buffers = self._buffers.pop((store, day), None)
        if buffers is None:
            return
        existing = self._chunks.get((store, day))
        if existing is None:
            self._chunks[(store, day)] = SnapshotChunk.seal(store, day, buffers)
        else:
            self._chunks[(store, day)] = existing.merge_with(buffers)

    def seal(self) -> None:
        """Seal every dirty snapshot buffer."""
        for store, day in sorted(self._buffers):
            self.seal_chunk(store, day)

    def _register_chunk(self, chunk: SnapshotChunk) -> None:
        """Attach an already-sealed (typically disk-backed) chunk."""
        self._chunks[(chunk.store, chunk.day)] = chunk

    def _register_comment_log(self, log: CommentLog) -> None:
        self._comments[log.store] = log

    def _register_apk_log(self, log: ApkLog) -> None:
        self._apks[log.store] = log

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    def stores(self) -> List[str]:
        """Store names with any snapshots, comments, or APKs."""
        present = {key[0] for key in self._chunks}
        present.update(key[0] for key in self._buffers)
        present.update(self._comments)
        present.update(self._apks)
        return sorted(present)

    def snapshot_stores(self) -> List[str]:
        """Store names present in the snapshot chunks (legacy contract)."""
        present = {key[0] for key in self._chunks}
        present.update(key[0] for key in self._buffers)
        return sorted(present)

    def days(self, store: str) -> List[int]:
        """Crawled days of one store, ascending."""
        present = {day for (s, day) in self._chunks if s == store}
        present.update(day for (s, day) in self._buffers if s == store)
        return sorted(present)

    def has_chunk(self, store: str, day: int) -> bool:
        """Whether any snapshot rows exist for (store, day)."""
        return (store, day) in self._chunks or (store, day) in self._buffers

    def chunk(self, store: str, day: int) -> Optional[SnapshotChunk]:
        """The sealed chunk of (store, day), sealing buffers on demand."""
        if (store, day) in self._buffers:
            self.seal_chunk(store, day)
        return self._chunks.get((store, day))

    def chunks(self, store: Optional[str] = None) -> Iterator[SnapshotChunk]:
        """Sealed chunks in (store, day) order, sealing dirty buffers."""
        self.seal()
        for key in sorted(self._chunks):
            if store is None or key[0] == store:
                yield self._chunks[key]

    def app_ids(self, store: str) -> np.ndarray:
        """Every app id ever observed in a store, sorted, as int64."""
        arrays = [chunk.app_ids() for chunk in self.chunks(store)]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(arrays))

    def n_snapshot_rows(self, store: Optional[str] = None) -> int:
        """Total sealed + buffered snapshot rows (before de-duplication)."""
        self.seal()
        return sum(
            chunk.n_rows
            for key, chunk in sorted(self._chunks.items())
            if store is None or key[0] == store
        )

    def comment_log(self, store: str) -> Optional[CommentLog]:
        """The comment log of one store, if any."""
        return self._comments.get(store)

    def apk_log(self, store: str) -> Optional[ApkLog]:
        """The APK log of one store, if any."""
        return self._apks.get(store)

    def comment_stores(self) -> List[str]:
        """Stores holding comments, sorted."""
        return sorted(self._comments)

    def apk_stores(self) -> List[str]:
        """Stores holding APK entries, sorted."""
        return sorted(self._apks)

    # ------------------------------------------------------------------
    # Vectorized queries
    # ------------------------------------------------------------------

    def download_vector(self, store: str, day: int) -> np.ndarray:
        """Per-app downloads on one day, app-id order, zero-copy."""
        chunk = self.chunk(store, day)
        if chunk is None or chunk.n_rows == 0:
            raise KeyError(f"no snapshots for store {store!r} on day {day}")
        return chunk.column("total_downloads")

    def download_matrix(self, store: str) -> DownloadMatrix:
        """The dense days x apps download matrix of one store."""
        chunk_list = list(self.chunks(store))
        if not chunk_list:
            raise KeyError(f"no snapshots for store {store!r}")
        app_ids = np.unique(
            np.concatenate([chunk.app_ids() for chunk in chunk_list])
        )
        days = tuple(chunk.day for chunk in chunk_list)
        matrix = np.zeros((len(chunk_list), app_ids.size), dtype=np.int64)
        present = np.zeros((len(chunk_list), app_ids.size), dtype=np.bool_)
        for row, chunk in enumerate(chunk_list):
            positions = np.searchsorted(app_ids, chunk.app_ids())
            matrix[row, positions] = chunk.column("total_downloads")
            present[row, positions] = True
        return DownloadMatrix(store, days, app_ids, matrix, present)

    def download_deltas_arrays(
        self, store: str, first_day: int, last_day: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(app_ids, deltas) of download growth between two crawled days.

        Apps absent on ``first_day`` are counted from zero, matching the
        legacy dict query.  Ordered by app id.
        """
        end = self.chunk(store, last_day)
        if end is None or end.n_rows == 0:
            raise KeyError(f"no snapshots for store {store!r} on day {last_day}")
        end_ids = end.app_ids()
        start = self.chunk(store, first_day)
        if start is not None and start.n_rows:
            start_ids = start.app_ids()
            start_downloads = start.column("total_downloads")
        else:
            start_ids = np.empty(0, dtype=np.int64)
            start_downloads = np.empty(0, dtype=np.int64)
        deltas = align_download_deltas(
            end_ids, end.column("total_downloads"), start_ids, start_downloads
        )
        return end_ids, deltas

    def update_counts_arrays(
        self, store: str, first_day: int, last_day: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(app_ids, update counts) over a window, one grouped pass.

        Counts distinct version strings per app across every crawled day
        in ``[first_day, last_day]`` minus one, never negative -- the
        legacy semantics, without the O(days x total-rows) rescan.
        """
        id_parts: List[np.ndarray] = []
        version_parts: List[np.ndarray] = []
        for chunk in self.chunks(store):
            if first_day <= chunk.day <= last_day:
                id_parts.append(chunk.app_ids())
                version_parts.append(chunk.column("version_id"))
        if not id_parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        app_ids = np.concatenate(id_parts)
        version_ids = np.concatenate(version_parts).astype(np.int64)
        return grouped_update_counts(
            app_ids, version_ids, max(len(self.versions), 1)
        )

    # ------------------------------------------------------------------
    # Fingerprint
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Order-independent SHA-256, byte-identical to the legacy DB.

        Streams rows straight out of the columns in the legacy sort
        order -- snapshots by (store, day, app_id), comments by store
        then (user, app, day, rating), APKs by (store, app_id,
        version_name) -- and feeds the digest the exact JSON encoding
        the flat-dict implementation used.
        """
        digest = hashlib.sha256()
        for record in self.iter_fingerprint_records():
            digest.update(json.dumps(record, sort_keys=True).encode("utf-8"))
        return digest.hexdigest()

    def iter_fingerprint_records(self) -> Iterator[dict]:
        """The fingerprint's record stream (also reused by JSONL export)."""
        names = self.names.values()
        categories = self.categories.values()
        versions = self.versions.values()
        packages = self.packages.values()
        libsets = self.libsets.values()
        for chunk in self.chunks():
            columns = {
                name: chunk.column(name).tolist() for name in SNAPSHOT_COLUMNS
            }
            for (
                app_id,
                name_id,
                category_id,
                developer_id,
                price,
                declares_ads,
                total_downloads,
                rating_count,
                average_rating,
                comment_count,
                version_id,
            ) in zip(*(columns[name] for name in SNAPSHOT_COLUMNS)):
                yield {
                    "kind": "snapshot",
                    "store": chunk.store,
                    "day": chunk.day,
                    "app_id": app_id,
                    "name": names[name_id],
                    "category": categories[category_id],
                    "developer_id": developer_id,
                    "price": price,
                    "declares_ads": declares_ads,
                    "total_downloads": total_downloads,
                    "rating_count": rating_count,
                    "average_rating": average_rating,
                    "comment_count": comment_count,
                    "version_name": versions[version_id],
                }
        for store in self.comment_stores():
            columns = self._comments[store].arrays()
            rows = np.lexsort(
                (
                    columns["rating"],
                    columns["day"],
                    columns["app_id"],
                    columns["user_id"],
                )
            )
            for user_id, app_id, day, rating in zip(
                columns["user_id"][rows].tolist(),
                columns["app_id"][rows].tolist(),
                columns["day"][rows].tolist(),
                columns["rating"][rows].tolist(),
            ):
                yield {
                    "kind": "comment",
                    "store": store,
                    "user_id": user_id,
                    "app_id": app_id,
                    "day": day,
                    "rating": rating,
                }
        for store in self.apk_stores():
            columns = self._apks[store].arrays()
            app_column = columns["app_id"].tolist()
            version_column = columns["version_id"].tolist()
            # Legacy order: sorted (store, app_id, version_name) keys.
            rows = sorted(
                range(len(app_column)),
                key=lambda row: (app_column[row], versions[version_column[row]]),
            )
            for app_id, version_id, package_id, size_mb, libset_id in zip(
                columns["app_id"][rows].tolist(),
                columns["version_id"][rows].tolist(),
                columns["package_id"][rows].tolist(),
                columns["size_mb"][rows].tolist(),
                columns["libset_id"][rows].tolist(),
            ):
                yield {
                    "kind": "apk",
                    "store": store,
                    "app_id": app_id,
                    "version_name": versions[version_id],
                    "package_name": packages[package_id],
                    "size_mb": size_mb,
                    "embedded_libraries": list(libsets[libset_id]),
                }
