"""Append buffers and sealed chunks: the store's write and read units.

Writes accumulate in plain-list **append buffers** (one Python append per
row is the price of a row-at-a-time crawler API; everything downstream
is arrays).  A buffer **seals** into an immutable chunk: columns become
numpy arrays, snapshot rows are stable-sorted by ``app_id`` with
last-write-wins de-duplication (re-crawls overwrite), and the arrays are
frozen (``writeable = False``) so query paths can hand them out
zero-copy.

Chunks read back from a packed dataset carry a *loader* instead of
materialized arrays; each column is ``np.load``-ed with ``mmap_mode="r"``
the first time something touches it, which is what keeps a paper-scale
dataset's resident set tiny (see :mod:`repro.store.disk`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import get_registry
from repro.store.schema import (
    APK_COLUMNS,
    COMMENT_COLUMNS,
    SNAPSHOT_COLUMNS,
)

__all__ = [
    "ApkLog",
    "AppendLog",
    "CommentLog",
    "SnapshotChunk",
    "seal_columns",
]

#: ``column(...)`` loader signature for disk-backed chunks.
ColumnLoader = Callable[[str], np.ndarray]


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark an array immutable so views can be shared zero-copy."""
    if array.flags.writeable:
        array.flags.writeable = False
    return array


def seal_columns(
    buffers: Dict[str, List], schema: Dict[str, np.dtype]
) -> Dict[str, np.ndarray]:
    """Convert per-column append lists into frozen arrays."""
    return {
        name: _freeze(np.asarray(buffers[name], dtype=dtype))
        for name, dtype in schema.items()
    }


def _last_write_order(app_ids: np.ndarray) -> np.ndarray:
    """Row selection that sorts by app id, keeping only the last write.

    The stable sort preserves insertion order within one app id, so the
    final row of each run is the most recent write -- the same semantics
    as the legacy ``dict[(store, day, app_id)]`` overwrite.
    """
    order = np.argsort(app_ids, kind="stable")
    sorted_ids = app_ids[order]
    keep = np.empty(sorted_ids.size, dtype=np.bool_)
    if keep.size:
        keep[:-1] = sorted_ids[1:] != sorted_ids[:-1]
        keep[-1] = True
    return order[keep]


class SnapshotChunk:
    """One immutable (store, day) slice of snapshot columns.

    Rows are sorted by ``app_id`` and unique per app.  ``source`` is
    ``"memory"`` for chunks sealed in-process and ``"mmap"`` for chunks
    opened from a packed dataset; every column access bumps the matching
    ``store.column_reads.*`` counter so a run can report how much of it
    streamed from disk.
    """

    __slots__ = ("store", "day", "n_rows", "source", "_columns", "_loader")

    def __init__(
        self,
        store: str,
        day: int,
        n_rows: int,
        columns: Optional[Dict[str, np.ndarray]] = None,
        loader: Optional[ColumnLoader] = None,
        source: str = "memory",
    ) -> None:
        if columns is None and loader is None:
            raise ValueError("chunk needs columns or a loader")
        self.store = store
        self.day = day
        self.n_rows = n_rows
        self.source = source
        self._columns: Dict[str, np.ndarray] = dict(columns or {})
        self._loader = loader

    @classmethod
    def seal(
        cls, store: str, day: int, buffers: Dict[str, List]
    ) -> "SnapshotChunk":
        """Seal one append buffer into a sorted, de-duplicated chunk."""
        raw = seal_columns(buffers, SNAPSHOT_COLUMNS)
        rows = _last_write_order(raw["app_id"])
        columns = {
            name: _freeze(np.ascontiguousarray(array[rows]))
            for name, array in raw.items()
        }
        get_registry().counter("store.chunks_sealed").add(1)
        return cls(store, day, int(rows.size), columns=columns)

    def merge_with(self, buffers: Dict[str, List]) -> "SnapshotChunk":
        """A new chunk with this chunk's rows plus later buffered writes.

        Buffer rows are appended *after* the existing rows, so the
        stable last-write-wins selection lets them overwrite.
        """
        raw = seal_columns(buffers, SNAPSHOT_COLUMNS)
        merged = {
            name: np.concatenate([self.column(name), raw[name]])
            for name in SNAPSHOT_COLUMNS
        }
        rows = _last_write_order(merged["app_id"])
        columns = {
            name: _freeze(np.ascontiguousarray(array[rows]))
            for name, array in merged.items()
        }
        registry = get_registry()
        registry.counter("store.chunks_sealed").add(1)
        registry.counter("store.chunk_merges").add(1)
        return SnapshotChunk(self.store, self.day, int(rows.size), columns=columns)

    def column(self, name: str) -> np.ndarray:
        """One frozen column array (mmap-loaded on first touch)."""
        array = self._columns.get(name)
        if array is None:
            if self._loader is None:
                raise KeyError(name)
            array = _freeze(self._loader(name))
            self._columns[name] = array
        get_registry().counter(f"store.column_reads.{self.source}").add(1)
        return array

    def app_ids(self) -> np.ndarray:
        """The sorted app-id column."""
        return self.column("app_id")

    def row_index(self, app_id: int) -> Optional[int]:
        """Row position of one app, or None when absent (binary search)."""
        app_ids = self.app_ids()
        position = int(np.searchsorted(app_ids, app_id))
        if position < app_ids.size and int(app_ids[position]) == app_id:
            return position
        return None


class AppendLog:
    """Insertion-ordered columnar log (base for comments and APKs).

    Sealed segments plus one active append buffer; ``arrays()`` seals the
    buffer and concatenates segments (cached until the next append).  A
    disk-backed log starts from a lazily mmap-loaded base segment.
    """

    schema: Dict[str, np.dtype] = {}

    def __init__(
        self,
        store: str,
        n_base_rows: int = 0,
        loader: Optional[ColumnLoader] = None,
        source: str = "memory",
    ) -> None:
        self.store = store
        self.source = source if loader is not None else "memory"
        self._loader = loader
        self._base_rows = n_base_rows if loader is not None else 0
        self._segments: List[Dict[str, np.ndarray]] = []
        self._sealed_rows = 0
        self._buffers: Dict[str, List] = {name: [] for name in self.schema}
        self._buffered = 0
        self._cache: Optional[Dict[str, np.ndarray]] = None

    def __len__(self) -> int:
        return self._base_rows + self._sealed_rows + self._buffered

    def append_row(self, values: Tuple) -> None:
        """Append one row given in schema column order."""
        for name, value in zip(self.schema, values):
            self._buffers[name].append(value)
        self._buffered += 1
        self._cache = None

    def _load_base(self) -> Optional[Dict[str, np.ndarray]]:
        if self._loader is None:
            return None
        columns = {
            name: _freeze(self._loader(name)) for name in self.schema
        }
        get_registry().counter(f"store.column_reads.{self.source}").add(
            len(columns)
        )
        return columns

    def arrays(self) -> Dict[str, np.ndarray]:
        """All rows as one frozen array per column, insertion order."""
        if self._cache is not None:
            get_registry().counter("store.column_reads.memory").add(1)
            return self._cache
        if self._buffered:
            self._segments.append(seal_columns(self._buffers, self.schema))
            self._sealed_rows += self._buffered
            self._buffers = {name: [] for name in self.schema}
            self._buffered = 0
            get_registry().counter("store.chunks_sealed").add(1)
        base = self._load_base()
        if base is not None:
            self._loader = None
            self._segments.insert(0, base)
            self._sealed_rows += self._base_rows
            self._base_rows = 0
        if len(self._segments) == 1:
            self._cache = self._segments[0]
        else:
            self._cache = {
                name: _freeze(
                    np.concatenate([segment[name] for segment in self._segments])
                    if self._segments
                    else np.empty(0, dtype=dtype)
                )
                for name, dtype in self.schema.items()
            }
            self._segments = [self._cache]
        return self._cache


class CommentLog(AppendLog):
    """Per-store comment log with cross-crawl de-duplication."""

    schema = COMMENT_COLUMNS

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._seen: set = set()
        if self._loader is not None:
            # Disk-backed logs hydrate the dedupe set on first write,
            # not at open time (read-only workloads never pay for it).
            self._seen_hydrated = False
        else:
            self._seen_hydrated = True

    def _hydrate_seen(self) -> None:
        if self._seen_hydrated:
            return
        columns = self.arrays()
        self._seen.update(
            zip(
                columns["user_id"].tolist(),
                columns["app_id"].tolist(),
                columns["day"].tolist(),
                columns["rating"].tolist(),
            )
        )
        self._seen_hydrated = True

    def add(self, user_id: int, app_id: int, day: int, rating: int) -> bool:
        """Append one comment unless its identity key was already seen."""
        self._hydrate_seen()
        key = (user_id, app_id, day, rating)
        if key in self._seen:
            return False
        self._seen.add(key)
        self.append_row((user_id, app_id, day, rating))
        return True


class ApkLog(AppendLog):
    """Per-store APK archive with at-most-once versions and seq numbers."""

    schema = APK_COLUMNS

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._keys: set = set()
        self._next_seq = len(self)
        self._keys_hydrated = self._loader is None

    def _hydrate_keys(self) -> None:
        if self._keys_hydrated:
            return
        columns = self.arrays()
        self._keys.update(
            zip(columns["app_id"].tolist(), columns["version_id"].tolist())
        )
        self._next_seq = (
            int(columns["seq"].max()) + 1 if columns["seq"].size else 0
        )
        self._keys_hydrated = True

    def add(
        self,
        app_id: int,
        version_id: int,
        package_id: int,
        size_mb: float,
        libset_id: int,
    ) -> bool:
        """Archive one (app, version); False when already archived."""
        self._hydrate_keys()
        key = (app_id, version_id)
        if key in self._keys:
            return False
        self._keys.add(key)
        seq = self._next_seq
        self._next_seq += 1
        self.append_row((app_id, version_id, package_id, size_mb, libset_id, seq))
        return True
