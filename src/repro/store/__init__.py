"""Out-of-core columnar snapshot store.

Append-only columnar storage for crawl datasets: snapshots, comments,
and APK index entries live in numpy columns with dictionary-encoded
strings, sealed into immutable per-(store, day) chunks, and persist to a
``.npy``-per-column directory layout that reads back zero-copy through
``np.load(mmap_mode="r")``.  :class:`repro.crawler.database.SnapshotDatabase`
is the dataclass façade over this engine; use that for row-shaped
access and this package for columns.
"""

from repro.store.chunks import ApkLog, AppendLog, CommentLog, SnapshotChunk
from repro.store.columnar import ColumnarStore, DownloadMatrix
from repro.store.dictionary import Interner, StringInterner, TupleInterner
from repro.store.disk import (
    bytes_on_disk,
    is_packed_dataset,
    open_store,
    pack_store,
)
from repro.store.schema import (
    APK_COLUMNS,
    COMMENT_COLUMNS,
    FORMAT_VERSION,
    SNAPSHOT_COLUMNS,
)

__all__ = [
    "APK_COLUMNS",
    "ApkLog",
    "AppendLog",
    "COMMENT_COLUMNS",
    "ColumnarStore",
    "CommentLog",
    "DownloadMatrix",
    "FORMAT_VERSION",
    "Interner",
    "SNAPSHOT_COLUMNS",
    "SnapshotChunk",
    "StringInterner",
    "TupleInterner",
    "bytes_on_disk",
    "is_packed_dataset",
    "open_store",
    "pack_store",
]
