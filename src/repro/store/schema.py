"""Column schemas of the three record kinds the snapshot store holds.

One source of truth for column names, dtypes, and on-disk file names:
the append buffers allocate from it, the disk layout writes one
``<column>.npy`` per entry, and the mmap reader checks it when opening a
packed dataset.  String-valued fields appear here as ``*_id`` integer
columns; the actual strings live in the intern tables
(:mod:`repro.store.dictionary`).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = [
    "APK_COLUMNS",
    "COMMENT_COLUMNS",
    "FORMAT_VERSION",
    "SNAPSHOT_COLUMNS",
    "empty_columns",
]

#: On-disk format tag written into ``manifest.json``.
FORMAT_VERSION = "repro-columnar/1"

#: Snapshot chunk columns, keyed by (store, day); rows sorted by app_id.
SNAPSHOT_COLUMNS: Dict[str, np.dtype] = {
    "app_id": np.dtype(np.int64),
    "name_id": np.dtype(np.int32),
    "category_id": np.dtype(np.int32),
    "developer_id": np.dtype(np.int64),
    "price": np.dtype(np.float64),
    "declares_ads": np.dtype(np.bool_),
    "total_downloads": np.dtype(np.int64),
    "rating_count": np.dtype(np.int64),
    "average_rating": np.dtype(np.float64),
    "comment_count": np.dtype(np.int64),
    "version_id": np.dtype(np.int32),
}

#: Comment log columns, keyed by store; rows kept in insertion order.
COMMENT_COLUMNS: Dict[str, np.dtype] = {
    "user_id": np.dtype(np.int64),
    "app_id": np.dtype(np.int64),
    "day": np.dtype(np.int64),
    "rating": np.dtype(np.int64),
}

#: APK archive columns, keyed by store; ``seq`` is the archive sequence
#: number that defines "latest" independent of any sort order.
APK_COLUMNS: Dict[str, np.dtype] = {
    "app_id": np.dtype(np.int64),
    "version_id": np.dtype(np.int32),
    "package_id": np.dtype(np.int32),
    "size_mb": np.dtype(np.float64),
    "libset_id": np.dtype(np.int32),
    "seq": np.dtype(np.int64),
}


def empty_columns(schema: Dict[str, np.dtype]) -> Dict[str, np.ndarray]:
    """Zero-row column arrays for one schema (shared empty-chunk shape)."""
    return {name: np.empty(0, dtype=dtype) for name, dtype in schema.items()}
