"""Seeded fault plans: deterministic chaos on the simulated clock.

A :class:`FaultPlan` is a fixed schedule of failures -- proxy deaths,
transient store errors, corrupt snapshot pages, worker crashes, clock
skew -- pinned to simulated-clock timestamps.  Plans are generated from
one seed through the :mod:`repro.stats.rng` seed-threading contract, so
a chaos run is exactly replayable: the same seed produces the same
schedule, the same injection order, and therefore the same failure
trace.

The :class:`FaultInjector` is the runtime half: integration points
(the store web API, the crawl engine) poll it with their current clock
and consume the faults that have come due.  Every consumed fault is
recorded in an ordered trace, which is what chaos tests diff run
against run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import get_registry
from repro.resilience.errors import TransientFault
from repro.stats.rng import derive_seed, make_rng


class FaultKind(str, enum.Enum):
    """The failure modes the injector can schedule."""

    PROXY_DEATH = "proxy-death"
    TRANSIENT_ERROR = "transient-error"
    CORRUPT_SNAPSHOT = "corrupt-snapshot"
    WORKER_CRASH = "worker-crash"
    CLOCK_SKEW = "clock-skew"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    Attributes
    ----------
    at:
        Simulated-clock time at which the fault becomes due.
    kind:
        The failure mode.
    magnitude:
        Kind-specific size (clock-skew seconds; unused otherwise).
    """

    at: float
    kind: FaultKind
    magnitude: float = 0.0


#: Fault densities per named plan, in events per 100 simulated seconds.
#: ``WORKER_CRASH`` is a per-campaign absolute count, not a density: a
#: crash costs a whole-day restart, so it must not scale with horizon.
PLAN_DENSITIES: Dict[str, Dict[FaultKind, float]] = {
    "none": {},
    "mild": {
        FaultKind.TRANSIENT_ERROR: 2.0,
        FaultKind.PROXY_DEATH: 0.3,
        FaultKind.CORRUPT_SNAPSHOT: 0.5,
    },
    "aggressive": {
        FaultKind.TRANSIENT_ERROR: 8.0,
        FaultKind.PROXY_DEATH: 1.0,
        FaultKind.CORRUPT_SNAPSHOT: 3.0,
        FaultKind.CLOCK_SKEW: 1.0,
        FaultKind.WORKER_CRASH: 2.0,
    },
}

_SKEW_RANGE = (1.0, 20.0)
_MAX_WORKER_CRASHES = 3


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, replayable schedule of faults.

    ``events`` is sorted by due time (ties broken by kind value) so the
    injection order is a pure function of the plan, never of consumer
    polling patterns.
    """

    name: str
    seed: int
    horizon: float
    events: Tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at, e.kind.value, e.magnitude))
        )
        object.__setattr__(self, "events", ordered)

    @classmethod
    def generate(
        cls,
        name: str,
        seed: int,
        horizon: float,
        densities: Mapping[FaultKind, float],
        crashes: int = 0,
    ) -> "FaultPlan":
        """Sample a schedule: ``densities`` are events per 100 seconds."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = make_rng(derive_seed(int(seed), "fault-plan", name))
        events: List[FaultEvent] = []
        # Enum definition order fixes the sampling order, which fixes the
        # schedule for a given seed regardless of the mapping's insertion
        # order.
        for kind in FaultKind:
            density = float(densities.get(kind, 0.0))
            if kind is FaultKind.WORKER_CRASH:
                count = int(crashes)
            else:
                count = int(round(density * horizon / 100.0))
            if count < 1:
                continue
            times = rng.random(count) * horizon
            if kind is FaultKind.CLOCK_SKEW:
                low, high = _SKEW_RANGE
                magnitudes = low + rng.random(count) * (high - low)
            else:
                magnitudes = [0.0] * count
            events.extend(
                FaultEvent(at=float(t), kind=kind, magnitude=float(m))
                for t, m in zip(times, magnitudes)
            )
        return cls(name=name, seed=int(seed), horizon=float(horizon), events=tuple(events))

    def counts(self) -> Dict[FaultKind, int]:
        """Scheduled events per kind (zero-count kinds included)."""
        totals = {kind: 0 for kind in FaultKind}
        for event in self.events:
            totals[event.kind] += 1
        return totals


def named_plan(name: str, seed: int, horizon: float) -> FaultPlan:
    """Build one of the preset plans (``none``, ``mild``, ``aggressive``)."""
    try:
        densities = PLAN_DENSITIES[name]
    except KeyError:
        known = ", ".join(sorted(PLAN_DENSITIES))
        raise ValueError(f"unknown fault plan {name!r} (known: {known})") from None
    crash_density = densities.get(FaultKind.WORKER_CRASH, 0.0)
    crashes = min(_MAX_WORKER_CRASHES, int(round(crash_density))) if crash_density else 0
    return FaultPlan.generate(name, seed, horizon, densities, crashes=crashes)


@dataclass(frozen=True)
class FiredFault:
    """One fault that was actually injected, as recorded in the trace."""

    at: float
    fired_at: float
    kind: FaultKind
    detail: str

    def describe(self) -> str:
        """One deterministic trace line."""
        return (
            f"t={self.fired_at:10.3f} (due {self.at:10.3f}) "
            f"{self.kind.value:<16} {self.detail}"
        )


class FaultInjector:
    """Runtime consumer of a :class:`FaultPlan`.

    Integration points poll :meth:`take` / :meth:`take_all` with their
    current simulated clock; due events are consumed exactly once and
    appended to :attr:`trace` in consumption order.  The injector also
    owns a derived RNG for choices the plan leaves open (e.g. *which*
    proxy dies), so those choices replay from the plan seed too.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending: List[FaultEvent] = list(plan.events)
        self.rng = make_rng(derive_seed(plan.seed, "fault-injector", plan.name))
        self.trace: List[FiredFault] = []

    @property
    def pending(self) -> Tuple[FaultEvent, ...]:
        """Events not yet consumed, in due order."""
        return tuple(self._pending)

    def take(
        self, now: float, kind: FaultKind, detail: str = ""
    ) -> Optional[FaultEvent]:
        """Consume at most one due event of ``kind``; records it if taken."""
        for index, event in enumerate(self._pending):
            if event.at > now:
                break
            if event.kind is kind:
                del self._pending[index]
                self.record(event, now, detail)
                return event
        return None

    def take_all(self, now: float, kind: FaultKind) -> List[FaultEvent]:
        """Consume every due event of ``kind`` (recording is the caller's
        job, since the detail depends on how the fault is applied)."""
        due = [e for e in self._pending if e.at <= now and e.kind is kind]
        if due:
            taken = set(map(id, due))
            self._pending = [e for e in self._pending if id(e) not in taken]
        return due

    def record(self, event: FaultEvent, now: float, detail: str) -> None:
        """Append one consumed event to the trace."""
        self.trace.append(
            FiredFault(at=event.at, fired_at=now, kind=event.kind, detail=detail)
        )
        get_registry().counter(f"faults.injected.{event.kind.value}").add(1)

    def maybe_raise_transient(self, now: float, where: str) -> None:
        """Raise :class:`TransientFault` when a transient error is due."""
        for index, event in enumerate(self._pending):
            if event.at > now:
                break
            if event.kind is FaultKind.TRANSIENT_ERROR:
                del self._pending[index]
                self.record(event, now, f"transient error at {where}")
                raise TransientFault(
                    f"injected transient error at {where} (due t={event.at:.3f})"
                )

    def fired_counts(self) -> Dict[FaultKind, int]:
        """Injected events per kind (zero-count kinds included)."""
        totals = {kind: 0 for kind in FaultKind}
        for fired in self.trace:
            totals[fired.kind] += 1
        return totals

    def trace_lines(self) -> List[str]:
        """The failure trace as deterministic text lines."""
        return [fired.describe() for fired in self.trace]
