"""Chaos runs: a crawl or replication executed under a fault plan.

This is the harness the resilience layer is proven with: run the exact
same campaign with and without a fault schedule and diff the resulting
datasets (they must match -- recovery means *nothing was lost*), or run
the same plan twice and diff the reports (they must be byte-identical --
chaos is replayable from one seed).

The :class:`ChaosReport` renders to deterministic text: every number in
it derives from seeds and the simulated clock, never from wall time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.marketplace.profiles import StoreProfile
from repro.resilience.faults import FaultKind, FaultPlan, named_plan

#: Worker-crash pressure per named plan for replication chaos runs:
#: (crash probability per seed, max consecutive crashes per seed).
REPLICATION_CRASH_PRESSURE: Dict[str, Tuple[float, int]] = {
    "none": (0.0, 1),
    "mild": (0.3, 1),
    "aggressive": (0.7, 2),
}

#: Crude per-app request cost of one crawl day: one statistics page,
#: usually one comment page, sometimes an APK fetch.
_REQUESTS_PER_APP_DAY = 3.0
#: Safety margin on the horizon estimate so late-crawl faults still land
#: inside the campaign.
_HORIZON_MARGIN = 1.25


def estimate_crawl_horizon(
    profile: StoreProfile, requests_per_second: float = 8.0, page_size: int = 50
) -> float:
    """Simulated seconds a crawl of ``profile`` is expected to take.

    Deterministic (a pure function of the profile), so a fault plan
    built from the estimate is itself replayable.
    """
    if requests_per_second <= 0:
        raise ValueError("requests_per_second must be positive")
    final_apps = profile.initial_apps + profile.new_apps_per_day * (
        profile.warmup_days + profile.crawl_days
    )
    per_day = 2.0 + final_apps / page_size + _REQUESTS_PER_APP_DAY * final_apps
    requests = per_day * profile.crawl_days
    return float(requests / requests_per_second * _HORIZON_MARGIN)


@dataclass(frozen=True)
class ChaosReport:
    """The recovery summary of one chaos crawl."""

    plan: FaultPlan
    store_name: str
    crawl_days: int
    scheduled: Dict[FaultKind, int]
    injected: Dict[FaultKind, int]
    trace: Tuple[str, ...]
    requests: int
    retries: int
    backoff_seconds: float
    transient_faults: int
    corrupt_pages: int
    proxy_failures: int
    rate_limit_hits: int
    breaker_skips: int
    worker_restarts: int
    proxies_alive: int
    proxies_total: int
    final_clock: float
    dataset_apps: int
    dataset_downloads: int
    dataset_fingerprint: str

    def render(self, include_trace: bool = True) -> str:
        """The report as deterministic text (byte-identical per seed)."""
        lines = [
            f"chaos run: plan {self.plan.name!r}, seed {self.plan.seed}, "
            f"horizon {self.plan.horizon:.3f}s",
            f"store {self.store_name!r}: {self.crawl_days} crawled days, "
            f"final crawler clock {self.final_clock:.3f}s",
            "faults scheduled: "
            + ", ".join(
                f"{kind.value} {self.scheduled[kind]}" for kind in FaultKind
            ),
            "faults injected:  "
            + ", ".join(
                f"{kind.value} {self.injected[kind]}" for kind in FaultKind
            ),
            f"recovery: {self.requests} requests, {self.retries} retries, "
            f"{self.backoff_seconds:.3f}s backoff",
            f"          {self.transient_faults} transient faults absorbed, "
            f"{self.corrupt_pages} corrupt pages re-fetched",
            f"          {self.proxy_failures} proxy failures, "
            f"{self.rate_limit_hits} rate-limit hits, "
            f"{self.breaker_skips} breaker fallbacks, "
            f"{self.worker_restarts} worker restarts",
            f"proxies: {self.proxies_alive}/{self.proxies_total} alive at end",
            f"dataset: {self.dataset_apps} apps, "
            f"{self.dataset_downloads} downloads on the last crawled day",
            f"dataset fingerprint: sha256:{self.dataset_fingerprint}",
        ]
        if include_trace:
            lines.append(f"failure trace ({len(self.trace)} events):")
            lines.extend(f"  {line}" for line in self.trace)
        return "\n".join(lines)


def run_chaos_crawl(
    profile: StoreProfile,
    plan_name: str = "aggressive",
    seed: int = 0,
    fetch_comments: bool = True,
    plan: Optional[FaultPlan] = None,
) -> ChaosReport:
    """Crawl a store under a named (or explicit) fault plan.

    The store, proxies, crawler jitter, and fault schedule all derive
    from ``seed``, so two runs with equal arguments produce equal
    reports down to the byte.
    """
    # Imported here: repro.crawler already depends on repro.resilience
    # for its primitives, so the runner imports lazily to keep the
    # package import graph acyclic.
    from repro.crawler.scheduler import run_crawl_campaign

    if plan is None:
        horizon = estimate_crawl_horizon(profile)
        plan = named_plan(plan_name, seed, horizon)
    campaign = run_crawl_campaign(
        profile, seed=seed, fault_plan=plan, fetch_comments=fetch_comments
    )
    injector = campaign.fault_injector
    assert injector is not None
    stats = campaign.crawler.stats
    pool = campaign.crawler.proxy_pool
    database = campaign.database
    store = campaign.store_name
    downloads = database.download_vector(store, campaign.last_crawl_day)
    return ChaosReport(
        plan=plan,
        store_name=store,
        crawl_days=len(campaign.crawled_days),
        scheduled=plan.counts(),
        injected=injector.fired_counts(),
        trace=tuple(injector.trace_lines()),
        requests=stats.requests,
        retries=stats.retries,
        backoff_seconds=stats.backoff_seconds,
        transient_faults=stats.transient_faults,
        corrupt_pages=stats.corrupt_pages,
        proxy_failures=stats.proxy_failures,
        rate_limit_hits=stats.rate_limit_hits,
        breaker_skips=stats.breaker_skips,
        worker_restarts=campaign.worker_restarts,
        proxies_alive=len(pool.alive_proxies()),
        proxies_total=pool.size,
        final_clock=campaign.crawler.clock,
        dataset_apps=int(downloads.size),
        dataset_downloads=int(downloads.sum()),
        dataset_fingerprint=database.fingerprint(),
    )


@dataclass(frozen=True)
class ReplicationChaosReport:
    """The recovery summary of one chaos replication sweep."""

    plan_name: str
    seed: int
    crash_probability: float
    max_crashes: int
    n_requested: int
    n_succeeded: int
    failed_seeds: Tuple[int, ...]
    crashed_seeds: Tuple[Tuple[int, int], ...]
    counts_fingerprint: str

    def render(self) -> str:
        """The report as deterministic text (byte-identical per seed)."""
        crashed = (
            ", ".join(f"{seed}x{n}" for seed, n in self.crashed_seeds) or "none"
        )
        failed = ", ".join(str(seed) for seed in self.failed_seeds) or "none"
        return "\n".join(
            [
                f"chaos replication: plan {self.plan_name!r}, seed {self.seed}, "
                f"crash probability {self.crash_probability:.2f} "
                f"(max {self.max_crashes} per seed)",
                f"replications: {self.n_succeeded}/{self.n_requested} succeeded",
                f"scheduled crashes (seed x count): {crashed}",
                f"degraded seeds: {failed}",
                f"counts fingerprint: sha256:{self.counts_fingerprint}",
            ]
        )


def run_chaos_replication(
    plan_name: str = "aggressive",
    seed: int = 0,
    n_replications: int = 8,
    max_seed_retries: int = 2,
    parallel: bool = True,
) -> ReplicationChaosReport:
    """Run a multi-seed replication sweep under injected worker crashes.

    The crash schedule, the replication seeds, and the workload itself
    all derive from ``seed``; the report is byte-identical run to run.
    """
    # Lazy import: repro.workload.replication depends on the resilience
    # error types, so the runner must not be imported from its module
    # scope (same cycle-avoidance as run_chaos_crawl).
    from repro.core.models import ModelKind
    from repro.workload.generators import WorkloadSpec
    from repro.workload.replication import (
        WorkerFaultPlan,
        replicate_counts,
        resolve_seeds,
    )

    try:
        crash_probability, max_crashes = REPLICATION_CRASH_PRESSURE[plan_name]
    except KeyError:
        known = ", ".join(sorted(REPLICATION_CRASH_PRESSURE))
        raise ValueError(
            f"unknown fault plan {plan_name!r} (known: {known})"
        ) from None
    spec = WorkloadSpec(
        kind=ModelKind.APP_CLUSTERING,
        n_apps=300,
        n_users=150,
        total_downloads=3000,
        zr=1.7,
        zc=1.4,
        p=0.9,
        n_clusters=15,
        seed=seed,
    )
    seeds = resolve_seeds(None, n_replications, base_seed=seed)
    fault_plan = WorkerFaultPlan.generate(
        seeds,
        seed=seed,
        crash_probability=crash_probability,
        max_crashes=max_crashes,
    )
    result = replicate_counts(
        spec,
        seeds=seeds,
        parallel=parallel,
        max_seed_retries=max_seed_retries,
        fault_plan=fault_plan,
    )
    digest = hashlib.sha256(result.counts.tobytes()).hexdigest()
    return ReplicationChaosReport(
        plan_name=plan_name,
        seed=int(seed),
        crash_probability=crash_probability,
        max_crashes=max_crashes,
        n_requested=len(seeds),
        n_succeeded=result.n_replications,
        failed_seeds=result.failed_seeds,
        crashed_seeds=fault_plan.crashes,
        counts_fingerprint=digest,
    )
