"""Composable retry policies: exponential backoff with bounded jitter.

The paper's crawlers ran for months against four flaky stores; the only
way that works is disciplined retrying -- back off exponentially so a
struggling store is not hammered, jitter the delays so concurrent
workers do not retry in lockstep, and cap the backoff so one bad request
cannot stall a crawl for hours.

Delays are *deterministic*: the jitter comes from a caller-supplied
:class:`numpy.random.Generator`, so a chaos run replays exactly from one
seed.  All times are simulated-clock seconds (see
``docs/architecture.md``, "The simulated clock").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.rng import SeedLike, make_rng


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included) before the caller gives up.
    base_delay:
        Backoff before the first retry, in simulated seconds.
    cap_delay:
        Upper bound on any single backoff delay.
    multiplier:
        Geometric growth factor between consecutive retries.
    jitter:
        Fraction of the un-jittered backoff added as random spread; the
        delay for retry ``k`` always stays within
        ``[backoff(k), cap_delay]``.
    """

    max_attempts: int = 5
    base_delay: float = 0.25
    cap_delay: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.cap_delay < self.base_delay:
            raise ValueError("cap_delay must be >= base_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, retry: int) -> float:
        """The un-jittered backoff before the ``retry``-th retry (0-based)."""
        if retry < 0:
            raise ValueError("retry must be non-negative")
        return float(min(self.cap_delay, self.base_delay * self.multiplier**retry))

    def delay(self, retry: int, rng: np.random.Generator) -> float:
        """The jittered backoff before the ``retry``-th retry.

        Guaranteed to lie in ``[self.backoff(retry), self.cap_delay]``;
        the spread is drawn from ``rng``, so equal seeds give equal
        delay sequences.
        """
        raw = self.backoff(retry)
        spread = self.jitter * raw * float(rng.random())
        return float(min(self.cap_delay, raw + spread))

    def delays(self, seed: SeedLike = None) -> list:
        """All backoff delays of one full retry cycle, for inspection."""
        rng = make_rng(seed)
        return [self.delay(retry, rng) for retry in range(self.max_attempts - 1)]
