"""Circuit breaker on the simulated clock.

When a proxy (or any dependency) fails repeatedly, retrying through it
wastes the request budget and simulated time.  The breaker trips after a
run of consecutive failures, short-circuits calls while OPEN, admits a
probe once the reset timeout elapses (HALF_OPEN), and closes again after
enough probe successes.

Like every other time-dependent component in this tree the breaker holds
no clock of its own: callers pass ``now`` (simulated seconds), which
keeps the state machine exactly replayable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry
from repro.resilience.errors import CircuitOpen


class BreakerState(str, enum.Enum):
    """The three canonical circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe phase.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker.
    reset_timeout:
        Simulated seconds the breaker stays OPEN before admitting probes.
    probe_successes:
        Probe successes required in HALF_OPEN to close the breaker; any
        probe failure re-opens it immediately.
    """

    failure_threshold: int = 3
    reset_timeout: float = 60.0
    probe_successes: int = 1
    _consecutive_failures: int = field(default=0, repr=False)
    _opened_at: float = field(default=float("-inf"), repr=False)
    _is_open: bool = field(default=False, repr=False)
    _probes_succeeded: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")

    @property
    def reopen_at(self) -> float:
        """Clock time at which an OPEN breaker starts admitting probes."""
        return self._opened_at + self.reset_timeout

    def state(self, now: float) -> BreakerState:
        """The breaker's state as of simulated time ``now``."""
        if not self._is_open:
            return BreakerState.CLOSED
        if now >= self.reopen_at:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at ``now`` (OPEN blocks, others admit)."""
        return self.state(now) is not BreakerState.OPEN

    def check(self, now: float) -> None:
        """Raise :class:`CircuitOpen` when a call must be short-circuited."""
        if not self.allow(now):
            raise CircuitOpen(retry_at=self.reopen_at)

    def record_success(self, now: float) -> None:
        """Register a successful call; may close a HALF_OPEN breaker."""
        if self.state(now) is BreakerState.HALF_OPEN:
            self._probes_succeeded += 1
            if self._probes_succeeded >= self.probe_successes:
                self._close()
        else:
            self._close()

    def record_failure(self, now: float) -> None:
        """Register a failed call; may trip (or re-open) the breaker."""
        if self.state(now) is BreakerState.HALF_OPEN:
            get_registry().counter("breaker.reopened").add(1)
            self._trip(now)
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            get_registry().counter("breaker.opened").add(1)
            self._trip(now)

    def _trip(self, now: float) -> None:
        self._is_open = True
        self._opened_at = now
        self._probes_succeeded = 0

    def _close(self) -> None:
        # State transitions are observable events: OPEN/HALF_OPEN ->
        # CLOSED is counted; a no-op close (already closed) is not.
        if self._is_open:
            get_registry().counter("breaker.closed").add(1)
        self._is_open = False
        self._consecutive_failures = 0
        self._probes_succeeded = 0
