"""Deterministic fault injection and recovery primitives.

The paper's dataset exists because four crawlers survived months of
flaky proxies, rate limits, geo-blocks, and broken pages.  This package
is the reproduction's robustness pillar: it makes those failures
*schedulable* -- a seeded :class:`~repro.resilience.faults.FaultPlan`
pins proxy deaths, transient errors, corrupt snapshots, worker crashes,
and clock skew to simulated-clock timestamps -- and provides the
recovery primitives (:class:`~repro.resilience.retry.RetryPolicy`,
:class:`~repro.resilience.breaker.CircuitBreaker`) the crawler and the
replication pool recover with.

Because both the faults and the recovery run on seeds and the simulated
clock, any chaos run replays exactly:

- the same fault seed reproduces the same failure trace, twice;
- a crawl under an aggressive plan recovers the *same* dataset (same
  :meth:`~repro.crawler.database.SnapshotDatabase.fingerprint`) as the
  fault-free crawl.

``repro chaos --plan aggressive --seed 7`` drives the whole loop from
the command line; :mod:`repro.resilience.chaos` is the library form.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.chaos import (
    ChaosReport,
    ReplicationChaosReport,
    estimate_crawl_horizon,
    run_chaos_crawl,
    run_chaos_replication,
)
from repro.resilience.errors import (
    CircuitOpen,
    InjectedFault,
    ResilienceError,
    SnapshotCorrupted,
    TransientFault,
    WorkerCrashed,
)
from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FiredFault,
    named_plan,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BreakerState",
    "ChaosReport",
    "CircuitBreaker",
    "CircuitOpen",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FiredFault",
    "InjectedFault",
    "ReplicationChaosReport",
    "ResilienceError",
    "RetryPolicy",
    "SnapshotCorrupted",
    "TransientFault",
    "WorkerCrashed",
    "estimate_crawl_horizon",
    "named_plan",
    "run_chaos_crawl",
    "run_chaos_replication",
]
