"""Typed failures for the resilience layer.

Every failure the fault-injection subsystem can produce -- and every
failure the recovery primitives can surface -- has a dedicated type, so
callers select what to retry, what to degrade, and what to let crash by
exception class instead of string matching.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class for all resilience-layer failures."""


class InjectedFault(ResilienceError):
    """Base class for failures raised by deterministic fault injection."""


class TransientFault(InjectedFault):
    """A transient, retryable failure (network blip, store-side 5xx)."""


class WorkerCrashed(InjectedFault):
    """A simulated crash of a crawl or replication worker.

    Raised out of the worker's own code path, so supervisors (the
    campaign scheduler, the replication pool) exercise their real
    restart logic.
    """


class SnapshotCorrupted(ResilienceError):
    """A fetched page failed validation and must be re-fetched."""


class CircuitOpen(ResilienceError):
    """A circuit breaker refused the call while in the OPEN state.

    Attributes
    ----------
    retry_at:
        Simulated-clock time at which the breaker transitions to
        HALF_OPEN and will admit a probe request.
    """

    def __init__(self, retry_at: float) -> None:
        super().__init__(f"circuit open; next probe admitted at {retry_at:.3f}s")
        self.retry_at = retry_at
