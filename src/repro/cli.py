"""Command-line interface: the study as a set of composable commands.

Usage (also via ``python -m repro``):

    repro campaign --store slideme --out crawl.jsonl    # simulate + crawl
    repro analyze  --db crawl.jsonl --store slideme     # the measurement study
    repro fit      --db crawl.jsonl --store slideme     # Figures 8-9
    repro forecast --db crawl.jsonl --store slideme     # future downloads
    repro workload --kind APP-CLUSTERING --out trace.jsonl
    repro cache    --scale 0.02                          # Figure 19
    repro chaos    --plan aggressive --seed 7            # fault injection
    repro serve    --days 10 --clients 4                 # always-on service
    repro loadgen  --clients 8 --requests 200            # admission load test
    repro store    pack --db crawl.jsonl --out crawl.cstore  # columnar pack
    repro store    stat crawl.cstore                     # dataset summary
    repro metrics  run.metrics.jsonl                     # inspect a metrics file
    repro lint     src/                                  # RPL static analysis
    repro flow     src/repro                             # whole-program dataflow

(``repro run`` is an alias for ``repro campaign``.)  Every command prints
the same textual tables the benchmarks produce, so the pipeline can be
driven without writing Python.  Each invocation runs under a fresh
metrics registry; ``--emit-metrics PATH`` on the long-running commands
(``campaign``/``run``, ``chaos``, ``cache``) writes the registry plus a
run manifest as metrics JSONL.  The deterministic records of that file
are byte-identical across same-seed runs (``repro metrics --check``
verifies the format; see docs/architecture.md, "Observability").
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.crawler.database import SnapshotDatabase
from repro.crawler.scheduler import run_crawl_campaign
from repro.marketplace.profiles import demo_profile, paper_profile, scaled_profile
from repro.obs.metrics import MetricsRegistry, use_registry

_METRICS_HELP = "write run metrics + manifest to this file (JSONL)"

_DEFAULT_SCALES = dict(
    app_scale=0.05, download_scale=5e-4, user_scale=2e-3, day_scale=0.2
)


def _add_campaign_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "campaign",
        aliases=["run"],
        help="simulate a store, crawl it daily, and save the database",
    )
    parser.add_argument(
        "--store",
        default="demo",
        choices=["demo", "anzhi", "appchina", "1mobile", "slideme"],
        help="store profile (paper stores are scaled to laptop size)",
    )
    parser.add_argument("--out", required=True, help="output database (JSONL)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--app-scale", type=float, default=_DEFAULT_SCALES["app_scale"]
    )
    parser.add_argument(
        "--download-scale", type=float, default=_DEFAULT_SCALES["download_scale"]
    )
    parser.add_argument(
        "--user-scale", type=float, default=_DEFAULT_SCALES["user_scale"]
    )
    parser.add_argument(
        "--day-scale", type=float, default=_DEFAULT_SCALES["day_scale"]
    )
    parser.add_argument(
        "--no-comments",
        action="store_true",
        help="skip comment collection (faster; disables the affinity study)",
    )
    sharded = parser.add_argument_group(
        "sharded workload campaign",
        "with --shards, run a download-model campaign partitioned over "
        "worker processes instead of a store crawl; --out receives a "
        "JSON summary with the counts fingerprint (byte-identical "
        "across shard counts for the same seed)",
    )
    sharded.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of worker shards (1 = serial in-process)",
    )
    sharded.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="users per block (the shard-independent unit of work)",
    )
    sharded.add_argument(
        "--kind",
        default="APP-CLUSTERING",
        choices=["ZIPF", "ZIPF-at-most-once", "APP-CLUSTERING"],
        help="workload model for the sharded campaign",
    )
    sharded.add_argument("--apps", type=int, default=60_000)
    sharded.add_argument("--users", type=int, default=100_000)
    sharded.add_argument("--downloads", type=int, default=1_000_000)
    sharded.add_argument("--zr", type=float, default=1.7)
    sharded.add_argument("--zc", type=float, default=1.4)
    sharded.add_argument("--p", type=float, default=0.9)
    sharded.add_argument("--clusters", type=int, default=30)
    sharded.add_argument(
        "--personas",
        type=int,
        default=None,
        help="split the population into N persona segments drawn from "
        "the conjoint utility model (sharded campaigns only)",
    )
    sharded.add_argument(
        "--persona-seed",
        type=int,
        default=0,
        help="seed for the persona utility draws (independent of --seed)",
    )
    parser.add_argument("--emit-metrics", default=None, help=_METRICS_HELP)
    parser.set_defaults(handler=_run_campaign)


def _run_sharded_campaign(args) -> int:
    import json

    from repro.core.models import ModelKind
    from repro.marketplace.segments import default_personas
    from repro.workload.generators import WorkloadSpec, segmented_spec
    from repro.workload.sharding import (
        DEFAULT_BLOCK_SIZE,
        run_sharded_campaign,
    )

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    spec = WorkloadSpec(
        kind=ModelKind(args.kind),
        n_apps=args.apps,
        n_users=args.users,
        total_downloads=args.downloads,
        zr=args.zr,
        zc=args.zc,
        p=args.p,
        n_clusters=args.clusters,
        seed=args.seed,
    )
    personas = getattr(args, "personas", None)
    if personas is not None:
        if personas < 1:
            print("error: --personas must be >= 1", file=sys.stderr)
            return 2
        spec = segmented_spec(
            spec,
            personas=default_personas(personas),
            persona_seed=args.persona_seed,
        )
    block_size = args.block_size or DEFAULT_BLOCK_SIZE
    result = run_sharded_campaign(
        spec, n_shards=args.shards, block_size=block_size
    )
    print(result.describe())
    summary = {
        "kind": spec.kind.value,
        "n_apps": spec.n_apps,
        "n_users": spec.n_users,
        "total_downloads": spec.total_downloads,
        "seed": spec.seed,
        "n_shards": result.n_shards,
        "n_blocks": result.n_blocks,
        "block_size": result.block_size,
        "n_events": result.n_events,
        "events_unfilled": result.events_unfilled,
        "counts_fingerprint": f"sha256:{result.fingerprint}",
    }
    if result.segment_counts is not None:
        summary["segments"] = {
            name: int(row.sum())
            for name, row in zip(result.segment_names, result.segment_counts)
        }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"saved {args.out}")
    return 0


def _run_campaign(args) -> int:
    if args.shards is not None:
        return _run_sharded_campaign(args)
    if args.store == "demo":
        profile = demo_profile()
    else:
        profile = scaled_profile(
            paper_profile(args.store),
            app_scale=args.app_scale,
            download_scale=args.download_scale,
            user_scale=args.user_scale,
            day_scale=args.day_scale,
        )
    print(
        f"simulating and crawling {profile.name!r}: {profile.initial_apps} "
        f"initial apps, {profile.n_users} users, {profile.crawl_days} crawl "
        f"days..."
    )
    campaign = run_crawl_campaign(
        profile, seed=args.seed, fetch_comments=not args.no_comments
    )
    campaign.database.save(args.out)
    downloads = campaign.database.download_vector(
        campaign.store_name, campaign.last_crawl_day
    )
    print(
        f"saved {args.out}: {downloads.size} apps, "
        f"{int(downloads.sum()):,} downloads, "
        f"{len(campaign.database.comments(campaign.store_name)):,} comments"
    )
    return 0


def _add_analyze_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "analyze", help="run the measurement study on a crawled database"
    )
    parser.add_argument("--db", required=True, help="database file (JSONL)")
    parser.add_argument("--store", required=True)
    parser.add_argument(
        "--section",
        default="all",
        choices=["popularity", "updates", "affinity", "spam", "pricing",
                 "income", "strategies", "growth", "all"],
    )
    parser.set_defaults(handler=_run_analyze)


def _run_analyze(args) -> int:
    database = SnapshotDatabase.load(args.db)
    store = args.store
    if store not in database.stores():
        print(f"error: store {store!r} not in database "
              f"(has: {', '.join(database.stores())})", file=sys.stderr)
        return 2
    section = args.section

    if section in ("popularity", "all"):
        from repro.analysis.popularity import popularity_report

        print(popularity_report(database, store).describe())
    if section in ("updates", "all"):
        from repro.analysis.updates import update_distribution

        print(update_distribution(database, store).describe())
    if section in ("affinity", "all"):
        from repro.analysis.affinity_study import affinity_study

        if database.comments(store):
            print(affinity_study(database, store).describe())
        elif section == "affinity":
            print("error: no comments in the database "
                  "(crawl without --no-comments)", file=sys.stderr)
            return 2
    if section in ("spam", "all"):
        from repro.analysis.spam import detect_spam_users

        if database.comments(store):
            print(detect_spam_users(database, store).describe())
        elif section == "spam":
            print("error: no comments in the database", file=sys.stderr)
            return 2
    if section in ("growth", "all"):
        from repro.analysis.growth import growth_series, new_vs_catalog_share

        print(growth_series(database, store).describe())
        catalog, fresh = new_vs_catalog_share(database, store)
        print(
            f"[{store}] crawl-window growth split: "
            f"{catalog * 100:.1f}% existing catalog, "
            f"{fresh * 100:.1f}% crawl-era arrivals"
        )
    if section in ("pricing", "income", "strategies", "all"):
        has_paid = any(
            snapshot.is_paid
            for snapshot in database.snapshots_on(store, database.days(store)[-1])
        )
        if not has_paid:
            if section in ("pricing", "income", "strategies"):
                print("error: store has no paid apps", file=sys.stderr)
                return 2
        else:
            if section in ("pricing", "all"):
                from repro.analysis.pricing_study import (
                    free_paid_split,
                    price_correlations,
                )

                print(free_paid_split(database, store).describe())
                print(price_correlations(database, store).describe())
            if section in ("income", "all"):
                from repro.analysis.income import income_report

                print(income_report(database, store).describe())
            if section in ("strategies", "all"):
                from repro.analysis.strategies import (
                    break_even_report,
                    developer_strategy_report,
                )

                print(developer_strategy_report(database, store).describe())
                print(break_even_report(database, store).describe())
    return 0


def _add_fit_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "fit", help="fit the three workload models to a store's downloads"
    )
    parser.add_argument("--db", required=True)
    parser.add_argument("--store", required=True)
    parser.add_argument("--day", type=int, default=None)
    parser.set_defaults(handler=_run_fit)


def _run_fit(args) -> int:
    from repro.analysis.model_validation import fit_store_day

    database = SnapshotDatabase.load(args.db)
    fits = fit_store_day(database, args.store, day=args.day)
    print(fits.describe())
    return 0


def _add_forecast_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "forecast",
        help="forecast future downloads and flag under-performing apps",
    )
    parser.add_argument("--db", required=True)
    parser.add_argument("--store", required=True)
    parser.add_argument("--top", type=int, default=10,
                        help="problematic apps to list")
    parser.set_defaults(handler=_run_forecast)


def _run_forecast(args) -> int:
    from repro.core.prediction import find_problematic_apps, forecast_downloads

    database = SnapshotDatabase.load(args.db)
    forecast = forecast_downloads(database, args.store)
    observed = database.download_vector(args.store, forecast.target_day)
    distance = forecast.evaluate(observed[observed > 0])
    print(
        f"forecast day {forecast.reference_day} -> {forecast.target_day}: "
        f"predicted total {forecast.predicted_total():,.0f}, realized "
        f"{int(observed.sum()):,} (Eq. 6 distance {distance:.3f}; fit "
        f"{forecast.fit.describe()})"
    )
    problematic = find_problematic_apps(database, args.store)
    print(f"{len(problematic)} apps growing far below their rank's expectation")
    for app in problematic[: args.top]:
        print(
            f"  app {app.app_id} (rank {app.rank}): observed +"
            f"{app.observed_growth}, expected +{app.expected_growth:,.0f}"
        )
    return 0


def _add_workload_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "workload", help="generate a download workload trace"
    )
    parser.add_argument(
        "--kind",
        default="APP-CLUSTERING",
        choices=["ZIPF", "ZIPF-at-most-once", "APP-CLUSTERING"],
    )
    parser.add_argument("--apps", type=int, default=1000)
    parser.add_argument("--users", type=int, default=5000)
    parser.add_argument("--downloads", type=int, default=20000)
    parser.add_argument("--zr", type=float, default=1.7)
    parser.add_argument("--zc", type=float, default=1.4)
    parser.add_argument("--p", type=float, default=0.9)
    parser.add_argument("--clusters", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, help="trace file (JSONL)")
    parser.set_defaults(handler=_run_workload)


def _run_workload(args) -> int:
    from repro.core.models import ModelKind
    from repro.workload.generators import WorkloadSpec
    from repro.workload.trace import write_trace

    spec = WorkloadSpec(
        kind=ModelKind(args.kind),
        n_apps=args.apps,
        n_users=args.users,
        total_downloads=args.downloads,
        zr=args.zr,
        zc=args.zc,
        p=args.p,
        n_clusters=args.clusters,
        seed=args.seed,
    )
    count = write_trace(args.out, spec.events(), spec=spec)
    print(f"wrote {count:,} events to {args.out}")
    return 0


def _add_cache_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "cache", help="run the Figure 19 cache experiment"
    )
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument(
        "--sizes", default="0.01,0.05,0.10,0.20",
        help="comma-separated cache sizes as fractions of the catalog",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--emit-metrics", default=None, help=_METRICS_HELP)
    parser.set_defaults(handler=_run_cache)


def _run_cache(args) -> int:
    import numpy as np

    from repro.cache.policies import LruCache
    from repro.cache.simulator import simulate_cache_batches
    from repro.core.models import ModelKind
    from repro.reporting.tables import render_table
    from repro.workload.generators import figure19_spec

    fractions = [float(part) for part in args.sizes.split(",")]
    rows = []
    specs = {
        kind: figure19_spec(kind=kind, scale=args.scale, seed=args.seed)
        for kind in ModelKind
    }
    warm = {
        kind: list(np.argsort(spec.download_counts())[::-1])
        for kind, spec in specs.items()
    }
    for fraction in fractions:
        row = [f"{fraction * 100:g}%"]
        for kind in ModelKind:
            spec = specs[kind]
            capacity = max(1, int(fraction * spec.n_apps))
            result = simulate_cache_batches(
                spec.event_batches(),
                LruCache(capacity),
                warm_keys=warm[kind][:capacity],
            )
            row.append(round(result.hit_ratio * 100, 1))
        rows.append(row)
    print(
        render_table(
            ["cache size"] + [kind.value + " (%)" for kind in ModelKind],
            rows,
            title="LRU hit ratio under the three workload models",
        )
    )
    return 0


def _add_chaos_parser(subparsers) -> None:
    from repro.resilience.faults import PLAN_DENSITIES

    parser = subparsers.add_parser(
        "chaos",
        help="run a crawl or replication under a deterministic fault plan",
    )
    parser.add_argument(
        "--plan",
        default="aggressive",
        choices=sorted(PLAN_DENSITIES),
        help="named fault schedule (seeded, exactly replayable)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode",
        default="crawl",
        choices=["crawl", "replication"],
        help="what to run under faults: a store crawl or a multi-seed "
        "replication sweep",
    )
    parser.add_argument(
        "--store",
        default="demo",
        choices=["demo", "anzhi", "appchina", "1mobile", "slideme"],
        help="store profile for crawl mode",
    )
    parser.add_argument(
        "--no-comments",
        action="store_true",
        help="skip comment collection in crawl mode",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="omit the per-fault failure trace from the report",
    )
    parser.add_argument("--out", default=None, help="also write the report to a file")
    parser.add_argument("--emit-metrics", default=None, help=_METRICS_HELP)
    parser.set_defaults(handler=_run_chaos)


def _run_chaos(args) -> int:
    from repro.marketplace.profiles import demo_profile, paper_profile, scaled_profile
    from repro.resilience.chaos import run_chaos_crawl, run_chaos_replication

    if args.mode == "replication":
        text = run_chaos_replication(plan_name=args.plan, seed=args.seed).render()
    else:
        if args.store == "demo":
            profile = demo_profile()
        else:
            profile = scaled_profile(paper_profile(args.store), **_DEFAULT_SCALES)
        report = run_chaos_crawl(
            profile,
            plan_name=args.plan,
            seed=args.seed,
            fetch_comments=not args.no_comments,
        )
        text = report.render(include_trace=not args.no_trace)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"(written to {args.out})", file=sys.stderr)
    return 0


def _add_serve_parser(subparsers) -> None:
    from repro.resilience.faults import PLAN_DENSITIES

    parser = subparsers.add_parser(
        "serve",
        help="run the always-on ecosystem service: a live store under "
        "concurrent crawler clients on a virtual clock",
    )
    parser.add_argument(
        "--store",
        default="demo",
        choices=["demo", "anzhi", "appchina", "1mobile", "slideme"],
        help="store profile (paper stores are scaled to laptop size)",
    )
    parser.add_argument(
        "--days",
        type=int,
        default=None,
        help="daily ticks to serve (default: the profile's crawl_days); "
        "this also sizes the store's listing-arrival schedule, so the "
        "bounded run stays fingerprint-comparable to the batch campaign",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent crawler clients (the dataset fingerprint does "
        "not depend on this)",
    )
    parser.add_argument(
        "--faults",
        default="none",
        choices=sorted(PLAN_DENSITIES),
        help="named fault plan injected into the store and every client",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--rps",
        type=float,
        default=8.0,
        help="per-client self-pacing in requests per simulated second",
    )
    parser.add_argument(
        "--no-comments",
        action="store_true",
        help="skip comment collection",
    )
    parser.add_argument(
        "--out", default=None, help="save the crawled database (JSONL)"
    )
    parser.add_argument(
        "--verify-batch",
        action="store_true",
        help="also run the batch campaign on the same seed and fail "
        "unless the dataset fingerprints are byte-identical",
    )
    parser.add_argument(
        "--emit-metrics",
        default=None,
        help="write the K-invariant data-plane metrics (commit counters, "
        "streaming analytics) + manifest to this JSONL file",
    )
    parser.add_argument(
        "--emit-traffic",
        default=None,
        help="write the traffic-plane metrics (retries, faults, latency "
        "histograms; deterministic per seed and client count) to this "
        "JSONL file",
    )
    parser.set_defaults(handler=_run_serve)


def _run_serve(args) -> int:
    from dataclasses import replace

    from repro.obs.manifest import RunManifest, write_metrics_jsonl
    from repro.obs.metrics import get_registry
    from repro.resilience.chaos import estimate_crawl_horizon
    from repro.resilience.faults import named_plan
    from repro.service import EcosystemService

    if args.clients < 1:
        print("error: --clients must be >= 1", file=sys.stderr)
        return 2
    if args.store == "demo":
        profile = demo_profile()
    else:
        profile = scaled_profile(paper_profile(args.store), **_DEFAULT_SCALES)
    if args.days is not None:
        if args.days < 1:
            print("error: --days must be >= 1", file=sys.stderr)
            return 2
        profile = replace(profile, crawl_days=args.days)

    plan = None
    if args.faults != "none":
        horizon = estimate_crawl_horizon(
            profile, requests_per_second=args.rps * args.clients
        )
        plan = named_plan(args.faults, seed=args.seed, horizon=horizon)

    print(
        f"serving {profile.name!r} for {profile.crawl_days} daily ticks to "
        f"{args.clients} client(s) (faults: {args.faults})..."
    )
    service = EcosystemService(
        profile,
        seed=args.seed,
        n_clients=args.clients,
        fault_plan=plan,
        fetch_comments=not args.no_comments,
        requests_per_second=args.rps,
    )
    report = service.run()
    print(report.describe())

    slope = service.analytics.zipf.value
    shares = service.analytics.pareto.shares()
    if slope is not None and shares is not None:
        print(
            f"streaming analytics: zipf slope {slope:.3f}, top 1% -> "
            f"{shares['top_1pct'] * 100:.1f}% of downloads, top 10% -> "
            f"{shares['top_10pct'] * 100:.1f}% (gini {shares['gini']:.3f})"
        )
    print(f"dataset fingerprint sha256:{report.fingerprint}")

    if args.out:
        service.database.save(args.out)
        print(f"saved {args.out}")

    # The data plane must not vary with --clients, so its manifest omits
    # that parameter; the traffic manifest records the full invocation.
    shared_params = {
        "store": profile.name,
        "days": profile.crawl_days,
        "faults": args.faults,
        "rps": args.rps,
        "no_comments": bool(args.no_comments),
    }
    if args.emit_metrics:
        manifest = RunManifest(
            command="serve", seed=int(args.seed), params=shared_params
        )
        write_metrics_jsonl(args.emit_metrics, service.data_metrics, manifest)
        print(f"(data-plane metrics written to {args.emit_metrics})", file=sys.stderr)
    if args.emit_traffic:
        manifest = RunManifest(
            command="serve",
            seed=int(args.seed),
            params={**shared_params, "clients": args.clients},
        )
        write_metrics_jsonl(args.emit_traffic, get_registry(), manifest)
        print(f"(traffic-plane metrics written to {args.emit_traffic})", file=sys.stderr)
    # The generic writer would dump the ambient (traffic) registry over
    # the data-plane sidecar; both files are already written above.
    args.emit_metrics = None

    if args.verify_batch:
        from repro.obs.metrics import use_registry as _use_registry

        print("verifying against the batch campaign on the same seed...")
        with _use_registry(MetricsRegistry()):
            batch = run_crawl_campaign(
                profile, seed=args.seed, fetch_comments=not args.no_comments
            )
        batch_fingerprint = batch.database.fingerprint()
        if batch_fingerprint != report.fingerprint:
            print(
                f"error: fingerprint mismatch\n  serve: {report.fingerprint}"
                f"\n  batch: {batch_fingerprint}",
                file=sys.stderr,
            )
            return 1
        print(f"batch fingerprint matches: sha256:{batch_fingerprint}")
    return 0


def _add_loadgen_parser(subparsers) -> None:
    from repro.resilience.faults import PLAN_DENSITIES

    parser = subparsers.add_parser(
        "loadgen",
        help="hammer a simulated store's web API with concurrent clients "
        "and report admission/latency behaviour",
    )
    parser.add_argument(
        "--store",
        default="demo",
        choices=["demo", "anzhi", "appchina", "1mobile", "slideme"],
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--requests", type=int, default=100, help="requests per client"
    )
    parser.add_argument(
        "--rps",
        type=float,
        default=8.0,
        help="per-client self-pacing in requests per simulated second",
    )
    parser.add_argument(
        "--faults",
        default="none",
        choices=sorted(PLAN_DENSITIES),
        help="named fault plan injected into the store and every client",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--emit-metrics", default=None, help=_METRICS_HELP)
    parser.set_defaults(handler=_run_loadgen)


def _run_loadgen(args) -> int:
    from repro.obs.metrics import get_registry
    from repro.resilience.faults import named_plan
    from repro.service import LoadGenerator

    if args.clients < 1:
        print("error: --clients must be >= 1", file=sys.stderr)
        return 2
    if args.requests < 1:
        print("error: --requests must be >= 1", file=sys.stderr)
        return 2
    if args.store == "demo":
        profile = demo_profile()
    else:
        profile = scaled_profile(paper_profile(args.store), **_DEFAULT_SCALES)

    plan = None
    if args.faults != "none":
        # The fleet completes its budget in about requests/rps simulated
        # seconds per client; schedule faults across that window.
        horizon = max(1.0, args.requests / args.rps)
        plan = named_plan(args.faults, seed=args.seed, horizon=horizon)

    generator = LoadGenerator(
        profile,
        seed=args.seed,
        n_clients=args.clients,
        requests_per_client=args.requests,
        requests_per_second=args.rps,
        fault_plan=plan,
    )
    report = generator.run()
    print(report.describe())
    counters = get_registry().snapshot()["counters"]
    for name in (
        "crawler.requests",
        "crawler.retries",
        "crawler.rate_limit_hits",
        "crawler.transient_faults",
        "crawler.proxy_failures",
        "crawler.breaker_skips",
    ):
        if name in counters:
            print(f"  {name} = {counters[name]}")
    return 0


def _add_report_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "report", help="render the full study for one store as a document"
    )
    parser.add_argument("--db", required=True)
    parser.add_argument("--store", required=True)
    parser.add_argument("--out", default=None, help="also write to a file")
    parser.set_defaults(handler=_run_report)


def _run_report(args) -> int:
    from repro.analysis.report import full_report

    database = SnapshotDatabase.load(args.db)
    try:
        text = full_report(database, args.store)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"(written to {args.out})", file=sys.stderr)
    return 0


def _add_store_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "store",
        help="pack, inspect, and fingerprint columnar snapshot datasets",
    )
    verbs = parser.add_subparsers(dest="store_verb", required=True)

    pack = verbs.add_parser(
        "pack",
        help="pack a database into the columnar .npy-per-column layout",
    )
    pack.add_argument(
        "--db", required=True, help="input database (JSONL or packed dataset)"
    )
    pack.add_argument("--out", required=True, help="output dataset directory")
    pack.set_defaults(handler=_run_store_pack)

    stat = verbs.add_parser(
        "stat", help="summarize a database or packed dataset"
    )
    stat.add_argument("path", help="JSONL database or packed dataset")
    stat.set_defaults(handler=_run_store_stat)

    fingerprint = verbs.add_parser(
        "fingerprint",
        help="print the order-independent dataset fingerprint",
    )
    fingerprint.add_argument("path", help="JSONL database or packed dataset")
    fingerprint.set_defaults(handler=_run_store_fingerprint)


def _run_store_pack(args) -> int:
    database = SnapshotDatabase.load(args.db)
    total = database.pack(args.out)
    columnar = database.columnar
    n_chunks = sum(1 for _ in columnar.chunks())
    print(
        f"packed {args.out}: {n_chunks} chunks, "
        f"{columnar.n_snapshot_rows():,} snapshot rows, "
        f"{total:,} bytes on disk"
    )
    return 0


def _run_store_stat(args) -> int:
    from repro.reporting.tables import render_table
    from repro.store import bytes_on_disk, is_packed_dataset

    database = SnapshotDatabase.load(args.path)
    columnar = database.columnar
    rows = []
    for store in columnar.stores():
        comment_log = columnar.comment_log(store)
        apk_log = columnar.apk_log(store)
        rows.append(
            [
                store,
                len(columnar.days(store)),
                columnar.n_snapshot_rows(store),
                len(comment_log) if comment_log is not None else 0,
                len(apk_log) if apk_log is not None else 0,
            ]
        )
    print(
        render_table(
            ["store", "days", "snapshots", "comments", "apks"],
            rows,
            title=f"contents of {args.path}",
        )
    )
    print(
        f"dictionaries: {len(columnar.names)} names, "
        f"{len(columnar.categories)} categories, "
        f"{len(columnar.versions)} versions, "
        f"{len(columnar.packages)} packages, "
        f"{len(columnar.libsets)} library sets"
    )
    if is_packed_dataset(args.path):
        print(f"packed dataset: {bytes_on_disk(args.path):,} bytes on disk")
    return 0


def _run_store_fingerprint(args) -> int:
    database = SnapshotDatabase.load(args.path)
    print(f"sha256:{database.fingerprint()}")
    return 0


def _add_metrics_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "metrics",
        help="inspect a metrics JSONL file written by --emit-metrics",
    )
    parser.add_argument("path", help="metrics JSONL file")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the format (JSON lines, record tags, stable key "
        "order); exits nonzero on problems",
    )
    parser.add_argument(
        "--strip-wall-clock",
        action="store_true",
        help="print the file with the wall-clock record removed (what "
        "remains is seed-deterministic, safe to diff across runs)",
    )
    parser.set_defaults(handler=_run_metrics)


def _run_metrics(args) -> int:
    from repro.obs.manifest import (
        check_metrics_file,
        read_metrics_records,
        render_metrics_summary,
        strip_wall_clock,
    )

    if args.check:
        problems = check_metrics_file(args.path)
        if problems:
            for problem in problems:
                print(f"error: {args.path}: {problem}", file=sys.stderr)
            return 1
        print(f"{args.path}: ok")
        return 0
    if args.strip_wall_clock:
        with open(args.path, encoding="utf-8") as handle:
            sys.stdout.write(strip_wall_clock(handle.read()))
        return 0
    try:
        records = read_metrics_records(args.path)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_metrics_summary(records))
    return 0


def _add_lint_parser(subparsers) -> None:
    from repro.devtools.lint import add_lint_parser

    add_lint_parser(subparsers)


def _add_flow_parser(subparsers) -> None:
    from repro.devtools.flow.cli import add_flow_parser

    add_flow_parser(subparsers)


def _add_export_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "export", help="export a crawled database to CSV files"
    )
    parser.add_argument("--db", required=True)
    parser.add_argument("--store", default=None, help="restrict to one store")
    parser.add_argument(
        "--prefix", required=True,
        help="output prefix; writes <prefix>_snapshots.csv, _comments.csv, _apks.csv",
    )
    parser.set_defaults(handler=_run_export)


def _run_export(args) -> int:
    from repro.crawler.exporters import (
        export_apks_csv,
        export_comments_csv,
        export_snapshots_csv,
    )

    database = SnapshotDatabase.load(args.db)
    for suffix, exporter in (
        ("snapshots", export_snapshots_csv),
        ("comments", export_comments_csv),
        ("apks", export_apks_csv),
    ):
        path = f"{args.prefix}_{suffix}.csv"
        rows = exporter(database, path, store=args.store)
        print(f"wrote {rows:,} rows to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Rise of the Planet of the Apps' "
            "(IMC 2013)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_campaign_parser(subparsers)
    _add_analyze_parser(subparsers)
    _add_fit_parser(subparsers)
    _add_forecast_parser(subparsers)
    _add_workload_parser(subparsers)
    _add_cache_parser(subparsers)
    _add_chaos_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_loadgen_parser(subparsers)
    _add_export_parser(subparsers)
    _add_store_parser(subparsers)
    _add_report_parser(subparsers)
    _add_metrics_parser(subparsers)
    _add_lint_parser(subparsers)
    _add_flow_parser(subparsers)
    return parser


def _emit_metrics(args, registry: MetricsRegistry) -> None:
    """Write the invocation's registry + manifest when requested."""
    path = getattr(args, "emit_metrics", None)
    if not path:
        return
    from repro.obs.manifest import RunManifest, write_metrics_jsonl

    params = {
        key: value
        for key, value in vars(args).items()
        if key not in ("handler", "command", "emit_metrics", "seed")
        and isinstance(value, (bool, int, float, str, type(None)))
    }
    seed = getattr(args, "seed", None)
    manifest = RunManifest(
        command=args.command,
        seed=int(seed) if seed is not None else None,
        params=params,
    )
    write_metrics_jsonl(path, registry, manifest)
    print(f"(metrics written to {path})", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Every invocation runs under its own :class:`MetricsRegistry`, so
    counters never leak between commands in one process (tests drive
    :func:`main` repeatedly) and ``--emit-metrics`` captures exactly one
    run.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    registry = MetricsRegistry()
    with use_registry(registry):
        code = args.handler(args)
        _emit_metrics(args, registry)
    return code


if __name__ == "__main__":
    sys.exit(main())
