"""The crawl engine: full snapshot then daily incremental revisits.

The paper's collection process has two phases per store: an initial crawl
that indexes every listed app, followed by daily re-visits that refresh
each known app's statistics, pick up newly listed apps, re-fetch comment
pages, and archive any APK version not yet downloaded.  Requests go
through a randomly chosen proxy (Chinese proxies only, for geo-fenced
stores), and the crawler paces itself with a token bucket to respect the
store's request threshold.

Failure handling is delegated to :mod:`repro.resilience`: every request
runs under a :class:`~repro.resilience.retry.RetryPolicy` (exponential
backoff with seeded jitter, advancing the simulated clock), each proxy
sits behind a :class:`~repro.resilience.breaker.CircuitBreaker` so a
repeatedly failing node is skipped until its reset timeout, fetched app
pages are validated and re-fetched when a store serves garbage, and a
:class:`~repro.resilience.faults.FaultInjector` can schedule proxy
deaths, clock skew, and worker crashes for chaos runs.

The retry/pacing ladder itself lives in
:mod:`repro.crawler.requesting` as a sans-IO generator
(:class:`~repro.crawler.requesting.RequestEngine`), so the always-on
service (:mod:`repro.service`) can drive the identical code path on an
async virtual clock.  This class is the synchronous driver: it owns a
scalar simulated clock and advances it by whatever the engine yields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crawler.database import ApkRecord, AppSnapshot, SnapshotDatabase
from repro.crawler.proxies import ProxyPool
from repro.crawler.requesting import CrawlError, ProxiesExhausted, RequestEngine
from repro.crawler.webapi import StoreWebApi
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.stats.rng import SeedLike, make_rng

__all__ = [
    "CrawlError",
    "CrawlStats",
    "ProxiesExhausted",
    "StoreCrawler",
]


@dataclass
class CrawlStats:
    """Bookkeeping for one crawler over its lifetime."""

    requests: int = 0
    retries: int = 0
    rate_limit_hits: int = 0
    proxy_failures: int = 0
    proxy_pick_failures: int = 0
    transient_faults: int = 0
    corrupt_pages: int = 0
    breaker_skips: int = 0
    pages_dropped: int = 0
    backoff_seconds: float = 0.0
    apps_crawled: int = 0
    apks_fetched: int = 0
    comments_fetched: int = 0


class StoreCrawler:
    """Crawls one store's web API into a snapshot database.

    Parameters
    ----------
    api:
        The store's web interface.
    database:
        Where observations are stored.
    proxy_pool:
        Proxies to route requests through.
    requests_per_second:
        Self-imposed request pacing (kept below the store's threshold, as
        the paper's crawlers were designed to comply with each store's
        limits).
    max_retries:
        Attempts per request before giving up; ignored when a full
        ``retry_policy`` is given.
    retry_policy:
        Backoff schedule between attempts.  The default backs off
        exponentially from 0.25s to 30s of simulated time with 10%
        seeded jitter.
    breaker_factory:
        Builds the per-proxy circuit breaker; ``None`` uses defaults
        (3 consecutive failures trip it, 60 simulated seconds to reset).
    fault_injector:
        Optional chaos hook polled once per attempt for proxy deaths,
        clock skew, and worker crashes.
    seed:
        Randomness for backoff jitter only -- the crawled data never
        depends on it.
    drop_failed_pages:
        When True, an app page whose request exhausts all retries is
        *dropped* -- counted in ``stats.pages_dropped`` and the
        ``crawler.pages_dropped`` metric -- instead of aborting the
        whole crawl day.  The paper's crawler behaved this way: a
        single unreachable listing cost one observation, not the day.
    metrics:
        Observability sink; defaults to the process-global registry.
    """

    def __init__(
        self,
        api: StoreWebApi,
        database: SnapshotDatabase,
        proxy_pool: ProxyPool,
        requests_per_second: float = 8.0,
        max_retries: int = 5,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_factory=None,
        fault_injector: Optional[FaultInjector] = None,
        seed: SeedLike = None,
        drop_failed_pages: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self._api = api
        self._database = database
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=max_retries)
        )
        self.max_retries = self.retry_policy.max_attempts
        self.stats = CrawlStats()
        self._clock = 0.0
        self.drop_failed_pages = drop_failed_pages
        self._metrics = metrics if metrics is not None else get_registry()
        self._engine = RequestEngine(
            api=api,
            proxy_pool=proxy_pool,
            requests_per_second=requests_per_second,
            retry_policy=self.retry_policy,
            breaker_factory=(
                breaker_factory if breaker_factory is not None else CircuitBreaker
            ),
            fault_injector=fault_injector,
            retry_rng=make_rng(seed),
            stats=self.stats,
            metrics=self._metrics,
        )

    @property
    def clock(self) -> float:
        """The crawler's simulated wall clock, in seconds."""
        return self._clock

    @property
    def proxy_pool(self) -> ProxyPool:
        """The pool this crawler routes requests through."""
        return self._engine.proxy_pool

    @property
    def engine(self) -> RequestEngine:
        """The sans-IO request pipeline this crawler drives."""
        return self._engine

    def _request(self, endpoint, *args):
        """Issue one request, advancing the simulated clock as the engine asks.

        The clock is committed per yielded delay (not once at the end),
        so backoff spent on a request that ultimately fails still counts
        -- exactly as when the ladder lived inline here.
        """
        steps = self._engine.request_steps(endpoint, args, self._clock)
        try:
            delay = next(steps)
            while True:
                self._clock += delay
                delay = steps.send(self._clock)
        except StopIteration as done:
            return done.value

    def _discover_app_ids(self) -> List[int]:
        """Walk all listing pages and return every listed app id."""
        n_pages = self._request(self._api.n_pages)
        app_ids: List[int] = []
        for page in range(n_pages):
            app_ids.extend(self._request(self._api.list_page, page))
        return app_ids

    def crawl_day(self, day: int, fetch_comments: bool = True) -> int:
        """Run one daily crawl; returns the number of apps snapshotted.

        ``day`` is the store's simulation day being observed; the paper's
        crawler tags each observation with its crawl date the same way.
        Writes are idempotent, so a supervisor may safely re-run a day
        whose worker crashed partway through.

        With ``drop_failed_pages`` set, an app whose statistics page
        cannot be fetched within the retry budget is skipped for the day
        and accounted as a dropped page; :class:`ProxiesExhausted` still
        propagates, because a dead pool dooms every remaining app.
        """
        app_ids = self._discover_app_ids()
        known_apks = self._database.latest_apk_per_app(self._api.store_name)
        for app_id in app_ids:
            try:
                page = self._request(self._api.app_page, app_id)
            except ProxiesExhausted:
                raise
            except CrawlError:
                if not self.drop_failed_pages:
                    raise
                self.stats.pages_dropped += 1
                self._metrics.counter("crawler.pages_dropped").add(1)
                continue
            self._database.add_snapshot(
                AppSnapshot(
                    store=self._api.store_name,
                    day=day,
                    app_id=page.app_id,
                    name=page.name,
                    category=page.category,
                    developer_id=page.developer_id,
                    price=page.price,
                    declares_ads=page.declares_ads,
                    total_downloads=page.statistics.total_downloads,
                    rating_count=page.statistics.rating_count,
                    average_rating=page.statistics.average_rating,
                    comment_count=page.statistics.comment_count,
                    version_name=page.statistics.version_name,
                )
            )
            self.stats.apps_crawled += 1

            # Fetch the APK only when we have not yet archived this version
            # (the paper: "we download each app version only once").
            known = known_apks.get(app_id)
            if known is None or known.version_name != page.statistics.version_name:
                apk = self._request(self._api.download_apk, app_id)
                stored = self._database.add_apk(
                    ApkRecord(
                        store=self._api.store_name,
                        app_id=apk.app_id,
                        version_name=apk.version_name,
                        package_name=apk.package_name,
                        size_mb=apk.size_mb,
                        embedded_libraries=apk.embedded_libraries,
                    )
                )
                if stored:
                    self.stats.apks_fetched += 1

            if fetch_comments and page.statistics.comment_count > 0:
                comments = self._request(self._api.app_comments, app_id)
                self._database.add_comments(self._api.store_name, comments)
                self.stats.comments_fetched += len(comments)
        return len(app_ids)
