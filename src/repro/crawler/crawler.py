"""The crawl engine: full snapshot then daily incremental revisits.

The paper's collection process has two phases per store: an initial crawl
that indexes every listed app, followed by daily re-visits that refresh
each known app's statistics, pick up newly listed apps, re-fetch comment
pages, and archive any APK version not yet downloaded.  Requests go
through a randomly chosen proxy (Chinese proxies only, for geo-fenced
stores), retrying on transient proxy failures, and the crawler paces
itself with a token bucket to respect the store's request threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crawler.database import ApkRecord, AppSnapshot, SnapshotDatabase
from repro.crawler.proxies import NoProxyAvailable, ProxyError, ProxyPool
from repro.crawler.ratelimit import RateLimitExceeded, TokenBucket
from repro.crawler.webapi import GeoBlockedError, StoreWebApi


@dataclass
class CrawlStats:
    """Bookkeeping for one crawler over its lifetime."""

    requests: int = 0
    retries: int = 0
    rate_limit_hits: int = 0
    proxy_failures: int = 0
    apps_crawled: int = 0
    apks_fetched: int = 0
    comments_fetched: int = 0


class CrawlError(Exception):
    """Raised when a request cannot be completed after all retries."""


class StoreCrawler:
    """Crawls one store's web API into a snapshot database.

    Parameters
    ----------
    api:
        The store's web interface.
    database:
        Where observations are stored.
    proxy_pool:
        Proxies to route requests through.
    requests_per_second:
        Self-imposed request pacing (kept below the store's threshold, as
        the paper's crawlers were designed to comply with each store's
        limits).
    max_retries:
        Attempts per request before giving up.
    """

    def __init__(
        self,
        api: StoreWebApi,
        database: SnapshotDatabase,
        proxy_pool: ProxyPool,
        requests_per_second: float = 8.0,
        max_retries: int = 5,
    ) -> None:
        if requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self._api = api
        self._database = database
        self._proxies = proxy_pool
        self._pacer = TokenBucket(
            rate=requests_per_second, capacity=max(1.0, requests_per_second)
        )
        self.max_retries = max_retries
        self.stats = CrawlStats()
        self._clock = 0.0

    @property
    def clock(self) -> float:
        """The crawler's simulated wall clock, in seconds."""
        return self._clock

    def _request(self, endpoint, *args):
        """Issue one request through a random proxy with retries."""
        country = self._api.requires_country
        last_error: Optional[Exception] = None
        for _ in range(self.max_retries):
            # Self-pacing: wait (by advancing the simulated clock) until
            # the crawler's own budget allows another request.
            wait = self._pacer.time_until_available(self._clock)
            self._clock += wait
            self._pacer.try_consume(self._clock)

            try:
                proxy = self._proxies.pick(self._api.store_name, country)
            except NoProxyAvailable as error:
                raise CrawlError(str(error)) from error
            try:
                self._proxies.request_through(proxy)
            except ProxyError as error:
                self.stats.proxy_failures += 1
                self.stats.retries += 1
                last_error = error
                continue
            client = f"proxy-{proxy.proxy_id}"
            try:
                result = endpoint(*args, client, proxy.country, self._clock)
            except RateLimitExceeded as error:
                self.stats.rate_limit_hits += 1
                self.stats.retries += 1
                self._clock += error.retry_after
                last_error = error
                continue
            except GeoBlockedError as error:
                # The store blocked this proxy; drop it and retry elsewhere.
                self._proxies.blacklist(proxy.proxy_id, self._api.store_name)
                self.stats.retries += 1
                last_error = error
                continue
            self.stats.requests += 1
            return result
        raise CrawlError(
            f"request failed after {self.max_retries} attempts: {last_error}"
        )

    def _discover_app_ids(self) -> List[int]:
        """Walk all listing pages and return every listed app id."""
        n_pages = self._request(self._api.n_pages)
        app_ids: List[int] = []
        for page in range(n_pages):
            app_ids.extend(self._request(self._api.list_page, page))
        return app_ids

    def crawl_day(self, day: int, fetch_comments: bool = True) -> int:
        """Run one daily crawl; returns the number of apps snapshotted.

        ``day`` is the store's simulation day being observed; the paper's
        crawler tags each observation with its crawl date the same way.
        """
        app_ids = self._discover_app_ids()
        known_apks = self._database.latest_apk_per_app(self._api.store_name)
        for app_id in app_ids:
            page = self._request(self._api.app_page, app_id)
            self._database.add_snapshot(
                AppSnapshot(
                    store=self._api.store_name,
                    day=day,
                    app_id=page.app_id,
                    name=page.name,
                    category=page.category,
                    developer_id=page.developer_id,
                    price=page.price,
                    declares_ads=page.declares_ads,
                    total_downloads=page.statistics.total_downloads,
                    rating_count=page.statistics.rating_count,
                    average_rating=page.statistics.average_rating,
                    comment_count=page.statistics.comment_count,
                    version_name=page.statistics.version_name,
                )
            )
            self.stats.apps_crawled += 1

            # Fetch the APK only when we have not yet archived this version
            # (the paper: "we download each app version only once").
            known = known_apks.get(app_id)
            if known is None or known.version_name != page.statistics.version_name:
                apk = self._request(self._api.download_apk, app_id)
                stored = self._database.add_apk(
                    ApkRecord(
                        store=self._api.store_name,
                        app_id=apk.app_id,
                        version_name=apk.version_name,
                        package_name=apk.package_name,
                        size_mb=apk.size_mb,
                        embedded_libraries=apk.embedded_libraries,
                    )
                )
                if stored:
                    self.stats.apks_fetched += 1

            if fetch_comments and page.statistics.comment_count > 0:
                comments = self._request(self._api.app_comments, app_id)
                self._database.add_comments(self._api.store_name, comments)
                self.stats.comments_fetched += len(comments)
        return len(app_ids)
