"""The crawl engine: full snapshot then daily incremental revisits.

The paper's collection process has two phases per store: an initial crawl
that indexes every listed app, followed by daily re-visits that refresh
each known app's statistics, pick up newly listed apps, re-fetch comment
pages, and archive any APK version not yet downloaded.  Requests go
through a randomly chosen proxy (Chinese proxies only, for geo-fenced
stores), and the crawler paces itself with a token bucket to respect the
store's request threshold.

Failure handling is delegated to :mod:`repro.resilience`: every request
runs under a :class:`~repro.resilience.retry.RetryPolicy` (exponential
backoff with seeded jitter, advancing the simulated clock), each proxy
sits behind a :class:`~repro.resilience.breaker.CircuitBreaker` so a
repeatedly failing node is skipped until its reset timeout, fetched app
pages are validated and re-fetched when a store serves garbage, and a
:class:`~repro.resilience.faults.FaultInjector` can schedule proxy
deaths, clock skew, and worker crashes for chaos runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.crawler.database import ApkRecord, AppSnapshot, SnapshotDatabase
from repro.crawler.proxies import NoProxyAvailable, ProxyError, ProxyPool
from repro.crawler.ratelimit import RateLimitExceeded, TokenBucket
from repro.crawler.webapi import GeoBlockedError, StoreWebApi, page_is_corrupt
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.errors import SnapshotCorrupted, TransientFault, WorkerCrashed
from repro.resilience.faults import FaultInjector, FaultKind
from repro.resilience.retry import RetryPolicy
from repro.stats.rng import SeedLike, make_rng


@dataclass
class CrawlStats:
    """Bookkeeping for one crawler over its lifetime."""

    requests: int = 0
    retries: int = 0
    rate_limit_hits: int = 0
    proxy_failures: int = 0
    proxy_pick_failures: int = 0
    transient_faults: int = 0
    corrupt_pages: int = 0
    breaker_skips: int = 0
    pages_dropped: int = 0
    backoff_seconds: float = 0.0
    apps_crawled: int = 0
    apks_fetched: int = 0
    comments_fetched: int = 0


class CrawlError(Exception):
    """Raised when a request cannot be completed after all retries."""


class ProxiesExhausted(CrawlError):
    """Raised when no live, non-blacklisted proxy can serve a store.

    Attributes
    ----------
    store_name:
        The store whose request could not be routed.
    country:
        The geo constraint in force, if any.
    """

    def __init__(self, store_name: str, country: Optional[str] = None) -> None:
        constraint = f" in country {country!r}" if country else ""
        super().__init__(
            f"proxy pool exhausted for store {store_name!r}{constraint}: "
            "every proxy is dead, blacklisted, or geo-mismatched"
        )
        self.store_name = store_name
        self.country = country


class StoreCrawler:
    """Crawls one store's web API into a snapshot database.

    Parameters
    ----------
    api:
        The store's web interface.
    database:
        Where observations are stored.
    proxy_pool:
        Proxies to route requests through.
    requests_per_second:
        Self-imposed request pacing (kept below the store's threshold, as
        the paper's crawlers were designed to comply with each store's
        limits).
    max_retries:
        Attempts per request before giving up; ignored when a full
        ``retry_policy`` is given.
    retry_policy:
        Backoff schedule between attempts.  The default backs off
        exponentially from 0.25s to 30s of simulated time with 10%
        seeded jitter.
    breaker_factory:
        Builds the per-proxy circuit breaker; ``None`` uses defaults
        (3 consecutive failures trip it, 60 simulated seconds to reset).
    fault_injector:
        Optional chaos hook polled once per attempt for proxy deaths,
        clock skew, and worker crashes.
    seed:
        Randomness for backoff jitter only -- the crawled data never
        depends on it.
    drop_failed_pages:
        When True, an app page whose request exhausts all retries is
        *dropped* -- counted in ``stats.pages_dropped`` and the
        ``crawler.pages_dropped`` metric -- instead of aborting the
        whole crawl day.  The paper's crawler behaved this way: a
        single unreachable listing cost one observation, not the day.
    metrics:
        Observability sink; defaults to the process-global registry.
    """

    def __init__(
        self,
        api: StoreWebApi,
        database: SnapshotDatabase,
        proxy_pool: ProxyPool,
        requests_per_second: float = 8.0,
        max_retries: int = 5,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_factory=None,
        fault_injector: Optional[FaultInjector] = None,
        seed: SeedLike = None,
        drop_failed_pages: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self._api = api
        self._database = database
        self._proxies = proxy_pool
        self._pacer = TokenBucket(
            rate=requests_per_second, capacity=max(1.0, requests_per_second)
        )
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=max_retries)
        )
        self.max_retries = self.retry_policy.max_attempts
        self._breaker_factory = (
            breaker_factory if breaker_factory is not None else CircuitBreaker
        )
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._faults = fault_injector
        self._retry_rng = make_rng(seed)
        self.stats = CrawlStats()
        self._clock = 0.0
        self.drop_failed_pages = drop_failed_pages
        self._metrics = metrics if metrics is not None else get_registry()

    @property
    def clock(self) -> float:
        """The crawler's simulated wall clock, in seconds."""
        return self._clock

    @property
    def proxy_pool(self) -> ProxyPool:
        """The pool this crawler routes requests through."""
        return self._proxies

    def _breaker(self, proxy_id: int) -> CircuitBreaker:
        breaker = self._breakers.get(proxy_id)
        if breaker is None:
            breaker = self._breaker_factory()
            self._breakers[proxy_id] = breaker
        return breaker

    def _apply_scheduled_faults(self) -> None:
        """Consume crawler-side faults that have come due on the clock."""
        injector = self._faults
        if injector is None:
            return
        for event in injector.take_all(self._clock, FaultKind.CLOCK_SKEW):
            self._clock += event.magnitude
            injector.record(
                event, self._clock, f"clock skewed forward {event.magnitude:.3f}s"
            )
        for event in injector.take_all(self._clock, FaultKind.PROXY_DEATH):
            victims = self._proxies.alive_proxies()
            if not victims:
                injector.record(event, self._clock, "no proxy left to kill")
                continue
            victim = victims[int(injector.rng.integers(0, len(victims)))]
            self._proxies.kill(victim.proxy_id)
            injector.record(event, self._clock, f"killed proxy {victim.proxy_id}")
        crash = injector.take_all(self._clock, FaultKind.WORKER_CRASH)
        if crash:
            injector.record(crash[0], self._clock, "crawl worker crashed")
            # Any sibling crash events due at the same instant are folded
            # into one crash; the supervisor restarts the whole day anyway.
            for extra in crash[1:]:
                injector.record(extra, self._clock, "folded into same crash")
            raise WorkerCrashed(
                f"crawl worker crashed at t={self._clock:.3f}s (scheduled fault)"
            )

    def _pick_proxy(self, country: Optional[str]):
        """Pick a proxy whose circuit breaker admits a call right now.

        Falls back to ignoring the breakers when every healthy proxy is
        open (better a doomed attempt than a stalled crawl), and raises
        :class:`ProxiesExhausted` when no healthy proxy exists at all.
        """
        store = self._api.store_name
        open_ids: Set[int] = {
            proxy_id
            for proxy_id, breaker in self._breakers.items()
            if not breaker.allow(self._clock)
        }
        try:
            return self._proxies.pick(store, country, exclude=open_ids)
        except NoProxyAvailable:
            # Not silent: a failed constrained pick is the first signal a
            # pool is going under, and production debugging needs it on a
            # counter -- even (especially) when degradation recovers.
            self.stats.proxy_pick_failures += 1
            self._metrics.counter("crawler.proxy_pick_failures").add(1)
        if open_ids:
            # Every admissible proxy is breaker-open; degrade by probing
            # one of them rather than deadlocking the crawl.
            self.stats.breaker_skips += 1
            self._metrics.counter("crawler.breaker_skips").add(1)
            try:
                return self._proxies.pick(store, country)
            except NoProxyAvailable as error:
                raise ProxiesExhausted(store, country) from error
        raise ProxiesExhausted(store, country)

    def _request(self, endpoint, *args):
        """Issue one request through a proxy, retrying under the policy.

        Transient proxy errors, rate-limit hits, geo-blocks, injected
        store errors, and corrupt pages all count against the policy's
        attempt budget; between attempts the simulated clock advances by
        the policy's jittered backoff.
        """
        country = self._api.requires_country
        policy = self.retry_policy
        metrics = self._metrics
        last_error: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if attempt > 0:
                delay = policy.delay(attempt - 1, self._retry_rng)
                self._clock += delay
                self.stats.backoff_seconds += delay
                self.stats.retries += 1
                metrics.counter("crawler.retries").add(1)
            self._apply_scheduled_faults()

            # Self-pacing: wait (by advancing the simulated clock) until
            # the crawler's own budget allows another request.
            wait = self._pacer.time_until_available(self._clock)
            self._clock += wait
            self._pacer.try_consume(self._clock)

            proxy = self._pick_proxy(country)
            breaker = self._breaker(proxy.proxy_id)
            try:
                self._proxies.request_through(proxy)
            except ProxyError as error:
                self.stats.proxy_failures += 1
                metrics.counter("crawler.proxy_failures").add(1)
                breaker.record_failure(self._clock)
                last_error = error
                continue
            client = f"proxy-{proxy.proxy_id}"
            try:
                result = endpoint(*args, client, proxy.country, self._clock)
            except RateLimitExceeded as error:
                self.stats.rate_limit_hits += 1
                metrics.counter("crawler.rate_limit_hits").add(1)
                self._clock += error.retry_after
                # A throttle is the store talking, not the proxy failing;
                # the breaker does not count it.
                last_error = error
                continue
            except GeoBlockedError as error:
                # The store blocked this proxy; drop it and retry elsewhere.
                self._proxies.blacklist(proxy.proxy_id, self._api.store_name)
                breaker.record_failure(self._clock)
                last_error = error
                continue
            except TransientFault as error:
                self.stats.transient_faults += 1
                metrics.counter("crawler.transient_faults").add(1)
                breaker.record_failure(self._clock)
                last_error = error
                continue
            if endpoint == self._api.app_page and page_is_corrupt(result):
                self.stats.corrupt_pages += 1
                metrics.counter("crawler.corrupt_pages").add(1)
                breaker.record_success(self._clock)
                last_error = SnapshotCorrupted(
                    f"corrupt page for app {args[0]} via {client}"
                )
                continue
            self.stats.requests += 1
            metrics.counter("crawler.requests").add(1)
            if attempt > 0:
                # The whole point of the retry budget: failures that the
                # policy absorbed end-to-end, visible per run.
                metrics.counter("crawler.requests_recovered").add(1)
            breaker.record_success(self._clock)
            return result
        raise CrawlError(
            f"request failed after {policy.max_attempts} attempts: {last_error}"
        )

    def _discover_app_ids(self) -> List[int]:
        """Walk all listing pages and return every listed app id."""
        n_pages = self._request(self._api.n_pages)
        app_ids: List[int] = []
        for page in range(n_pages):
            app_ids.extend(self._request(self._api.list_page, page))
        return app_ids

    def crawl_day(self, day: int, fetch_comments: bool = True) -> int:
        """Run one daily crawl; returns the number of apps snapshotted.

        ``day`` is the store's simulation day being observed; the paper's
        crawler tags each observation with its crawl date the same way.
        Writes are idempotent, so a supervisor may safely re-run a day
        whose worker crashed partway through.

        With ``drop_failed_pages`` set, an app whose statistics page
        cannot be fetched within the retry budget is skipped for the day
        and accounted as a dropped page; :class:`ProxiesExhausted` still
        propagates, because a dead pool dooms every remaining app.
        """
        app_ids = self._discover_app_ids()
        known_apks = self._database.latest_apk_per_app(self._api.store_name)
        for app_id in app_ids:
            try:
                page = self._request(self._api.app_page, app_id)
            except ProxiesExhausted:
                raise
            except CrawlError:
                if not self.drop_failed_pages:
                    raise
                self.stats.pages_dropped += 1
                self._metrics.counter("crawler.pages_dropped").add(1)
                continue
            self._database.add_snapshot(
                AppSnapshot(
                    store=self._api.store_name,
                    day=day,
                    app_id=page.app_id,
                    name=page.name,
                    category=page.category,
                    developer_id=page.developer_id,
                    price=page.price,
                    declares_ads=page.declares_ads,
                    total_downloads=page.statistics.total_downloads,
                    rating_count=page.statistics.rating_count,
                    average_rating=page.statistics.average_rating,
                    comment_count=page.statistics.comment_count,
                    version_name=page.statistics.version_name,
                )
            )
            self.stats.apps_crawled += 1

            # Fetch the APK only when we have not yet archived this version
            # (the paper: "we download each app version only once").
            known = known_apks.get(app_id)
            if known is None or known.version_name != page.statistics.version_name:
                apk = self._request(self._api.download_apk, app_id)
                stored = self._database.add_apk(
                    ApkRecord(
                        store=self._api.store_name,
                        app_id=apk.app_id,
                        version_name=apk.version_name,
                        package_name=apk.package_name,
                        size_mb=apk.size_mb,
                        embedded_libraries=apk.embedded_libraries,
                    )
                )
                if stored:
                    self.stats.apks_fetched += 1

            if fetch_comments and page.statistics.comment_count > 0:
                comments = self._request(self._api.app_comments, app_id)
                self._database.add_comments(self._api.store_name, comments)
                self.stats.comments_fetched += len(comments)
        return len(app_ids)
