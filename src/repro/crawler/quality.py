"""Crawl-quality assessment: how complete and consistent a crawl is.

A measurement study stands on its collection quality; the paper's
Section 2 spends most of its length on exactly this (rate limits,
blacklisting, proxy placement, per-store crawlers).  This module audits
a finished crawl the way a reviewer would:

- **coverage**: which fraction of each day's listed apps was actually
  snapshotted, and whether any days are missing from the cadence;
- **consistency**: cumulative counters (downloads, comments, ratings)
  must never decrease between observations of the same app;
- **staleness**: apps that stopped being observed before the crawl's
  final day (delisted, or lost to crawl failures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.crawler.database import SnapshotDatabase


@dataclass(frozen=True)
class CrawlQualityReport:
    """The audit result for one store's crawl."""

    store: str
    n_days: int
    expected_cadence: int
    missing_days: Tuple[int, ...]
    apps_observed: int
    mean_daily_coverage: float
    monotonicity_violations: Tuple[Tuple[int, int, str], ...]
    stale_apps: Tuple[int, ...]

    @property
    def is_clean(self) -> bool:
        """No missing days, no counter regressions."""
        return not self.missing_days and not self.monotonicity_violations

    def describe(self) -> str:
        """A one-paragraph audit summary."""
        issues = []
        if self.missing_days:
            issues.append(f"{len(self.missing_days)} missing days")
        if self.monotonicity_violations:
            issues.append(
                f"{len(self.monotonicity_violations)} counter regressions"
            )
        if self.stale_apps:
            issues.append(f"{len(self.stale_apps)} apps went stale")
        verdict = "; ".join(issues) if issues else "clean"
        return (
            f"[{self.store}] {self.n_days} crawled days, "
            f"{self.apps_observed} apps, mean daily coverage "
            f"{self.mean_daily_coverage * 100:.1f}% -- {verdict}"
        )


def _infer_cadence(days: List[int]) -> int:
    """The most common gap between consecutive crawled days."""
    if len(days) < 2:
        return 1
    gaps: Dict[int, int] = {}
    for previous, current in zip(days, days[1:]):
        gap = current - previous
        gaps[gap] = gaps.get(gap, 0) + 1
    return max(gaps, key=lambda gap: (gaps[gap], -gap))


def assess_crawl_quality(
    database: SnapshotDatabase, store: str
) -> CrawlQualityReport:
    """Audit one store's crawl for completeness and consistency."""
    days = database.days(store)
    if not days:
        raise ValueError(f"store {store!r} has no crawled days")

    cadence = _infer_cadence(days)
    missing: List[int] = []
    for previous, current in zip(days, days[1:]):
        gap = current - previous
        if gap > cadence:
            missing.extend(range(previous + cadence, current, cadence))

    # Per-day coverage: apps snapshotted today / apps ever seen up to today
    # that are still listed (approximated by "seen today or later").
    all_apps = database.app_ids(store)
    last_seen: Dict[int, int] = {}
    first_seen: Dict[int, int] = {}
    for day in days:
        for snapshot in database.snapshots_on(store, day):
            first_seen.setdefault(snapshot.app_id, day)
            last_seen[snapshot.app_id] = day

    coverages: List[float] = []
    for day in days:
        active = [
            app_id
            for app_id in all_apps
            if first_seen[app_id] <= day <= last_seen[app_id]
        ]
        if not active:
            continue
        observed = len(database.snapshots_on(store, day))
        coverages.append(min(1.0, observed / len(active)))
    mean_coverage = sum(coverages) / len(coverages) if coverages else 0.0

    # Monotonicity: cumulative counters never decrease.
    violations: List[Tuple[int, int, str]] = []
    previous_counters: Dict[int, Tuple[int, int]] = {}
    for day in days:
        for snapshot in database.snapshots_on(store, day):
            counters = (snapshot.total_downloads, snapshot.comment_count)
            before = previous_counters.get(snapshot.app_id)
            if before is not None:
                if counters[0] < before[0]:
                    violations.append((day, snapshot.app_id, "downloads"))
                if counters[1] < before[1]:
                    violations.append((day, snapshot.app_id, "comments"))
            previous_counters[snapshot.app_id] = counters

    stale = tuple(
        app_id for app_id in all_apps if last_seen[app_id] < days[-1]
    )
    return CrawlQualityReport(
        store=store,
        n_days=len(days),
        expected_cadence=cadence,
        missing_days=tuple(missing),
        apps_observed=len(all_apps),
        mean_daily_coverage=mean_coverage,
        monotonicity_violations=tuple(violations),
        stale_apps=stale,
    )
