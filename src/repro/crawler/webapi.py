"""The store's web interface, as the crawler sees it.

The paper's crawlers interact with each appstore only through its public
website: paged app listings, per-app statistics pages, comment pages, and
APK downloads.  This module wraps an :class:`repro.marketplace.store.AppStore`
behind exactly that interface, including the hostile bits the paper had to
engineer around:

- per-client rate limiting (crawlers exceeding the threshold get throttled
  and, if persistent, blacklisted);
- geo-blocking: Chinese stores serve only clients whose address is in
  China (which is why the paper proxied through Chinese PlanetLab nodes).

For chaos runs the API additionally accepts a
:class:`repro.resilience.faults.FaultInjector`: scheduled transient
errors surface as store-side failures, and scheduled corruptions turn an
app's statistics page into garbage the crawler must detect and re-fetch
(stores really do intermittently serve broken pages; the paper's
crawlers validated and re-visited).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crawler.ratelimit import RateLimitExceeded, TokenBucket
from repro.marketplace.entities import AppStatistics, Comment
from repro.marketplace.store import AppStore
from repro.resilience.faults import FaultInjector, FaultKind


class GeoBlockedError(Exception):
    """Raised when a client's country is refused by the store."""


@dataclass(frozen=True)
class AppPage:
    """The publicly visible page of one app."""

    app_id: int
    name: str
    category: str
    developer_id: int
    price: float
    declares_ads: bool
    statistics: AppStatistics
    version_names: Tuple[str, ...]


def corrupted_page(page: AppPage) -> AppPage:
    """A garbage rendering of an app page (what a broken store serves).

    The corruption is detectable by :func:`page_is_corrupt`, which is how
    the crawler knows to throw the page away and re-fetch.
    """
    broken = AppStatistics(
        app_id=page.app_id,
        total_downloads=-1,
        rating_sum=0,
        rating_count=-1,
        comment_count=-1,
        version_name="",
        price=page.price,
    )
    return replace(page, name="", statistics=broken, version_names=())


def page_is_corrupt(page: AppPage) -> bool:
    """Whether an app page fails basic integrity validation."""
    stats = page.statistics
    return (
        not page.name
        or not stats.version_name
        or stats.total_downloads < 0
        or stats.rating_count < 0
        or stats.comment_count < 0
    )


@dataclass(frozen=True)
class ApkDownload:
    """The payload of an APK fetch."""

    app_id: int
    version_name: str
    package_name: str
    size_mb: float
    embedded_libraries: Tuple[str, ...]


class StoreWebApi:
    """Paged, throttled, geo-fenced view over a simulated store.

    Parameters
    ----------
    store:
        The live marketplace.
    page_size:
        Apps per listing page.
    requests_per_second:
        Per-client token-bucket rate (in simulated seconds).
    allowed_countries:
        Client countries the store serves; ``None`` means everyone.
        The Chinese stores in the paper effectively require ``("cn",)``.
    blacklist_threshold:
        Number of rate-limit violations after which a client address is
        blocked outright.
    fault_injector:
        Optional chaos hook; scheduled ``TRANSIENT_ERROR`` faults fire
        as store-side failures and ``CORRUPT_SNAPSHOT`` faults garble
        app pages.
    """

    def __init__(
        self,
        store: AppStore,
        page_size: int = 50,
        requests_per_second: float = 10.0,
        allowed_countries: Optional[Sequence[str]] = None,
        blacklist_threshold: int = 50,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be positive")
        if requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        if blacklist_threshold < 1:
            raise ValueError("blacklist_threshold must be positive")
        self._store = store
        self.page_size = page_size
        self.requests_per_second = requests_per_second
        self._allowed_countries = (
            tuple(allowed_countries) if allowed_countries is not None else None
        )
        self.blacklist_threshold = blacklist_threshold
        self._faults = fault_injector
        self._buckets: Dict[str, TokenBucket] = {}
        self._violations: Dict[str, int] = {}
        self._blacklisted: set = set()
        self.requests_served = 0

    @property
    def store_name(self) -> str:
        """Name of the backing store."""
        return self._store.name

    @property
    def requires_country(self) -> Optional[str]:
        """The single country required by geo-blocking, if exactly one."""
        if self._allowed_countries and len(self._allowed_countries) == 1:
            return self._allowed_countries[0]
        return None

    def is_blacklisted(self, client: str) -> bool:
        """Whether a client address has been blocked."""
        return client in self._blacklisted

    def _admit(self, client: str, country: str, now: float) -> None:
        """Gatekeeping common to all endpoints."""
        if self._faults is not None:
            self._faults.maybe_raise_transient(now, where=self.store_name)
        if client in self._blacklisted:
            raise GeoBlockedError(f"client {client} is blacklisted")
        if (
            self._allowed_countries is not None
            and country not in self._allowed_countries
        ):
            raise GeoBlockedError(
                f"store {self.store_name} does not serve country {country!r}"
            )
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(
                rate=self.requests_per_second,
                capacity=max(1.0, self.requests_per_second),
            )
            self._buckets[client] = bucket
        try:
            bucket.consume_or_raise(now)
        except RateLimitExceeded:
            self._violations[client] = self._violations.get(client, 0) + 1
            if self._violations[client] >= self.blacklist_threshold:
                self._blacklisted.add(client)
            raise
        self.requests_served += 1

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def list_page(
        self, page: int, client: str, country: str, now: float
    ) -> List[int]:
        """One page of listed app IDs (ordering is stable day to day)."""
        if page < 0:
            raise ValueError("page must be non-negative")
        self._admit(client, country, now)
        listed = self._store.listed_app_ids()
        start = page * self.page_size
        return listed[start : start + self.page_size]

    def n_pages(self, client: str, country: str, now: float) -> int:
        """Number of listing pages currently available."""
        self._admit(client, country, now)
        listed = len(self._store.listed_app_ids())
        return (listed + self.page_size - 1) // self.page_size

    def app_page(
        self, app_id: int, client: str, country: str, now: float
    ) -> AppPage:
        """The statistics page of one app."""
        self._admit(client, country, now)
        app = self._store.app(app_id)
        if app.listing_day > self._store.day:
            raise KeyError(f"app {app_id} is not listed yet")
        page = AppPage(
            app_id=app.app_id,
            name=app.name,
            category=app.category,
            developer_id=app.developer_id,
            price=app.price,
            declares_ads=app.declares_ads,
            statistics=self._store.statistics(app_id),
            version_names=tuple(v.version_name for v in app.versions),
        )
        if self._faults is not None and self._faults.take(
            now, FaultKind.CORRUPT_SNAPSHOT, detail=f"corrupted page of app {app_id}"
        ):
            return corrupted_page(page)
        return page

    def app_comments(
        self, app_id: int, client: str, country: str, now: float
    ) -> List[Comment]:
        """All public comments of an app (with timestamps and ratings)."""
        self._admit(client, country, now)
        return self._store.comments_for_app(app_id)

    def download_apk(
        self, app_id: int, client: str, country: str, now: float
    ) -> ApkDownload:
        """Fetch the current APK of an app.

        The paper downloads each version exactly once so crawling does not
        inflate the store's download counters; accordingly this endpoint
        does *not* touch the download ledger.
        """
        self._admit(client, country, now)
        app = self._store.app(app_id)
        version = app.current_version
        if version is None:
            raise KeyError(f"app {app_id} has no released version")
        return ApkDownload(
            app_id=app_id,
            version_name=version.version_name,
            package_name=version.apk.package_name,
            size_mb=version.apk.size_mb,
            embedded_libraries=version.apk.embedded_libraries,
        )
