"""Token-bucket rate limiting.

The stores the paper crawled enforce per-client request thresholds (the
Chinese stores also rate-limit foreign clients aggressively).  Both sides
of our simulation use the same primitive: the store's web API throttles
each client address, and the crawler self-throttles to stay compliant.

The bucket runs on a simulated clock (a float timestamp the caller
advances), so crawls of months of store time execute in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Absolute slack (in tokens) absorbing float rounding in the refill
#: arithmetic, so the ``retry_after`` hint of :class:`RateLimitExceeded`
#: is always sufficient: ``deficit / rate * rate`` can round one ULP
#: below ``deficit``, and the caller's ``now + retry_after`` loses
#: precision at large clock values.  A millionth of a request is far
#: below anything the simulation can observe.
TOKEN_EPSILON = 1e-6


class RateLimitExceeded(Exception):
    """Raised by the web API when a client exceeds its request budget."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"rate limit exceeded; retry after {retry_after:.3f}s")
        self.retry_after = retry_after


@dataclass
class TokenBucket:
    """A classic token bucket on an external clock.

    Parameters
    ----------
    rate:
        Tokens replenished per unit of simulated time.
    capacity:
        Maximum tokens the bucket can hold (burst size).
    """

    rate: float
    capacity: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self._tokens = self.capacity
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise ValueError(
                f"clock moved backwards: {now} < {self._last_refill}"
            )
        elapsed = now - self._last_refill
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last_refill = now

    def try_consume(self, now: float, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` at time ``now``; False if unavailable."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        self._refill(now)
        if self._tokens + TOKEN_EPSILON >= tokens:
            self._tokens = max(0.0, self._tokens - tokens)
            return True
        return False

    def consume_or_raise(self, now: float, tokens: float = 1.0) -> None:
        """Consume or raise :class:`RateLimitExceeded` with a retry hint."""
        if not self.try_consume(now, tokens):
            deficit = tokens - self._tokens
            raise RateLimitExceeded(retry_after=deficit / self.rate)

    def time_until_available(self, now: float, tokens: float = 1.0) -> float:
        """Simulated seconds until ``tokens`` will be available."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        if tokens > self.capacity:
            raise ValueError("requested tokens exceed bucket capacity")
        self._refill(now)
        if self._tokens + TOKEN_EPSILON >= tokens:
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def available_tokens(self) -> float:
        """Tokens currently in the bucket (as of the last refill)."""
        return self._tokens
