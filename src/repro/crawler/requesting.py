"""Sans-IO request engine shared by the batch crawler and the service.

The retry/breaker/pacing ladder in :class:`~repro.crawler.crawler.StoreCrawler`
must behave *identically* whether it is driven synchronously (batch
campaigns advance a private simulated clock) or asynchronously (the
always-on service's clients sleep on the virtual event loop).  Rather
than maintain two copies of that ladder, this module expresses it once
as a **generator protocol**:

- :meth:`RequestEngine.request_steps` yields every point where the
  caller must let time pass, as a non-negative number of seconds;
- the driver advances its notion of "now" by that amount (``clock +=
  delay`` for the sync crawler, ``await asyncio.sleep(delay)`` for an
  async client) and ``send()``s the new timestamp back in;
- the endpoint's result comes back as the generator's return value
  (``StopIteration.value``), and failures propagate as the same
  exceptions the crawler has always raised (:class:`CrawlError`,
  :class:`ProxiesExhausted`,
  :class:`~repro.resilience.errors.WorkerCrashed`).

Because the engine never touches a clock or an event loop itself, its
RNG draw order, metric increments, and fault-trace records are a pure
function of the (endpoint, args, now) sequence fed to it -- which is
what makes the service's dataset fingerprint reproducible against the
batch scheduler.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Set, Tuple

from repro.crawler.proxies import NoProxyAvailable, ProxyError, ProxyPool
from repro.crawler.ratelimit import RateLimitExceeded, TokenBucket
from repro.crawler.webapi import GeoBlockedError, StoreWebApi, page_is_corrupt
from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.errors import SnapshotCorrupted, TransientFault, WorkerCrashed
from repro.resilience.faults import FaultInjector, FaultKind
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CrawlError",
    "ProxiesExhausted",
    "RequestEngine",
]


class CrawlError(Exception):
    """Raised when a request cannot be completed after all retries."""


class ProxiesExhausted(CrawlError):
    """Raised when no live, non-blacklisted proxy can serve a store.

    Attributes
    ----------
    store_name:
        The store whose request could not be routed.
    country:
        The geo constraint in force, if any.
    """

    def __init__(self, store_name: str, country: Optional[str] = None) -> None:
        constraint = f" in country {country!r}" if country else ""
        super().__init__(
            f"proxy pool exhausted for store {store_name!r}{constraint}: "
            "every proxy is dead, blacklisted, or geo-mismatched"
        )
        self.store_name = store_name
        self.country = country


class RequestEngine:
    """One store-facing request pipeline: pacing, proxies, breakers, retry.

    Parameters mirror the crawler's: the engine owns the token-bucket
    pacer, the per-proxy circuit breakers, and the retry RNG, but holds
    **no clock** -- every timestamp is supplied by whoever drives
    :meth:`request_steps`.

    ``stats`` is any object exposing the request-level counters of
    :class:`~repro.crawler.crawler.CrawlStats` (``requests``,
    ``retries``, ``rate_limit_hits``, ``proxy_failures``,
    ``proxy_pick_failures``, ``transient_faults``, ``corrupt_pages``,
    ``breaker_skips``, ``backoff_seconds``); the engine increments it
    in place so driver and engine share one view.
    """

    def __init__(
        self,
        api: StoreWebApi,
        proxy_pool: ProxyPool,
        requests_per_second: float,
        retry_policy: RetryPolicy,
        breaker_factory,
        fault_injector: Optional[FaultInjector],
        retry_rng,
        stats,
        metrics: MetricsRegistry,
    ) -> None:
        self._api = api
        self._proxies = proxy_pool
        self._pacer = TokenBucket(
            rate=requests_per_second, capacity=max(1.0, requests_per_second)
        )
        self.retry_policy = retry_policy
        self._breaker_factory = breaker_factory
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._faults = fault_injector
        self._retry_rng = retry_rng
        self.stats = stats
        self._metrics = metrics

    @property
    def api(self) -> StoreWebApi:
        """The store web interface this engine talks to."""
        return self._api

    @property
    def proxy_pool(self) -> ProxyPool:
        """The pool requests are routed through."""
        return self._proxies

    def _breaker(self, proxy_id: int) -> CircuitBreaker:
        breaker = self._breakers.get(proxy_id)
        if breaker is None:
            breaker = self._breaker_factory()
            self._breakers[proxy_id] = breaker
        return breaker

    def _scheduled_fault_steps(
        self, now: float
    ) -> Generator[float, float, float]:
        """Consume crawler-side faults that have come due on the clock.

        Clock-skew events are yielded one at a time (each event's
        magnitude separately) so the driver's accumulated timestamp is
        bit-for-bit the same whether it adds the magnitudes itself or
        sleeps them on an event loop.
        """
        injector = self._faults
        if injector is None:
            return now
        for event in injector.take_all(now, FaultKind.CLOCK_SKEW):
            now = yield event.magnitude
            injector.record(
                event, now, f"clock skewed forward {event.magnitude:.3f}s"
            )
        for event in injector.take_all(now, FaultKind.PROXY_DEATH):
            victims = self._proxies.alive_proxies()
            if not victims:
                injector.record(event, now, "no proxy left to kill")
                continue
            victim = victims[int(injector.rng.integers(0, len(victims)))]
            self._proxies.kill(victim.proxy_id)
            injector.record(event, now, f"killed proxy {victim.proxy_id}")
        crash = injector.take_all(now, FaultKind.WORKER_CRASH)
        if crash:
            injector.record(crash[0], now, "crawl worker crashed")
            # Any sibling crash events due at the same instant are folded
            # into one crash; the supervisor restarts the whole day anyway.
            for extra in crash[1:]:
                injector.record(extra, now, "folded into same crash")
            raise WorkerCrashed(
                f"crawl worker crashed at t={now:.3f}s (scheduled fault)"
            )
        return now

    def _pick_proxy(self, country: Optional[str], now: float):
        """Pick a proxy whose circuit breaker admits a call right now.

        Falls back to ignoring the breakers when every healthy proxy is
        open (better a doomed attempt than a stalled crawl), and raises
        :class:`ProxiesExhausted` when no healthy proxy exists at all.
        """
        store = self._api.store_name
        open_ids: Set[int] = {
            proxy_id
            for proxy_id, breaker in self._breakers.items()
            if not breaker.allow(now)
        }
        try:
            return self._proxies.pick(store, country, exclude=open_ids)
        except NoProxyAvailable:
            # Not silent: a failed constrained pick is the first signal a
            # pool is going under, and production debugging needs it on a
            # counter -- even (especially) when degradation recovers.
            self.stats.proxy_pick_failures += 1
            self._metrics.counter("crawler.proxy_pick_failures").add(1)
        if open_ids:
            # Every admissible proxy is breaker-open; degrade by probing
            # one of them rather than deadlocking the crawl.
            self.stats.breaker_skips += 1
            self._metrics.counter("crawler.breaker_skips").add(1)
            try:
                return self._proxies.pick(store, country)
            except NoProxyAvailable as error:
                raise ProxiesExhausted(store, country) from error
        raise ProxiesExhausted(store, country)

    def request_steps(
        self, endpoint, args: Tuple, now: float
    ) -> Generator[float, float, object]:
        """Issue one request through a proxy, retrying under the policy.

        Transient proxy errors, rate-limit hits, geo-blocks, injected
        store errors, and corrupt pages all count against the policy's
        attempt budget.  Every point where simulated time must pass --
        retry backoff, injected clock skew, self-pacing, a store's
        ``retry_after`` -- is yielded as a non-negative duration in
        seconds; the driver must advance its clock by exactly that much
        and ``send()`` the resulting timestamp back.
        """
        country = self._api.requires_country
        policy = self.retry_policy
        metrics = self._metrics
        stats = self.stats
        last_error: Optional[Exception] = None
        for attempt in range(policy.max_attempts):
            if attempt > 0:
                delay = policy.delay(attempt - 1, self._retry_rng)
                now = yield delay
                stats.backoff_seconds += delay
                stats.retries += 1
                metrics.counter("crawler.retries").add(1)
            now = yield from self._scheduled_fault_steps(now)

            # Self-pacing: wait until the crawler's own budget allows
            # another request.  The wait is yielded even when zero so an
            # async driver always has a scheduling point per attempt.
            wait = self._pacer.time_until_available(now)
            now = yield wait
            self._pacer.try_consume(now)

            proxy = self._pick_proxy(country, now)
            breaker = self._breaker(proxy.proxy_id)
            try:
                self._proxies.request_through(proxy)
            except ProxyError as error:
                stats.proxy_failures += 1
                metrics.counter("crawler.proxy_failures").add(1)
                breaker.record_failure(now)
                last_error = error
                continue
            client = f"proxy-{proxy.proxy_id}"
            try:
                result = endpoint(*args, client, proxy.country, now)
            except RateLimitExceeded as error:
                stats.rate_limit_hits += 1
                metrics.counter("crawler.rate_limit_hits").add(1)
                now = yield error.retry_after
                # A throttle is the store talking, not the proxy failing;
                # the breaker does not count it.
                last_error = error
                continue
            except GeoBlockedError as error:
                # The store blocked this proxy; drop it and retry elsewhere.
                self._proxies.blacklist(proxy.proxy_id, self._api.store_name)
                breaker.record_failure(now)
                last_error = error
                continue
            except TransientFault as error:
                stats.transient_faults += 1
                metrics.counter("crawler.transient_faults").add(1)
                breaker.record_failure(now)
                last_error = error
                continue
            if endpoint == self._api.app_page and page_is_corrupt(result):
                stats.corrupt_pages += 1
                metrics.counter("crawler.corrupt_pages").add(1)
                breaker.record_success(now)
                last_error = SnapshotCorrupted(
                    f"corrupt page for app {args[0]} via {client}"
                )
                continue
            stats.requests += 1
            metrics.counter("crawler.requests").add(1)
            if attempt > 0:
                # The whole point of the retry budget: failures that the
                # policy absorbed end-to-end, visible per run.
                metrics.counter("crawler.requests_recovered").add(1)
            breaker.record_success(now)
            return result
        raise CrawlError(
            f"request failed after {policy.max_attempts} attempts: {last_error}"
        )
