"""The crawler's proxy pool.

The paper routed crawl requests through roughly 100 PlanetLab nodes acting
as HTTP proxies, picking one at random per request to avoid IP
blacklisting, and restricted crawls of the Chinese stores (Anzhi,
AppChina) to the PlanetLab nodes located in China because those stores
rate-limit foreign clients.

This module simulates that pool: proxies have a country tag, can fail
transiently, and can be blacklisted by a store; the pool hands out a
random healthy proxy matching the store's geographic requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.stats.rng import SeedLike, make_rng


class ProxyError(Exception):
    """Raised when a request through a proxy fails."""


class NoProxyAvailable(ProxyError):
    """Raised when the pool has no healthy proxy matching the constraints."""


@dataclass
class Proxy:
    """One proxy node (a PlanetLab host in the paper's setup)."""

    proxy_id: int
    country: str
    failure_rate: float = 0.02
    blacklisted_by: Set[str] = field(default_factory=set)
    requests_served: int = 0
    failures: int = 0
    alive: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")

    def is_blacklisted(self, store_name: str) -> bool:
        """Whether this proxy has been blocked by the given store."""
        return store_name in self.blacklisted_by


class ProxyPool:
    """A pool of proxies with geo filtering and failure injection.

    Parameters
    ----------
    proxies:
        The proxy fleet.
    seed:
        Randomness for proxy selection and failure injection.
    """

    def __init__(self, proxies: Sequence[Proxy], seed: SeedLike = None) -> None:
        if not proxies:
            raise ValueError("proxy pool must not be empty")
        ids = [proxy.proxy_id for proxy in proxies]
        if len(set(ids)) != len(ids):
            raise ValueError("proxy ids must be unique")
        self._proxies: Dict[int, Proxy] = {p.proxy_id: p for p in proxies}
        self._rng = make_rng(seed)

    @classmethod
    def planetlab_like(
        cls,
        n_proxies: int = 100,
        china_fraction: float = 0.2,
        failure_rate: float = 0.02,
        seed: SeedLike = None,
    ) -> "ProxyPool":
        """Build a pool shaped like the paper's PlanetLab deployment."""
        if n_proxies < 1:
            raise ValueError("n_proxies must be positive")
        if not 0.0 <= china_fraction <= 1.0:
            raise ValueError("china_fraction must be in [0, 1]")
        rng = make_rng(seed)
        n_china = int(round(china_fraction * n_proxies))
        other_countries = ("us", "de", "gr", "uk", "jp", "fr", "nl")
        proxies = []
        for proxy_id in range(n_proxies):
            if proxy_id < n_china:
                country = "cn"
            else:
                country = str(rng.choice(other_countries))
            proxies.append(
                Proxy(proxy_id=proxy_id, country=country, failure_rate=failure_rate)
            )
        return cls(proxies, seed=rng)

    @property
    def size(self) -> int:
        """Total number of proxies (healthy or not)."""
        return len(self._proxies)

    def proxies(self) -> List[Proxy]:
        """All proxies (live objects, not copies)."""
        return list(self._proxies.values())

    def alive_proxies(self) -> List[Proxy]:
        """Proxies that have not been killed, regardless of blacklists."""
        return [proxy for proxy in self._proxies.values() if proxy.alive]

    def healthy_proxies(
        self, store_name: str, country: Optional[str] = None
    ) -> List[Proxy]:
        """Proxies usable for a store: alive, not blacklisted, matching
        country."""
        return [
            proxy
            for proxy in self._proxies.values()
            if proxy.alive
            and not proxy.is_blacklisted(store_name)
            and (country is None or proxy.country == country)
        ]

    def pick(
        self,
        store_name: str,
        country: Optional[str] = None,
        exclude: Optional[Set[int]] = None,
    ) -> Proxy:
        """Pick a random healthy proxy for a store.

        ``exclude`` removes specific proxy ids from consideration (the
        crawler passes the ids whose circuit breakers are open).  Raises
        :class:`NoProxyAvailable` when the constraints cannot be met --
        e.g. every Chinese node has been blacklisted or killed.
        """
        candidates = self.healthy_proxies(store_name, country)
        if exclude:
            candidates = [p for p in candidates if p.proxy_id not in exclude]
        if not candidates:
            raise NoProxyAvailable(
                f"no healthy proxy for store {store_name!r}"
                + (f" in country {country!r}" if country else "")
            )
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def kill(self, proxy_id: int) -> None:
        """Take a proxy permanently offline (a node dying mid-crawl)."""
        try:
            self._proxies[proxy_id].alive = False
        except KeyError:
            raise KeyError(f"unknown proxy id {proxy_id}") from None

    def request_through(self, proxy: Proxy) -> None:
        """Account for one request through ``proxy``; may inject a failure.

        Raises :class:`ProxyError` on a simulated transient failure (the
        crawler retries with a different proxy).
        """
        proxy.requests_served += 1
        if self._rng.random() < proxy.failure_rate:
            proxy.failures += 1
            raise ProxyError(f"transient failure on proxy {proxy.proxy_id}")

    def blacklist(self, proxy_id: int, store_name: str) -> None:
        """Record that a store has blocked a proxy's address."""
        try:
            self._proxies[proxy_id].blacklisted_by.add(store_name)
        except KeyError:
            raise KeyError(f"unknown proxy id {proxy_id}") from None
