"""Snapshot database: what the crawler stores, and what analyses consume.

The paper's crawlers write every observation to a local database: per-app
daily statistics, all user comments, and every APK version.  This module
is that database's **row-shaped façade**: the same dataclass-in,
dataclass-out API the analysis layer has always consumed, now backed by
the out-of-core columnar engine in :mod:`repro.store`.  Snapshots live
in per-(store, day) chunks sorted by app id, so day queries are O(chunk)
slices instead of full-database scans; comments and APK index entries
live in per-store insertion-ordered logs.

Two persistence formats round-trip losslessly:

- **JSONL** (``save``/``load`` on a file): one record per line, the
  interchange format;
- **packed columnar** (``pack``/``load`` on a directory): one ``.npy``
  per column, read back zero-copy via ``np.load(mmap_mode="r")`` so a
  paper-scale crawl streams from disk instead of materializing.

Exactness contract: for the same observations, ``fingerprint()`` returns
the same hex no matter which path the data travelled (in-memory, JSONL
round trip, packed + mmap) -- the chaos suite depends on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.marketplace.entities import Comment, is_free_price
from repro.store import (
    ColumnarStore,
    DownloadMatrix,
    SnapshotChunk,
    is_packed_dataset,
    open_store,
    pack_store,
)
from repro.store.schema import SNAPSHOT_COLUMNS


@dataclass(frozen=True)
class AppSnapshot:
    """One (app, day) observation from a crawl."""

    store: str
    day: int
    app_id: int
    name: str
    category: str
    developer_id: int
    price: float
    declares_ads: bool
    total_downloads: int
    rating_count: int
    average_rating: float
    comment_count: int
    version_name: str

    @property
    def is_free(self) -> bool:
        """Whether the app was listed as free on this crawl day."""
        return is_free_price(self.price)

    @property
    def is_paid(self) -> bool:
        """Whether the app was listed with a price on this crawl day."""
        return not is_free_price(self.price)


@dataclass(frozen=True)
class ApkRecord:
    """One APK version archived by the crawler."""

    store: str
    app_id: int
    version_name: str
    package_name: str
    size_mb: float
    embedded_libraries: Tuple[str, ...]


class SnapshotColumns:
    """Zero-copy columnar view of one (store, day) snapshot chunk.

    The vectorized counterpart of :meth:`SnapshotDatabase.snapshots_on`:
    ``column(name)`` returns the raw frozen array (string-valued fields
    as intern-table ids), ``decoded(name)`` a per-row string list, and
    the string tables themselves are exposed for bincount-style group
    work (``category_names`` et al., index == id).
    """

    def __init__(self, chunk: SnapshotChunk, store: ColumnarStore) -> None:
        self._chunk = chunk
        self._store = store

    @property
    def store(self) -> str:
        return self._chunk.store

    @property
    def day(self) -> int:
        return self._chunk.day

    @property
    def n_rows(self) -> int:
        return self._chunk.n_rows

    def column(self, name: str) -> np.ndarray:
        """One raw column array (``name_id`` etc. for string fields)."""
        return self._chunk.column(name)

    @property
    def app_ids(self) -> np.ndarray:
        return self._chunk.app_ids()

    @property
    def name_tables(self) -> Tuple[str, ...]:
        return self._store.names.values()

    @property
    def category_names(self) -> Tuple[str, ...]:
        return self._store.categories.values()

    @property
    def version_names(self) -> Tuple[str, ...]:
        return self._store.versions.values()

    def decoded(self, name: str) -> List[str]:
        """A string-valued column decoded to one string per row."""
        tables = {
            "name_id": self._store.names,
            "category_id": self._store.categories,
            "version_id": self._store.versions,
        }
        if name not in tables:
            raise KeyError(f"{name!r} is not a string-valued column")
        return tables[name].decode(self.column(name).tolist())


class SnapshotDatabase:
    """Crawl database façade over the columnar store.

    Snapshots are indexed by (store, day, app_id); comments and APKs are
    appended.  Query helpers return the shapes the analysis layer wants:
    per-app download vectors on a day, per-app deltas between days, and
    per-user comment streams -- plus columnar accessors
    (:meth:`snapshot_columns`, :meth:`download_matrix`) for analyses
    that want arrays instead of dataclasses.
    """

    def __init__(self, columnar: Optional[ColumnarStore] = None) -> None:
        self._store = columnar if columnar is not None else ColumnarStore()

    @property
    def columnar(self) -> ColumnarStore:
        """The backing columnar engine (column-shaped access)."""
        return self._store

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def add_snapshot(self, snapshot: AppSnapshot) -> None:
        """Insert or overwrite one (store, day, app) observation."""
        self._store.add_snapshot_row(
            snapshot.store,
            snapshot.day,
            snapshot.app_id,
            snapshot.name,
            snapshot.category,
            snapshot.developer_id,
            snapshot.price,
            snapshot.declares_ads,
            snapshot.total_downloads,
            snapshot.rating_count,
            snapshot.average_rating,
            snapshot.comment_count,
            snapshot.version_name,
        )

    def add_comments(self, store: str, comments: Iterable[Comment]) -> None:
        """Append comments, de-duplicating observations across daily crawls.

        The crawler re-fetches every comment page daily; only comments not
        yet recorded are added (identity = user, app, day, rating).
        """
        for comment in comments:
            self._store.add_comment_row(
                store, comment.user_id, comment.app_id, comment.day, comment.rating
            )

    def add_apk(self, apk: ApkRecord) -> bool:
        """Archive an APK version; returns False when already stored.

        The paper downloads each app version exactly once.
        """
        return self._store.add_apk_row(
            apk.store,
            apk.app_id,
            apk.version_name,
            apk.package_name,
            apk.size_mb,
            tuple(apk.embedded_libraries),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def stores(self) -> List[str]:
        """Store names present in the database."""
        return self._store.snapshot_stores()

    def days(self, store: str) -> List[int]:
        """Crawled days for a store, ascending."""
        return self._store.days(store)

    def _materialize(self, chunk: SnapshotChunk, rows=None) -> List[AppSnapshot]:
        """Dataclass rows of one chunk (all rows, or a row selection)."""
        columns = {}
        for name in SNAPSHOT_COLUMNS:
            array = chunk.column(name)
            columns[name] = (array if rows is None else array[rows]).tolist()
        names = self._store.names.values()
        categories = self._store.categories.values()
        versions = self._store.versions.values()
        store, day = chunk.store, chunk.day
        return [
            AppSnapshot(
                store=store,
                day=day,
                app_id=app_id,
                name=names[name_id],
                category=categories[category_id],
                developer_id=developer_id,
                price=price,
                declares_ads=declares_ads,
                total_downloads=total_downloads,
                rating_count=rating_count,
                average_rating=average_rating,
                comment_count=comment_count,
                version_name=versions[version_id],
            )
            for (
                app_id,
                name_id,
                category_id,
                developer_id,
                price,
                declares_ads,
                total_downloads,
                rating_count,
                average_rating,
                comment_count,
                version_id,
            ) in zip(*(columns[name] for name in SNAPSHOT_COLUMNS))
        ]

    def snapshots_on(self, store: str, day: int) -> List[AppSnapshot]:
        """All app snapshots of a store on one day, ascending app id."""
        chunk = self._store.chunk(store, day)
        if chunk is None:
            return []
        return self._materialize(chunk)

    def snapshot(self, store: str, day: int, app_id: int) -> Optional[AppSnapshot]:
        """One observation, or None when the app was not crawled that day."""
        chunk = self._store.chunk(store, day)
        if chunk is None:
            return None
        row = chunk.row_index(app_id)
        if row is None:
            return None
        return self._materialize(chunk, rows=np.array([row]))[0]

    def app_ids(self, store: str) -> List[int]:
        """Every app ever observed in a store."""
        return self._store.app_ids(store).tolist()

    def snapshot_columns(
        self, store: str, day: int
    ) -> Optional[SnapshotColumns]:
        """Columnar view of one (store, day), or None when not crawled."""
        chunk = self._store.chunk(store, day)
        if chunk is None:
            return None
        return SnapshotColumns(chunk, self._store)

    def download_vector(self, store: str, day: int) -> np.ndarray:
        """Per-app total downloads on a day (order: ascending app id).

        A zero-copy, read-only view of the chunk's column; ``.astype``
        or ``np.array(...)`` it before mutating.
        """
        return self._store.download_vector(store, day)

    def download_matrix(self, store: str) -> DownloadMatrix:
        """Dense days x apps download matrix of one store (vectorized)."""
        return self._store.download_matrix(store)

    def download_deltas(
        self, store: str, first_day: int, last_day: int
    ) -> Dict[int, int]:
        """Per-app download growth between two crawled days.

        Apps that appeared after ``first_day`` are counted from zero.
        """
        app_ids, deltas = self._store.download_deltas_arrays(
            store, first_day, last_day
        )
        return dict(zip(app_ids.tolist(), deltas.tolist()))

    def update_counts(
        self, store: str, first_day: int, last_day: int
    ) -> Dict[int, int]:
        """Per-app number of version changes observed between two days.

        One grouped pass over the window's chunks (the legacy
        implementation re-scanned the whole database once per day).
        """
        app_ids, counts = self._store.update_counts_arrays(
            store, first_day, last_day
        )
        return dict(zip(app_ids.tolist(), counts.tolist()))

    def comments(self, store: str) -> List[Comment]:
        """All comments of a store in insertion order."""
        log = self._store.comment_log(store)
        if log is None or len(log) == 0:
            return []
        columns = log.arrays()
        return [
            Comment(user_id=user_id, app_id=app_id, day=day, rating=rating)
            for user_id, app_id, day, rating in zip(
                columns["user_id"].tolist(),
                columns["app_id"].tolist(),
                columns["day"].tolist(),
                columns["rating"].tolist(),
            )
        ]

    def comment_streams(self, store: str) -> Dict[int, List[Comment]]:
        """Per-user comment streams in chronological order."""
        streams: Dict[int, List[Comment]] = {}
        for comment in self.comments(store):
            streams.setdefault(comment.user_id, []).append(comment)
        for stream in streams.values():
            stream.sort(key=lambda c: c.day)
        return streams

    def apks(self, store: str) -> List[ApkRecord]:
        """All archived APK versions for a store, archive order."""
        log = self._store.apk_log(store)
        if log is None or len(log) == 0:
            return []
        columns = log.arrays()
        versions = self._store.versions.values()
        packages = self._store.packages.values()
        libsets = self._store.libsets.values()
        order = np.argsort(columns["seq"], kind="stable")
        return [
            ApkRecord(
                store=store,
                app_id=app_id,
                version_name=versions[version_id],
                package_name=packages[package_id],
                size_mb=size_mb,
                embedded_libraries=libsets[libset_id],
            )
            for app_id, version_id, package_id, size_mb, libset_id in zip(
                columns["app_id"][order].tolist(),
                columns["version_id"][order].tolist(),
                columns["package_id"][order].tolist(),
                columns["size_mb"][order].tolist(),
                columns["libset_id"][order].tolist(),
            )
        ]

    def latest_apk_per_app(self, store: str) -> Dict[int, ApkRecord]:
        """The most recently archived APK version of every app.

        "Latest" is defined by the explicit archive sequence number each
        entry carries, not by container order -- a save/load round trip
        or chunk-sorted storage can never silently reorder it.
        """
        log = self._store.apk_log(store)
        if log is None or len(log) == 0:
            return {}
        columns = log.arrays()
        # Sort by (app_id, seq); the last row of each app run is the
        # highest sequence number, i.e. the most recent archive.
        order = np.lexsort((columns["seq"], columns["app_id"]))
        app_ids = columns["app_id"][order]
        keep = np.empty(app_ids.size, dtype=np.bool_)
        keep[:-1] = app_ids[1:] != app_ids[:-1]
        keep[-1] = True
        rows = order[keep]
        versions = self._store.versions.values()
        packages = self._store.packages.values()
        libsets = self._store.libsets.values()
        return {
            app_id: ApkRecord(
                store=store,
                app_id=app_id,
                version_name=versions[version_id],
                package_name=packages[package_id],
                size_mb=size_mb,
                embedded_libraries=libsets[libset_id],
            )
            for app_id, version_id, package_id, size_mb, libset_id in zip(
                columns["app_id"][rows].tolist(),
                columns["version_id"][rows].tolist(),
                columns["package_id"][rows].tolist(),
                columns["size_mb"][rows].tolist(),
                columns["libset_id"][rows].tolist(),
            )
        }

    def fingerprint(self) -> str:
        """Order-independent SHA-256 over the full database contents.

        Two databases holding the same observations hash identically no
        matter what order the crawler recorded them in -- which is what
        lets chaos tests assert that a crawl under an aggressive fault
        plan recovered the *exact* dataset of the fault-free run.  The
        hex is byte-identical across the in-memory, JSONL, and packed
        columnar representations of the same observations.
        """
        return self._store.fingerprint()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dump_jsonl(self, handle) -> int:
        """Stream the database as JSONL to a text handle; returns lines.

        Snapshots stream in canonical chunk order, comments in insertion
        order, APKs in archive order.  APK records carry their archive
        sequence number (``seq``) so the "latest version" ordering
        survives any re-serialization; readers that predate the field
        simply ignore it.
        """
        lines = 0
        for chunk in self._store.chunks():
            for snapshot in self._materialize(chunk):
                record = {
                    "kind": "snapshot",
                    "store": snapshot.store,
                    "day": snapshot.day,
                    "app_id": snapshot.app_id,
                    "name": snapshot.name,
                    "category": snapshot.category,
                    "developer_id": snapshot.developer_id,
                    "price": snapshot.price,
                    "declares_ads": snapshot.declares_ads,
                    "total_downloads": snapshot.total_downloads,
                    "rating_count": snapshot.rating_count,
                    "average_rating": snapshot.average_rating,
                    "comment_count": snapshot.comment_count,
                    "version_name": snapshot.version_name,
                }
                handle.write(json.dumps(record) + "\n")
                lines += 1
        for store in self._store.comment_stores():
            for comment in self.comments(store):
                handle.write(
                    json.dumps(
                        {
                            "kind": "comment",
                            "store": store,
                            "user_id": comment.user_id,
                            "app_id": comment.app_id,
                            "day": comment.day,
                            "rating": comment.rating,
                        }
                    )
                    + "\n"
                )
                lines += 1
        for store in self._store.apk_stores():
            for sequence, apk in enumerate(self.apks(store)):
                handle.write(
                    json.dumps(
                        {
                            "kind": "apk",
                            "store": apk.store,
                            "app_id": apk.app_id,
                            "version_name": apk.version_name,
                            "package_name": apk.package_name,
                            "size_mb": apk.size_mb,
                            "embedded_libraries": list(apk.embedded_libraries),
                            "seq": sequence,
                        }
                    )
                    + "\n"
                )
                lines += 1
        return lines

    def save(self, path) -> None:
        """Write the database to a JSONL file."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            self.dump_jsonl(handle)

    def pack(self, path) -> int:
        """Write the packed columnar form; returns bytes on disk."""
        return pack_store(self._store, path)

    @classmethod
    def load(cls, path) -> "SnapshotDatabase":
        """Read a database saved as JSONL, or open a packed directory.

        A packed directory opens lazily: columns are mmap-loaded on
        first touch, so the resident set stays a small fraction of the
        dataset (see docs/architecture.md, "Out-of-core columnar
        snapshot store").
        """
        path = Path(path)
        if is_packed_dataset(path):
            return cls(columnar=open_store(path))
        database = cls()
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.pop("kind")
                if kind == "snapshot":
                    database.add_snapshot(AppSnapshot(**record))
                elif kind == "comment":
                    store = record.pop("store")
                    database.add_comments(store, [Comment(**record)])
                elif kind == "apk":
                    record.pop("seq", None)
                    record["embedded_libraries"] = tuple(
                        record["embedded_libraries"]
                    )
                    database.add_apk(ApkRecord(**record))
                else:
                    raise ValueError(f"unknown record kind {kind!r}")
        return database
