"""Snapshot database: what the crawler stores, and what analyses consume.

The paper's crawlers write every observation to a local database: per-app
daily statistics, all user comments, and every APK version.  This module
is that database, kept in memory with optional JSONL persistence so a
multi-day crawl can be saved and reloaded without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.marketplace.entities import Comment, is_free_price


@dataclass(frozen=True)
class AppSnapshot:
    """One (app, day) observation from a crawl."""

    store: str
    day: int
    app_id: int
    name: str
    category: str
    developer_id: int
    price: float
    declares_ads: bool
    total_downloads: int
    rating_count: int
    average_rating: float
    comment_count: int
    version_name: str

    @property
    def is_free(self) -> bool:
        """Whether the app was listed as free on this crawl day."""
        return is_free_price(self.price)

    @property
    def is_paid(self) -> bool:
        """Whether the app was listed with a price on this crawl day."""
        return not is_free_price(self.price)


@dataclass(frozen=True)
class ApkRecord:
    """One APK version archived by the crawler."""

    store: str
    app_id: int
    version_name: str
    package_name: str
    size_mb: float
    embedded_libraries: Tuple[str, ...]


class SnapshotDatabase:
    """In-memory crawl database with JSONL import/export.

    Snapshots are indexed by (store, day, app_id); comments and APKs are
    appended.  Query helpers return the shapes the analysis layer wants:
    per-app download vectors on a day, per-app deltas between days, and
    per-user comment streams.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[Tuple[str, int, int], AppSnapshot] = {}
        self._comments: Dict[str, List[Comment]] = {}
        self._comment_keys: Dict[str, set] = {}
        self._apks: Dict[Tuple[str, int, str], ApkRecord] = {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def add_snapshot(self, snapshot: AppSnapshot) -> None:
        """Insert or overwrite one (store, day, app) observation."""
        key = (snapshot.store, snapshot.day, snapshot.app_id)
        self._snapshots[key] = snapshot

    def add_comments(self, store: str, comments: Iterable[Comment]) -> None:
        """Append comments, de-duplicating observations across daily crawls.

        The crawler re-fetches every comment page daily; only comments not
        yet recorded are added (identity = user, app, day, rating).
        """
        existing = self._comments.setdefault(store, [])
        seen = self._comment_keys.setdefault(store, set())
        for comment in comments:
            key = (comment.user_id, comment.app_id, comment.day, comment.rating)
            if key not in seen:
                existing.append(comment)
                seen.add(key)

    def add_apk(self, apk: ApkRecord) -> bool:
        """Archive an APK version; returns False when already stored.

        The paper downloads each app version exactly once.
        """
        key = (apk.store, apk.app_id, apk.version_name)
        if key in self._apks:
            return False
        self._apks[key] = apk
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def stores(self) -> List[str]:
        """Store names present in the database."""
        return sorted({key[0] for key in self._snapshots})

    def days(self, store: str) -> List[int]:
        """Crawled days for a store, ascending."""
        return sorted({key[1] for key in self._snapshots if key[0] == store})

    def snapshots_on(self, store: str, day: int) -> List[AppSnapshot]:
        """All app snapshots of a store on one day."""
        return [
            snapshot
            for (s, d, _), snapshot in self._snapshots.items()
            if s == store and d == day
        ]

    def snapshot(self, store: str, day: int, app_id: int) -> Optional[AppSnapshot]:
        """One observation, or None when the app was not crawled that day."""
        return self._snapshots.get((store, day, app_id))

    def app_ids(self, store: str) -> List[int]:
        """Every app ever observed in a store."""
        return sorted({key[2] for key in self._snapshots if key[0] == store})

    def download_vector(self, store: str, day: int) -> np.ndarray:
        """Per-app total downloads on a day (order: ascending app id)."""
        snapshots = self.snapshots_on(store, day)
        if not snapshots:
            raise KeyError(f"no snapshots for store {store!r} on day {day}")
        snapshots.sort(key=lambda s: s.app_id)
        return np.array([s.total_downloads for s in snapshots], dtype=np.int64)

    def download_deltas(
        self, store: str, first_day: int, last_day: int
    ) -> Dict[int, int]:
        """Per-app download growth between two crawled days.

        Apps that appeared after ``first_day`` are counted from zero.
        """
        start = {s.app_id: s.total_downloads for s in self.snapshots_on(store, first_day)}
        end = {s.app_id: s.total_downloads for s in self.snapshots_on(store, last_day)}
        if not end:
            raise KeyError(f"no snapshots for store {store!r} on day {last_day}")
        return {
            app_id: downloads - start.get(app_id, 0)
            for app_id, downloads in end.items()
        }

    def update_counts(
        self, store: str, first_day: int, last_day: int
    ) -> Dict[int, int]:
        """Per-app number of version changes observed between two days."""
        first = {
            s.app_id: s.version_name for s in self.snapshots_on(store, first_day)
        }
        versions_seen: Dict[int, set] = {}
        for day in self.days(store):
            if day < first_day or day > last_day:
                continue
            for snapshot in self.snapshots_on(store, day):
                versions_seen.setdefault(snapshot.app_id, set()).add(
                    snapshot.version_name
                )
        return {
            app_id: max(0, len(versions) - 1)
            for app_id, versions in versions_seen.items()
        }

    def comments(self, store: str) -> List[Comment]:
        """All comments of a store in insertion order."""
        return list(self._comments.get(store, []))

    def comment_streams(self, store: str) -> Dict[int, List[Comment]]:
        """Per-user comment streams in chronological order."""
        streams: Dict[int, List[Comment]] = {}
        for comment in self._comments.get(store, []):
            streams.setdefault(comment.user_id, []).append(comment)
        for stream in streams.values():
            stream.sort(key=lambda c: c.day)
        return streams

    def apks(self, store: str) -> List[ApkRecord]:
        """All archived APK versions for a store."""
        return [apk for key, apk in self._apks.items() if key[0] == store]

    def latest_apk_per_app(self, store: str) -> Dict[int, ApkRecord]:
        """The most recently archived APK version of every app."""
        latest: Dict[int, ApkRecord] = {}
        for record in self.apks(store):
            latest[record.app_id] = record
        return latest

    def fingerprint(self) -> str:
        """Order-independent SHA-256 over the full database contents.

        Two databases holding the same observations hash identically no
        matter what order the crawler recorded them in -- which is what
        lets chaos tests assert that a crawl under an aggressive fault
        plan recovered the *exact* dataset of the fault-free run.
        """
        digest = hashlib.sha256()
        for key in sorted(self._snapshots):
            record = {"kind": "snapshot", **asdict(self._snapshots[key])}
            digest.update(json.dumps(record, sort_keys=True).encode("utf-8"))
        for store in sorted(self._comments):
            ordered = sorted(
                self._comments[store],
                key=lambda c: (c.user_id, c.app_id, c.day, c.rating),
            )
            for comment in ordered:
                record = {"kind": "comment", "store": store, **asdict(comment)}
                digest.update(json.dumps(record, sort_keys=True).encode("utf-8"))
        for key in sorted(self._apks):
            record = {"kind": "apk", **asdict(self._apks[key])}
            record["embedded_libraries"] = list(self._apks[key].embedded_libraries)
            digest.update(json.dumps(record, sort_keys=True).encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Write the database to a JSONL file."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for snapshot in self._snapshots.values():
                handle.write(
                    json.dumps({"kind": "snapshot", **asdict(snapshot)}) + "\n"
                )
            for store, comments in self._comments.items():
                for comment in comments:
                    handle.write(
                        json.dumps(
                            {"kind": "comment", "store": store, **asdict(comment)}
                        )
                        + "\n"
                    )
            for apk in self._apks.values():
                record = asdict(apk)
                record["embedded_libraries"] = list(apk.embedded_libraries)
                handle.write(json.dumps({"kind": "apk", **record}) + "\n")

    @classmethod
    def load(cls, path) -> "SnapshotDatabase":
        """Read a database previously written by :meth:`save`."""
        path = Path(path)
        database = cls()
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.pop("kind")
                if kind == "snapshot":
                    database.add_snapshot(AppSnapshot(**record))
                elif kind == "comment":
                    store = record.pop("store")
                    database.add_comments(store, [Comment(**record)])
                elif kind == "apk":
                    record["embedded_libraries"] = tuple(
                        record["embedded_libraries"]
                    )
                    database.add_apk(ApkRecord(**record))
                else:
                    raise ValueError(f"unknown record kind {kind!r}")
        return database
