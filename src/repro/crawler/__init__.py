"""Data-collection substrate: the paper's crawling architecture, simulated.

Figure 1 of the paper shows the collection pipeline: per-store crawlers
(Scrapy + a headless browser for dynamic pages) route their HTTP requests
through a pool of ~100 PlanetLab proxies (Chinese nodes for the Chinese
stores, which rate-limit foreign clients), fetch per-app statistics pages
and APKs daily, and store everything in a local database.

We rebuild that pipeline against the simulated stores:

- :mod:`repro.crawler.ratelimit` -- token-bucket rate limiting, used both
  by the store front-end (to throttle abusive clients) and by the crawler
  (to stay under the store's threshold).
- :mod:`repro.crawler.proxies` -- the proxy pool with geographic tags,
  failure injection, and blacklist survival.
- :mod:`repro.crawler.webapi` -- the store's "web interface": paged app
  listings, per-app statistic pages, comment pages, and APK fetches, with
  geo-blocking and per-client throttling.
- :mod:`repro.crawler.database` -- the snapshot database (daily per-app
  records, comments, APK versions) with JSONL persistence.
- :mod:`repro.crawler.crawler` -- the crawl engine: initial full snapshot
  then daily incremental revisits.
- :mod:`repro.crawler.scheduler` -- drives stores and crawlers through a
  multi-day campaign, producing the dataset the analysis layer consumes.
"""

from repro.crawler.crawler import (
    CrawlError,
    CrawlStats,
    ProxiesExhausted,
    StoreCrawler,
)
from repro.crawler.database import AppSnapshot, SnapshotDatabase
from repro.crawler.proxies import Proxy, ProxyError, ProxyPool
from repro.crawler.ratelimit import RateLimitExceeded, TokenBucket
from repro.crawler.scheduler import CrawlCampaign, run_crawl_campaign
from repro.crawler.webapi import GeoBlockedError, StoreWebApi

__all__ = [
    "AppSnapshot",
    "CrawlCampaign",
    "CrawlError",
    "CrawlStats",
    "GeoBlockedError",
    "ProxiesExhausted",
    "Proxy",
    "ProxyError",
    "ProxyPool",
    "RateLimitExceeded",
    "SnapshotDatabase",
    "StoreCrawler",
    "StoreWebApi",
    "TokenBucket",
    "run_crawl_campaign",
]
