"""Crawl campaigns: store simulation interleaved with daily crawls.

A campaign binds a simulated store and a crawler together and plays out
the paper's measurement timeline: a warmup phase where the store runs
without observation (accumulating the pre-crawl download history), then a
crawl phase where each simulated day ends with a crawler visit.  The
result is the :class:`repro.crawler.database.SnapshotDatabase` the whole
analysis layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crawler.crawler import StoreCrawler
from repro.crawler.database import SnapshotDatabase
from repro.crawler.proxies import ProxyPool
from repro.crawler.webapi import StoreWebApi
from repro.marketplace.generator import GeneratedStore, build_store
from repro.marketplace.profiles import StoreProfile
from repro.obs.metrics import get_registry
from repro.obs.timing import span
from repro.resilience.errors import ResilienceError, WorkerCrashed
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.stats.rng import SeedLike, derive_seed, make_rng

# Chinese stores geo-fence their web APIs; the crawler must route their
# requests through proxies located in China (paper, Section 2.2).
_GEO_FENCED_STORES = ("anzhi", "appchina")


@dataclass
class CrawlCampaign:
    """The artifacts of one completed measurement campaign."""

    generated: GeneratedStore
    database: SnapshotDatabase
    crawler: StoreCrawler
    first_crawl_day: int
    last_crawl_day: int
    fault_injector: Optional[FaultInjector] = None
    worker_restarts: int = field(default=0)

    @property
    def store_name(self) -> str:
        """Name of the crawled store."""
        return self.generated.store.name

    @property
    def crawled_days(self) -> List[int]:
        """The days on which snapshots were taken."""
        return self.database.days(self.store_name)


def run_crawl_campaign(
    profile: StoreProfile,
    seed: SeedLike = None,
    database: Optional[SnapshotDatabase] = None,
    proxy_pool: Optional[ProxyPool] = None,
    fetch_comments: bool = True,
    crawl_every: int = 1,
    keep_download_log: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    max_worker_restarts: int = 5,
) -> CrawlCampaign:
    """Generate a store, warm it up, and crawl it daily.

    Parameters
    ----------
    profile:
        The store's scale/behaviour profile.
    seed:
        Master seed; the store and the crawler get derived substreams.
    database:
        An existing database to crawl into (so several stores can share
        one, as the paper's collection host did).
    proxy_pool:
        Shared proxy fleet; a PlanetLab-like pool is created if omitted.
    fetch_comments:
        Whether the crawler collects comment pages (needed for the
        affinity study; Anzhi is the store the paper uses for it).
    crawl_every:
        Crawl every N-th day (1 = daily, like the paper).
    keep_download_log:
        Whether the store keeps its raw event log (needed only by tests
        and the cache experiments).
    fault_plan:
        Optional chaos schedule; its faults are injected into the web
        API and the crawler, and the campaign supervises worker crashes
        by re-running the crashed day (database writes are idempotent).
    max_worker_restarts:
        Worker crashes tolerated across the campaign before giving up.
    """
    if crawl_every < 1:
        raise ValueError("crawl_every must be >= 1")
    if max_worker_restarts < 0:
        raise ValueError("max_worker_restarts must be non-negative")
    base_seed = int(make_rng(seed).integers(0, 2**62))
    generated = build_store(
        profile,
        seed=derive_seed(base_seed, "store"),
        keep_download_log=keep_download_log,
    )
    store = generated.store
    database = database if database is not None else SnapshotDatabase()
    if proxy_pool is None:
        proxy_pool = ProxyPool.planetlab_like(
            n_proxies=100, seed=derive_seed(base_seed, "proxies")
        )

    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    allowed = ("cn",) if profile.name in _GEO_FENCED_STORES else None
    api = StoreWebApi(store, allowed_countries=allowed, fault_injector=injector)
    crawler = StoreCrawler(
        api,
        database,
        proxy_pool,
        fault_injector=injector,
        seed=derive_seed(base_seed, "crawler-retry"),
    )

    # Warmup: the store lives unobserved, accumulating download history.
    store.advance_days(profile.warmup_days)

    # Crawl phase: each simulated day ends with a crawler visit that
    # observes the day's closing statistics.  A crashed crawl worker is
    # restarted on the same day: the store does not advance during a
    # crawl and the database is idempotent, so the re-run observes and
    # records exactly the same data.
    first_crawl_day = store.day
    last_crawl_day = first_crawl_day
    worker_restarts = 0
    metrics = get_registry()
    for offset in range(profile.crawl_days):
        store.advance_day()
        observed_day = store.day - 1
        if offset % crawl_every == 0 or offset == profile.crawl_days - 1:
            while True:
                try:
                    with span("campaign/crawl_day", clock=lambda: crawler.clock):
                        crawler.crawl_day(observed_day, fetch_comments=fetch_comments)
                    break
                except WorkerCrashed as crash:
                    worker_restarts += 1
                    metrics.counter("scheduler.worker_restarts").add(1)
                    if worker_restarts > max_worker_restarts:
                        raise ResilienceError(
                            f"crawl worker crashed {worker_restarts} times "
                            f"(limit {max_worker_restarts}); giving up on "
                            f"day {observed_day}"
                        ) from crash
            metrics.counter("scheduler.days_crawled").add(1)
            last_crawl_day = observed_day
    return CrawlCampaign(
        generated=generated,
        database=database,
        crawler=crawler,
        first_crawl_day=first_crawl_day,
        last_crawl_day=last_crawl_day,
        fault_injector=injector,
        worker_restarts=worker_restarts,
    )


def run_multi_store_campaign(
    profiles: Dict[str, StoreProfile],
    seed: SeedLike = None,
    fetch_comments_for: Optional[List[str]] = None,
    crawl_every: int = 1,
) -> Dict[str, CrawlCampaign]:
    """Crawl several stores into one shared database (the paper's setup).

    ``fetch_comments_for`` limits comment collection to specific stores
    (the paper's affinity study only needed Anzhi's comments, which carry
    precise timestamps).
    """
    database = SnapshotDatabase()
    base_seed = int(make_rng(seed).integers(0, 2**62))
    proxy_pool = ProxyPool.planetlab_like(
        n_proxies=100, seed=derive_seed(base_seed, "proxies")
    )
    campaigns: Dict[str, CrawlCampaign] = {}
    for name, profile in profiles.items():
        fetch_comments = (
            fetch_comments_for is None or name in fetch_comments_for
        )
        campaigns[name] = run_crawl_campaign(
            profile,
            seed=derive_seed(base_seed, "campaign", name),
            database=database,
            proxy_pool=proxy_pool,
            fetch_comments=fetch_comments,
            crawl_every=crawl_every,
        )
    return campaigns
