"""Export crawled data as CSV for downstream analytics tools.

The snapshot database's native format is JSONL (lossless round trip);
these exporters flatten the three record kinds into CSVs that load
directly into pandas/R/spreadsheets, which is how a measurement group
would actually hand the dataset to collaborators.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional

from repro.crawler.database import SnapshotDatabase


def export_snapshots_csv(
    database: SnapshotDatabase, path, store: Optional[str] = None
) -> int:
    """Write all (store, day, app) snapshots to CSV; returns row count."""
    path = Path(path)
    stores = [store] if store is not None else database.stores()
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "store",
                "day",
                "app_id",
                "name",
                "category",
                "developer_id",
                "price",
                "declares_ads",
                "total_downloads",
                "rating_count",
                "average_rating",
                "comment_count",
                "version_name",
            ]
        )
        for store_name in stores:
            for day in database.days(store_name):
                for snapshot in database.snapshots_on(store_name, day):
                    writer.writerow(
                        [
                            snapshot.store,
                            snapshot.day,
                            snapshot.app_id,
                            snapshot.name,
                            snapshot.category,
                            snapshot.developer_id,
                            snapshot.price,
                            int(snapshot.declares_ads),
                            snapshot.total_downloads,
                            snapshot.rating_count,
                            f"{snapshot.average_rating:.4f}",
                            snapshot.comment_count,
                            snapshot.version_name,
                        ]
                    )
                    rows += 1
    return rows


def export_comments_csv(
    database: SnapshotDatabase, path, store: Optional[str] = None
) -> int:
    """Write all comments to CSV; returns row count."""
    path = Path(path)
    stores = [store] if store is not None else database.stores()
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["store", "user_id", "app_id", "day", "rating"])
        for store_name in stores:
            for comment in database.comments(store_name):
                writer.writerow(
                    [store_name, comment.user_id, comment.app_id, comment.day,
                     comment.rating]
                )
                rows += 1
    return rows


def export_apks_csv(
    database: SnapshotDatabase, path, store: Optional[str] = None
) -> int:
    """Write the APK archive index to CSV; returns row count.

    Embedded libraries are joined with ``;`` in a single column.
    """
    path = Path(path)
    stores = [store] if store is not None else database.stores()
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["store", "app_id", "version_name", "package_name", "size_mb",
             "embedded_libraries"]
        )
        for store_name in stores:
            for apk in database.apks(store_name):
                writer.writerow(
                    [
                        apk.store,
                        apk.app_id,
                        apk.version_name,
                        apk.package_name,
                        f"{apk.size_mb:.2f}",
                        ";".join(apk.embedded_libraries),
                    ]
                )
                rows += 1
    return rows
