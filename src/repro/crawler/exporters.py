"""Export crawled data as CSV for downstream analytics tools.

The snapshot database's native format is JSONL (lossless round trip);
these exporters flatten the three record kinds into CSVs that load
directly into pandas/R/spreadsheets, which is how a measurement group
would actually hand the dataset to collaborators.

Rows are produced a columnar batch at a time: each (store, day) chunk is
decoded once per column (string ids through the intern tables, numerics
via ``.tolist()``) and handed to ``csv.writer.writerows`` zipped, so the
export never materializes per-row dataclasses.  The output is
byte-identical to the row-at-a-time formatting it replaced.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional

import numpy as np

from repro.crawler.database import SnapshotDatabase

SNAPSHOT_CSV_HEADER = [
    "store",
    "day",
    "app_id",
    "name",
    "category",
    "developer_id",
    "price",
    "declares_ads",
    "total_downloads",
    "rating_count",
    "average_rating",
    "comment_count",
    "version_name",
]

COMMENT_CSV_HEADER = ["store", "user_id", "app_id", "day", "rating"]

APK_CSV_HEADER = [
    "store",
    "app_id",
    "version_name",
    "package_name",
    "size_mb",
    "embedded_libraries",
]


def export_snapshots_csv(
    database: SnapshotDatabase, path, store: Optional[str] = None
) -> int:
    """Write all (store, day, app) snapshots to CSV; returns row count."""
    path = Path(path)
    stores = [store] if store is not None else database.stores()
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SNAPSHOT_CSV_HEADER)
        for store_name in stores:
            for day in database.days(store_name):
                columns = database.snapshot_columns(store_name, day)
                if columns is None:
                    continue
                n_rows = columns.n_rows
                writer.writerows(
                    zip(
                        [store_name] * n_rows,
                        [day] * n_rows,
                        columns.app_ids.tolist(),
                        columns.decoded("name_id"),
                        columns.decoded("category_id"),
                        columns.column("developer_id").tolist(),
                        columns.column("price").tolist(),
                        columns.column("declares_ads")
                        .astype(np.int64)
                        .tolist(),
                        columns.column("total_downloads").tolist(),
                        columns.column("rating_count").tolist(),
                        [
                            f"{rating:.4f}"
                            for rating in columns.column(
                                "average_rating"
                            ).tolist()
                        ],
                        columns.column("comment_count").tolist(),
                        columns.decoded("version_id"),
                    )
                )
                rows += n_rows
    return rows


def export_comments_csv(
    database: SnapshotDatabase, path, store: Optional[str] = None
) -> int:
    """Write all comments to CSV; returns row count."""
    path = Path(path)
    stores = [store] if store is not None else database.stores()
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(COMMENT_CSV_HEADER)
        for store_name in stores:
            log = database.columnar.comment_log(store_name)
            if log is None or len(log) == 0:
                continue
            columns = log.arrays()
            n_rows = int(columns["user_id"].size)
            writer.writerows(
                zip(
                    [store_name] * n_rows,
                    columns["user_id"].tolist(),
                    columns["app_id"].tolist(),
                    columns["day"].tolist(),
                    columns["rating"].tolist(),
                )
            )
            rows += n_rows
    return rows


def export_apks_csv(
    database: SnapshotDatabase, path, store: Optional[str] = None
) -> int:
    """Write the APK archive index to CSV; returns row count.

    Embedded libraries are joined with ``;`` in a single column.
    """
    path = Path(path)
    stores = [store] if store is not None else database.stores()
    columnar = database.columnar
    versions = columnar.versions.values()
    packages = columnar.packages.values()
    libsets = columnar.libsets.values()
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(APK_CSV_HEADER)
        for store_name in stores:
            log = columnar.apk_log(store_name)
            if log is None or len(log) == 0:
                continue
            columns = log.arrays()
            order = np.argsort(columns["seq"], kind="stable")
            n_rows = int(order.size)
            writer.writerows(
                zip(
                    [store_name] * n_rows,
                    columns["app_id"][order].tolist(),
                    [
                        versions[version_id]
                        for version_id in columns["version_id"][order].tolist()
                    ],
                    [
                        packages[package_id]
                        for package_id in columns["package_id"][order].tolist()
                    ],
                    [
                        f"{size:.2f}"
                        for size in columns["size_mb"][order].tolist()
                    ],
                    [
                        ";".join(libsets[libset_id])
                        for libset_id in columns["libset_id"][order].tolist()
                    ],
                )
            )
            rows += n_rows
    return rows
