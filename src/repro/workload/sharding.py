"""Sharded multi-process campaign runner for the download models.

The rejection-free kernels push a single process to millions of events
per second, but the paper-scale ambition ("Mining Behavioral Patterns
from Millions of Android Users") is tens of millions of *users* -- and a
fetch-at-most-once ledger over 10M users wants both more memory and more
cores than one process should hold.  Users are independent in every
model, so the population is the natural parallel axis.

The unit of work is a **block**: a fixed-size contiguous range of users
with its own child seed (spawned from the spec seed via
``SeedSequence``, exactly like multi-seed replication) and its own slice
of the download budget (cumulative proportional split, telescoping to
the exact total).  Blocks, not shards, define the campaign:

- a block's event stream depends only on the spec and the block's
  (index, size, budget, seed) -- never on which shard ran it or on how
  many shards exist;
- shard ``s`` of ``n`` owns blocks ``s, s + n, s + 2n, ...`` (round-
  robin by block index), each worker process simulating its blocks in
  ascending index order with a per-block private
  :class:`~repro.obs.metrics.MetricsRegistry`;
- the parent merges per-block counts and metrics snapshots in **global
  block-index order**, regardless of completion order.

Together these make the exactness contract structural: for a fixed
``(spec, block_size)``, every shard count -- including ``n_shards=1``
run serially in-process -- produces byte-identical per-app counts,
event streams, and merged metrics.  The result carries a sha256
fingerprint of the counts so campaigns can assert it cheaply.

Within a block the engine is the ordinary round-vectorized stream; the
only statistical difference from an unblocked run is that the random
split of downloads over users happens per block instead of globally --
the same user-independence argument that justifies round vectorization.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import EventBatch
from repro.core.models import ModelKind
from repro.obs.metrics import MetricsRegistry, get_registry, use_registry
from repro.stats.rng import make_seed_sequence
from repro.workload.generators import WorkloadSpec

#: Default number of users per block.  Matches the engine's event-batch
#: chunk: big enough that per-block setup (ledger, budgets) amortizes,
#: small enough that a 10M-user campaign still yields ~150 blocks to
#: spread over workers.
DEFAULT_BLOCK_SIZE = 65_536


@dataclass(frozen=True)
class BlockTask:
    """One block of users: the atomic, shard-independent unit of work.

    ``segment`` names the persona segment whose model parameters this
    block draws through (0 for unsegmented specs).  Blocks never span a
    parameter boundary: the planner cuts block edges wherever adjacent
    segments differ in ``(p, zr, zc)``.
    """

    index: int
    user_start: int
    n_users: int
    n_downloads: int
    seed: int
    segment: int = 0


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a campaign into blocks and shards.

    Frozen and picklable, so the whole plan travels to worker processes
    as-is; workers look up their own blocks with :meth:`shard_blocks`.
    """

    spec: WorkloadSpec
    n_shards: int
    block_size: int
    blocks: Tuple[BlockTask, ...]

    @property
    def n_blocks(self) -> int:
        """Number of user blocks in the campaign."""
        return len(self.blocks)

    def shard_blocks(self, shard: int) -> Tuple[BlockTask, ...]:
        """The blocks shard ``shard`` owns, in ascending block index."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
        return self.blocks[shard :: self.n_shards]


def plan_shards(
    spec: WorkloadSpec,
    n_shards: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> ShardPlan:
    """Partition a spec's population into seeded blocks.

    Downloads are split across blocks by the cumulative-floor rule
    ``bound(u) = total * u // n_users`` evaluated at block edges, which
    keeps each block's budget proportional to its size and telescopes to
    exactly ``total_downloads``.  Block seeds come from spawning the
    spec seed's ``SeedSequence`` once per block -- the same derivation
    replication uses per replication seed -- so block streams are
    statistically independent and reproducible from the spec alone.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    n_users = spec.n_users
    total = spec.total_downloads

    # Segment runs: adjacent segments with identical (p, zr, zc) merge
    # into one run, so an equal-parameter partition plans the exact same
    # blocks (and spawns the exact same seeds) as the global profile --
    # that is what extends the byte-exactness contract to segmented specs.
    # Only where parameters actually change does the planner cut a block
    # edge, so no block ever mixes two models.
    bounds = spec.segment_user_boundaries()
    run_starts = [0]
    run_segments = [0]
    if spec.segments is not None:
        for k in range(1, len(spec.segments)):
            previous = spec.segments[k - 1].model_params()
            if spec.segments[k].model_params() != previous:  # repro: noqa=RPL032 -- exact identity decides RNG-stream compatibility, not closeness
                run_starts.append(int(bounds[k]))
                run_segments.append(k)
    # Drop empty runs (zero-weight rounding can collapse a boundary).
    run_edges = run_starts + [n_users]
    keep = [
        i for i in range(len(run_starts)) if run_edges[i] < run_edges[i + 1]
    ]
    run_starts = [run_starts[i] for i in keep]
    run_segments = [run_segments[i] for i in keep]

    grid = np.arange(0, n_users, block_size, dtype=np.int64)
    edges = np.unique(
        np.concatenate(
            [grid, np.asarray(run_starts + [n_users], dtype=np.int64)]
        )
    )
    n_blocks = edges.size - 1
    children = make_seed_sequence(spec.seed).spawn(n_blocks)
    blocks = []
    for index in range(n_blocks):  # repro: noqa=RPL020 -- plan construction, once per block
        start = int(edges[index])
        stop = int(edges[index + 1])
        run = int(np.searchsorted(run_starts, start, side="right")) - 1
        blocks.append(
            BlockTask(
                index=index,
                user_start=start,
                n_users=stop - start,
                n_downloads=(total * stop // n_users)
                - (total * start // n_users),
                seed=int(
                    children[index].generate_state(1, dtype=np.uint64)[0]
                    % (2**31)
                ),
                segment=run_segments[run],
            )
        )
    return ShardPlan(
        spec=spec,
        n_shards=n_shards,
        block_size=block_size,
        blocks=tuple(blocks),
    )


#: Per-block worker outcome: (counts, metrics snapshot, n_events,
#: optional (user_ids, app_indices) event arrays, optional per-segment
#: (n_segments, n_apps) counts).
_BlockOutcome = Tuple[
    np.ndarray,
    Dict[str, dict],
    int,
    Optional[Tuple[np.ndarray, np.ndarray]],
    Optional[np.ndarray],
]


def _block_batches(model, kind: ModelKind, block: BlockTask):
    """The model's batch stream for one block's sub-population."""
    if kind == ModelKind.APP_CLUSTERING:
        return model.iter_batches(
            seed=block.seed,
            n_users=block.n_users,
            total_downloads=block.n_downloads,
        )
    return model.iter_batches(
        block.n_users, block.n_downloads, seed=block.seed
    )


def _simulate_block(
    model, spec: WorkloadSpec, block: BlockTask, collect_events: bool
) -> _BlockOutcome:
    """Run one block under a private registry; ids back in global space.

    The private registry is what makes metrics mergeable in block order:
    each block's counters are captured in isolation, so the parent can
    fold them in deterministically no matter which process or shard ran
    the block.
    """
    registry = MetricsRegistry()
    counts = np.zeros(spec.n_apps, dtype=np.int64)
    n_events = 0
    collected: List[Tuple[np.ndarray, np.ndarray]] = []
    segment_counts: Optional[np.ndarray] = None
    segment_bounds: Optional[np.ndarray] = None
    single_segment: Optional[int] = None
    if spec.segments is not None:
        # Attribute events to *true* segments by user id, not by the
        # block's (possibly merged) model segment: equal-parameter
        # segments share blocks but still report separately.  One
        # vectorized bincount per batch, no RNG consumed.  Most blocks
        # sit entirely inside one true segment (the planner only cuts
        # edges where parameters change, the grid cuts everywhere
        # else), so resolve the segment once per block when possible
        # and reuse the batch's existing count vector.
        segment_counts = np.zeros(
            (len(spec.segments), spec.n_apps), dtype=np.int64
        )
        segment_bounds = spec.segment_user_boundaries()
        first = int(
            np.searchsorted(
                segment_bounds[1:], block.user_start, side="right"
            )
        )
        last = int(
            np.searchsorted(
                segment_bounds[1:],
                block.user_start + block.n_users - 1,
                side="right",
            )
        )
        if first == last:
            single_segment = first
    with use_registry(registry):
        for batch in _block_batches(model, spec.kind, block):
            batch_counts = np.bincount(
                batch.app_indices, minlength=spec.n_apps
            )
            counts += batch_counts
            n_events += len(batch)
            if segment_counts is not None:
                if single_segment is not None:
                    segment_counts[single_segment] += batch_counts
                else:
                    users = batch.user_ids + block.user_start
                    segment_ids = np.searchsorted(
                        segment_bounds[1:], users, side="right"
                    )
                    segment_counts += np.bincount(
                        segment_ids * spec.n_apps + batch.app_indices,
                        minlength=segment_counts.size,
                    ).reshape(segment_counts.shape)
            if collect_events:
                collected.append(
                    (batch.user_ids + block.user_start, batch.app_indices)
                )
    events = None
    if collect_events:
        events = (
            np.concatenate([users for users, _ in collected])
            if collected
            else np.empty(0, dtype=np.int64),
            np.concatenate([apps for _, apps in collected])
            if collected
            else np.empty(0, dtype=np.int64),
        )
    return counts, registry.snapshot(), n_events, events, segment_counts


def _run_shard(
    plan: ShardPlan, shard: int, collect_events: bool
) -> List[Tuple[int, _BlockOutcome]]:
    """Worker: simulate every block a shard owns, in block-index order.

    One model instance per segment serves all of the shard's blocks in
    that segment -- alias tables and head/tail splits depend only on the
    segment's parameters, so building them once per (process, segment)
    instead of once per block is free speedup, and block streams stay
    independent because each block brings its own seed.
    """
    models: Dict[int, object] = {}
    results: List[Tuple[int, _BlockOutcome]] = []
    for block in plan.shard_blocks(shard):  # repro: noqa=RPL020 -- shard work loop, once per block
        model = models.get(block.segment)
        if model is None:
            model = plan.spec.build_segment_model(block.segment)
            models[block.segment] = model
        results.append(
            (
                block.index,
                _simulate_block(model, plan.spec, block, collect_events),
            )
        )
    return results


@dataclass(frozen=True)
class ShardedCampaignResult:
    """Merged output of a sharded campaign.

    ``fingerprint`` is the sha256 of the per-app counts bytes -- equal
    across shard counts by the exactness contract, so two runs can be
    compared without shipping the vectors.  ``events_unfilled`` surfaces
    the engine's dropped-slot counter (saturated users, exhausted
    redraws) so silent saturation is visible in campaign stats.
    """

    counts: np.ndarray
    n_events: int
    events_unfilled: int
    n_shards: int
    n_blocks: int
    block_size: int
    fingerprint: str
    events: Optional[EventBatch] = field(default=None, repr=False)
    segment_counts: Optional[np.ndarray] = field(default=None, repr=False)
    segment_names: Optional[Tuple[str, ...]] = None

    def describe(self) -> str:
        """Deterministic one-paragraph campaign summary."""
        lines = [
            f"sharded campaign: {self.n_events:,} events over "
            f"{self.n_blocks} blocks x {self.block_size:,} users "
            f"({self.n_shards} shards)",
            f"events unfilled: {self.events_unfilled:,}",
            f"counts fingerprint: sha256:{self.fingerprint}",
        ]
        if self.segment_counts is not None:
            names = self.segment_names or tuple(
                f"segment-{index}" for index in range(len(self.segment_counts))
            )
            for name, row in zip(names, self.segment_counts):
                lines.append(f"segment {name}: {int(row.sum()):,} events")
        return "\n".join(lines)


def run_sharded_campaign(
    spec: WorkloadSpec,
    n_shards: int = 1,
    block_size: int = DEFAULT_BLOCK_SIZE,
    use_processes: Optional[bool] = None,
    max_workers: Optional[int] = None,
    collect_events: bool = False,
) -> ShardedCampaignResult:
    """Run a spec's campaign partitioned over ``n_shards`` workers.

    ``use_processes`` defaults to ``n_shards > 1``; pass ``False`` to
    run every shard in-process (identical results -- the process pool
    only changes *where* blocks run, never what they compute).  Merged
    counts, metrics, and (with ``collect_events=True``) the concatenated
    event stream are byte-identical across shard counts for a fixed
    ``(spec, block_size)``; see the module docstring for why.

    ``collect_events`` materializes every event in memory -- meant for
    exactness tests and small campaigns, not for 100M-download runs.
    """
    plan = plan_shards(spec, n_shards, block_size)
    if use_processes is None:
        use_processes = n_shards > 1
    outcomes: Dict[int, _BlockOutcome] = {}
    if use_processes and n_shards > 1:
        with ProcessPoolExecutor(
            max_workers=min(max_workers or n_shards, n_shards)
        ) as pool:
            futures = [
                pool.submit(_run_shard, plan, shard, collect_events)
                for shard in range(n_shards)
            ]
            for future in futures:
                for index, outcome in future.result():
                    outcomes[index] = outcome
    else:
        for shard in range(n_shards):  # repro: noqa=RPL020 -- shard fan-out, not per-event
            for index, outcome in _run_shard(plan, shard, collect_events):
                outcomes[index] = outcome

    # Merge in global block-index order -- NOT completion or shard order
    # -- so float metric accumulation is identical run to run and
    # identical across shard counts.  Only block-derived metrics are
    # recorded here; anything keyed on the shard count would break the
    # "merged metrics equal across shard counts" contract.
    metrics = get_registry()
    metrics.counter("sharding.blocks").add(plan.n_blocks)
    counts = np.zeros(spec.n_apps, dtype=np.int64)
    segment_counts = (
        np.zeros((len(spec.segments), spec.n_apps), dtype=np.int64)
        if spec.segments is not None
        else None
    )
    n_events = 0
    events_unfilled = 0
    event_parts: List[Tuple[np.ndarray, np.ndarray]] = []
    for index in range(plan.n_blocks):  # repro: noqa=RPL020 -- merge loop, once per block
        block_counts, snapshot, block_events, events, block_segments = (
            outcomes[index]
        )
        counts += block_counts
        if segment_counts is not None and block_segments is not None:
            segment_counts += block_segments
        n_events += block_events
        events_unfilled += int(
            snapshot.get("counters", {}).get("engine.events_unfilled", 0)
        )
        metrics.merge_snapshot(snapshot)
        if collect_events and events is not None:
            event_parts.append(events)
    metrics.counter("sharding.events").add(n_events)

    merged_events = None
    if collect_events:
        merged_events = EventBatch(
            np.concatenate([users for users, _ in event_parts])
            if event_parts
            else np.empty(0, dtype=np.int64),
            np.concatenate([apps for _, apps in event_parts])
            if event_parts
            else np.empty(0, dtype=np.int64),
        )
    return ShardedCampaignResult(
        counts=counts,
        n_events=n_events,
        events_unfilled=events_unfilled,
        n_shards=n_shards,
        n_blocks=plan.n_blocks,
        block_size=block_size,
        fingerprint=hashlib.sha256(
            np.ascontiguousarray(counts).tobytes()
        ).hexdigest(),
        events=merged_events,
        segment_counts=segment_counts,
        segment_names=(
            spec.segment_names() if spec.segments is not None else None
        ),
    )
