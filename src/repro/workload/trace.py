"""Workload trace persistence: save and replay event streams.

Traces are JSONL files, one event per line, with a header line carrying
the generating spec so a trace is self-describing.  Replaying a trace is
cheaper than regenerating it and guarantees byte-identical workloads
across experiments and machines.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple

from repro.core.models import DownloadEvent, ModelKind
from repro.workload.generators import WorkloadSpec


def write_trace(path, events: Iterable[DownloadEvent], spec: Optional[WorkloadSpec] = None) -> int:
    """Write an event stream to a JSONL trace; returns the event count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        if spec is not None:
            header = asdict(spec)
            header["kind"] = spec.kind.value
            handle.write(json.dumps({"header": header}) + "\n")
        for event in events:
            handle.write(f"{event.user_id} {event.app_index}\n")
            count += 1
    return count


def read_trace(path) -> Tuple[Optional[WorkloadSpec], Iterator[DownloadEvent]]:
    """Open a trace; returns (spec or None, lazy event iterator).

    The iterator holds the file open until exhausted; consume it fully or
    discard it promptly.
    """
    path = Path(path)
    handle = path.open("r", encoding="utf-8")
    first = handle.readline()
    spec: Optional[WorkloadSpec] = None
    pending_line: Optional[str] = None
    if first:
        stripped = first.strip()
        if stripped.startswith("{"):
            record = json.loads(stripped)
            header = record.get("header")
            if header is not None:
                header["kind"] = ModelKind(header["kind"])
                if header.get("cluster_of") is not None:
                    header["cluster_of"] = tuple(header["cluster_of"])
                spec = WorkloadSpec(**header)
            else:
                raise ValueError(f"unrecognized trace header in {path}")
        else:
            pending_line = first

    def iterate() -> Iterator[DownloadEvent]:
        try:
            if pending_line is not None:
                yield _parse_event(pending_line)
            for line in handle:
                if line.strip():
                    yield _parse_event(line)
        finally:
            handle.close()

    return spec, iterate()


def _parse_event(line: str) -> DownloadEvent:
    parts = line.split()
    if len(parts) != 2:
        raise ValueError(f"malformed trace line: {line!r}")
    return DownloadEvent(user_id=int(parts[0]), app_index=int(parts[1]))
