"""Configured workload generators over the three download models.

A :class:`WorkloadSpec` captures everything needed to regenerate an event
stream deterministically (model kind, population sizes, Zipf exponents,
clustering parameters, seed), so experiments can share identical
workloads and ablations can vary one knob at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.engine import EventBatch, counts_from_batches
from repro.core.models import (
    AppClusteringModel,
    AppClusteringParams,
    DownloadEvent,
    ModelKind,
    ZipfAtMostOnceModel,
    ZipfModel,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible workload definition.

    The defaults are the paper's Figure 19 configuration scaled only in
    counts: apps divided into equal clusters, ``zr = 1.7``, ``zc = 1.4``,
    ``p = 0.9``.
    """

    kind: ModelKind
    n_apps: int
    n_users: int
    total_downloads: int
    zr: float = 1.7
    zc: float = 1.4
    p: float = 0.9
    n_clusters: int = 30
    cluster_of: Optional[Tuple[int, ...]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_apps < 1 or self.n_users < 1:
            raise ValueError("n_apps and n_users must be positive")
        if self.total_downloads < 0:
            raise ValueError("total_downloads must be non-negative")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be positive")

    def with_kind(self, kind: ModelKind) -> "WorkloadSpec":
        """The same workload under a different model (for comparisons)."""
        return replace(self, kind=kind)

    def cluster_assignment(self) -> np.ndarray:
        """Cluster index per app (round-robin unless explicitly given)."""
        if self.cluster_of is not None:
            return np.asarray(self.cluster_of, dtype=np.int64)
        return np.arange(self.n_apps, dtype=np.int64) % self.n_clusters

    def build_model(self):
        """Instantiate the configured model object."""
        if self.kind == ModelKind.ZIPF:
            return ZipfModel(self.n_apps, self.zr)
        if self.kind == ModelKind.ZIPF_AT_MOST_ONCE:
            return ZipfAtMostOnceModel(self.n_apps, self.zr)
        if self.kind == ModelKind.APP_CLUSTERING:
            return AppClusteringModel(
                AppClusteringParams(
                    n_apps=self.n_apps,
                    n_users=self.n_users,
                    total_downloads=self.total_downloads,
                    zr=self.zr,
                    zc=self.zc,
                    p=self.p,
                    n_clusters=self.n_clusters,
                    cluster_of=self.cluster_of,
                )
            )
        raise ValueError(f"unknown model kind: {self.kind!r}")

    def events(self) -> Iterator[DownloadEvent]:
        """A fresh event stream for this spec (deterministic in the seed)."""
        return make_workload(self)

    def event_batches(self) -> Iterator[EventBatch]:
        """A fresh vectorized batch stream for this spec (the hot path)."""
        return make_workload_batches(self)

    def download_counts(self) -> np.ndarray:
        """Materialize the per-app download counts of this workload."""
        return counts_from_batches(self.event_batches(), self.n_apps)


def make_workload(spec: WorkloadSpec) -> Iterator[DownloadEvent]:
    """Instantiate the model of a spec and return its event stream."""
    model = spec.build_model()
    if spec.kind == ModelKind.APP_CLUSTERING:
        return model.iter_events(seed=spec.seed)
    return model.iter_events(spec.n_users, spec.total_downloads, seed=spec.seed)


def make_workload_batches(spec: WorkloadSpec) -> Iterator[EventBatch]:
    """Instantiate the model of a spec and return its batch stream."""
    model = spec.build_model()
    if spec.kind == ModelKind.APP_CLUSTERING:
        return model.iter_batches(seed=spec.seed)
    return model.iter_batches(spec.n_users, spec.total_downloads, seed=spec.seed)


def figure19_spec(
    kind: ModelKind = ModelKind.APP_CLUSTERING,
    scale: float = 1.0,
    seed: int = 0,
) -> WorkloadSpec:
    """The paper's Figure 19 appstore, optionally scaled down.

    At ``scale=1``: 60,000 apps in 30 categories, 600,000 users, and
    2,000,000 downloads with ``zr=1.7``, ``zc=1.4``, ``p=0.9``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return WorkloadSpec(
        kind=kind,
        n_apps=max(30, int(60_000 * scale)),
        n_users=max(10, int(600_000 * scale)),
        total_downloads=max(1, int(2_000_000 * scale)),
        zr=1.7,
        zc=1.4,
        p=0.9,
        n_clusters=30,
        seed=seed,
    )
