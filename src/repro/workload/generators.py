"""Configured workload generators over the three download models.

A :class:`WorkloadSpec` captures everything needed to regenerate an event
stream deterministically (model kind, population sizes, Zipf exponents,
clustering parameters, seed), so experiments can share identical
workloads and ablations can vary one knob at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.engine import EventBatch, counts_from_batches
from repro.core.models import (
    AppClusteringModel,
    AppClusteringParams,
    DownloadEvent,
    ModelKind,
    ZipfAtMostOnceModel,
    ZipfModel,
)
from repro.marketplace.behavior import BehaviorParams
from repro.marketplace.segments import (
    Persona,
    default_personas,
    draw_segment_params,
    segment_boundaries,
)


@dataclass(frozen=True)
class SegmentWorkload:
    """One persona segment of a workload population.

    The workload-side view of a segment: just the behaviour knobs the
    download models consume (``p``, ``zr``, ``zc``) plus a name and a
    population weight.  Build these from marketplace
    :class:`~repro.marketplace.segments.SegmentParams` via
    :func:`segmented_spec`, or construct directly for ablations.
    """

    name: str
    weight: float
    p: float = 0.9
    zr: float = 1.7
    zc: float = 1.4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("segment name must be non-empty")
        if self.weight <= 0:
            raise ValueError("segment weight must be positive")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p must lie in [0, 1]")
        if self.zr <= 0 or self.zc <= 0:
            raise ValueError("Zipf exponents must be positive")

    def model_params(self) -> Tuple[float, float, float]:
        """The (p, zr, zc) triple that decides model-stream identity."""
        return (self.p, self.zr, self.zc)


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible workload definition.

    The defaults are the paper's Figure 19 configuration scaled only in
    counts: apps divided into equal clusters, ``zr = 1.7``, ``zc = 1.4``,
    ``p = 0.9``.
    """

    kind: ModelKind
    n_apps: int
    n_users: int
    total_downloads: int
    zr: float = 1.7
    zc: float = 1.4
    p: float = 0.9
    n_clusters: int = 30
    cluster_of: Optional[Tuple[int, ...]] = None
    seed: int = 0
    segments: Optional[Tuple[SegmentWorkload, ...]] = None

    def __post_init__(self) -> None:
        if self.n_apps < 1 or self.n_users < 1:
            raise ValueError("n_apps and n_users must be positive")
        if self.total_downloads < 0:
            raise ValueError("total_downloads must be non-negative")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if self.segments is not None and len(self.segments) == 0:
            raise ValueError("segments must be None or a non-empty tuple")

    def with_kind(self, kind: ModelKind) -> "WorkloadSpec":
        """The same workload under a different model (for comparisons)."""
        return replace(self, kind=kind)

    def cluster_assignment(self) -> np.ndarray:
        """Cluster index per app (round-robin unless explicitly given)."""
        if self.cluster_of is not None:
            return np.asarray(self.cluster_of, dtype=np.int64)
        return np.arange(self.n_apps, dtype=np.int64) % self.n_clusters

    def build_model(self):
        """Instantiate the configured model object."""
        if self.kind == ModelKind.ZIPF:
            return ZipfModel(self.n_apps, self.zr)
        if self.kind == ModelKind.ZIPF_AT_MOST_ONCE:
            return ZipfAtMostOnceModel(self.n_apps, self.zr)
        if self.kind == ModelKind.APP_CLUSTERING:
            return AppClusteringModel(
                AppClusteringParams(
                    n_apps=self.n_apps,
                    n_users=self.n_users,
                    total_downloads=self.total_downloads,
                    zr=self.zr,
                    zc=self.zc,
                    p=self.p,
                    n_clusters=self.n_clusters,
                    cluster_of=self.cluster_of,
                )
            )
        raise ValueError(f"unknown model kind: {self.kind!r}")

    @property
    def n_segments(self) -> int:
        """Number of persona segments (1 for the global profile)."""
        return 1 if self.segments is None else len(self.segments)

    def segment_names(self) -> Tuple[str, ...]:
        """Segment names ("global" when unsegmented)."""
        if self.segments is None:
            return ("global",)
        return tuple(segment.name for segment in self.segments)

    def segment_user_boundaries(self) -> np.ndarray:
        """Contiguous user boundaries of the segment partition.

        Length ``n_segments + 1``; segment ``k`` owns users
        ``[bounds[k], bounds[k+1])``.  The cumulative-floor split matches
        the sharded runner's budget rule, so the partition is RNG-free
        and stable under population scaling.
        """
        if self.segments is None:
            return np.array([0, self.n_users], dtype=np.int64)
        return segment_boundaries(
            self.n_users, tuple(segment.weight for segment in self.segments)
        )

    def build_segment_model(self, segment: int = 0):
        """Instantiate the model one segment's users draw through.

        Unsegmented specs return the global model.  A segment whose
        ``(p, zr, zc)`` equal the spec's global knobs builds a model that
        consumes the identical RNG stream, which is what makes the
        equal-parameter partition byte-identical to the global run.
        """
        if self.segments is None:
            if segment != 0:
                raise IndexError("unsegmented spec has only segment 0")
            return self.build_model()
        chosen = self.segments[segment]
        return replace(
            self,
            p=chosen.p,
            zr=chosen.zr,
            zc=chosen.zc,
            segments=None,
        ).build_model()

    def events(self) -> Iterator[DownloadEvent]:
        """A fresh event stream for this spec (deterministic in the seed)."""
        return make_workload(self)

    def event_batches(self) -> Iterator[EventBatch]:
        """A fresh vectorized batch stream for this spec (the hot path)."""
        return make_workload_batches(self)

    def download_counts(self) -> np.ndarray:
        """Materialize the per-app download counts of this workload."""
        return counts_from_batches(self.event_batches(), self.n_apps)


def make_workload(spec: WorkloadSpec) -> Iterator[DownloadEvent]:
    """Instantiate the model of a spec and return its event stream."""
    model = spec.build_model()
    if spec.kind == ModelKind.APP_CLUSTERING:
        return model.iter_events(seed=spec.seed)
    return model.iter_events(spec.n_users, spec.total_downloads, seed=spec.seed)


def make_workload_batches(spec: WorkloadSpec) -> Iterator[EventBatch]:
    """Instantiate the model of a spec and return its batch stream."""
    model = spec.build_model()
    if spec.kind == ModelKind.APP_CLUSTERING:
        return model.iter_batches(seed=spec.seed)
    return model.iter_batches(spec.n_users, spec.total_downloads, seed=spec.seed)


def figure19_spec(
    kind: ModelKind = ModelKind.APP_CLUSTERING,
    scale: float = 1.0,
    seed: int = 0,
) -> WorkloadSpec:
    """The paper's Figure 19 appstore, optionally scaled down.

    At ``scale=1``: 60,000 apps in 30 categories, 600,000 users, and
    2,000,000 downloads with ``zr=1.7``, ``zc=1.4``, ``p=0.9``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return WorkloadSpec(
        kind=kind,
        n_apps=max(30, int(60_000 * scale)),
        n_users=max(10, int(600_000 * scale)),
        total_downloads=max(1, int(2_000_000 * scale)),
        zr=1.7,
        zc=1.4,
        p=0.9,
        n_clusters=30,
        seed=seed,
    )


def segmented_spec(
    spec: WorkloadSpec,
    personas: Optional[Tuple[Persona, ...]] = None,
    persona_seed: int = 0,
) -> WorkloadSpec:
    """Split a spec's population into persona segments via the utility model.

    The spec's global ``(p, zr, zc)`` act as the conjoint anchor: each
    persona's part-worths shift the behaviour knobs around them, seeded
    by ``persona_seed`` (independent of the workload seed, so the same
    population can be re-partitioned without re-rolling the event
    stream).  Defaults to the four built-in personas.
    """
    chosen = personas if personas is not None else default_personas()
    anchor = BehaviorParams(
        cluster_probability=spec.p,
        global_exponent=spec.zr,
        cluster_exponent=spec.zc,
    )
    drawn = draw_segment_params(
        chosen, anchor, anchor_comment_probability=0.08, seed=persona_seed
    )
    return replace(
        spec,
        segments=tuple(
            SegmentWorkload(
                name=params.name,
                weight=params.weight,
                p=params.behavior.cluster_probability,
                zr=params.behavior.global_exponent,
                zc=params.behavior.cluster_exponent,
            )
            for params in drawn
        ),
    )
